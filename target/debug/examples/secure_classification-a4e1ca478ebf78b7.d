/root/repo/target/debug/examples/secure_classification-a4e1ca478ebf78b7.d: examples/secure_classification.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_classification-a4e1ca478ebf78b7.rmeta: examples/secure_classification.rs Cargo.toml

examples/secure_classification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
