/root/repo/target/debug/examples/leakage_audit-25551007613ec746.d: examples/leakage_audit.rs

/root/repo/target/debug/examples/leakage_audit-25551007613ec746: examples/leakage_audit.rs

examples/leakage_audit.rs:
