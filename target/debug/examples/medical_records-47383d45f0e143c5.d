/root/repo/target/debug/examples/medical_records-47383d45f0e143c5.d: examples/medical_records.rs

/root/repo/target/debug/examples/medical_records-47383d45f0e143c5: examples/medical_records.rs

examples/medical_records.rs:
