/root/repo/target/debug/examples/medical_records-61be84fb8911303a.d: examples/medical_records.rs

/root/repo/target/debug/examples/libmedical_records-61be84fb8911303a.rmeta: examples/medical_records.rs

examples/medical_records.rs:
