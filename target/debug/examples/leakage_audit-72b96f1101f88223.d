/root/repo/target/debug/examples/leakage_audit-72b96f1101f88223.d: examples/leakage_audit.rs Cargo.toml

/root/repo/target/debug/examples/libleakage_audit-72b96f1101f88223.rmeta: examples/leakage_audit.rs Cargo.toml

examples/leakage_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
