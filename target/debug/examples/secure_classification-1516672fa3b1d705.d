/root/repo/target/debug/examples/secure_classification-1516672fa3b1d705.d: examples/secure_classification.rs

/root/repo/target/debug/examples/secure_classification-1516672fa3b1d705: examples/secure_classification.rs

examples/secure_classification.rs:
