/root/repo/target/debug/examples/parallel_scaling-8d447cfc673b8f9d.d: examples/parallel_scaling.rs

/root/repo/target/debug/examples/libparallel_scaling-8d447cfc673b8f9d.rmeta: examples/parallel_scaling.rs

examples/parallel_scaling.rs:
