/root/repo/target/debug/examples/parallel_scaling-49eec2840d84715a.d: examples/parallel_scaling.rs

/root/repo/target/debug/examples/parallel_scaling-49eec2840d84715a: examples/parallel_scaling.rs

examples/parallel_scaling.rs:
