/root/repo/target/debug/examples/quickstart-adf08be18d2be2ed.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-adf08be18d2be2ed: examples/quickstart.rs

examples/quickstart.rs:
