/root/repo/target/debug/examples/quickstart-c8b879c4c7338346.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-c8b879c4c7338346.rmeta: examples/quickstart.rs

examples/quickstart.rs:
