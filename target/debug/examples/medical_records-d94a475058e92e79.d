/root/repo/target/debug/examples/medical_records-d94a475058e92e79.d: examples/medical_records.rs Cargo.toml

/root/repo/target/debug/examples/libmedical_records-d94a475058e92e79.rmeta: examples/medical_records.rs Cargo.toml

examples/medical_records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
