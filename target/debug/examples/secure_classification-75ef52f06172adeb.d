/root/repo/target/debug/examples/secure_classification-75ef52f06172adeb.d: examples/secure_classification.rs

/root/repo/target/debug/examples/libsecure_classification-75ef52f06172adeb.rmeta: examples/secure_classification.rs

examples/secure_classification.rs:
