/root/repo/target/debug/examples/leakage_audit-5e55b8df0bdb2446.d: examples/leakage_audit.rs

/root/repo/target/debug/examples/libleakage_audit-5e55b8df0bdb2446.rmeta: examples/leakage_audit.rs

examples/leakage_audit.rs:
