/root/repo/target/debug/deps/end_to_end_basic-9c3c431f1289aea5.d: tests/end_to_end_basic.rs

/root/repo/target/debug/deps/libend_to_end_basic-9c3c431f1289aea5.rmeta: tests/end_to_end_basic.rs

tests/end_to_end_basic.rs:
