/root/repo/target/debug/deps/fig2d_sknnm_k-bdd91320cf832ff7.d: crates/bench/benches/fig2d_sknnm_k.rs

/root/repo/target/debug/deps/fig2d_sknnm_k-bdd91320cf832ff7: crates/bench/benches/fig2d_sknnm_k.rs

crates/bench/benches/fig2d_sknnm_k.rs:
