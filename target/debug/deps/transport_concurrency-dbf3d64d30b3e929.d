/root/repo/target/debug/deps/transport_concurrency-dbf3d64d30b3e929.d: crates/protocols/tests/transport_concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_concurrency-dbf3d64d30b3e929.rmeta: crates/protocols/tests/transport_concurrency.rs Cargo.toml

crates/protocols/tests/transport_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
