/root/repo/target/debug/deps/end_to_end_secure-4717d93a19b9ef9f.d: tests/end_to_end_secure.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_secure-4717d93a19b9ef9f.rmeta: tests/end_to_end_secure.rs Cargo.toml

tests/end_to_end_secure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
