/root/repo/target/debug/deps/bytes-53d04c49ba896420.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-53d04c49ba896420.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
