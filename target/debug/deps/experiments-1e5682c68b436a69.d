/root/repo/target/debug/deps/experiments-1e5682c68b436a69.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-1e5682c68b436a69.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
