/root/repo/target/debug/deps/primitives-46d062268aafdfaf.d: crates/bench/benches/primitives.rs Cargo.toml

/root/repo/target/debug/deps/libprimitives-46d062268aafdfaf.rmeta: crates/bench/benches/primitives.rs Cargo.toml

crates/bench/benches/primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
