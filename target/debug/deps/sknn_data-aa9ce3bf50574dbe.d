/root/repo/target/debug/deps/sknn_data-aa9ce3bf50574dbe.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/sknn_data-aa9ce3bf50574dbe: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
