/root/repo/target/debug/deps/properties-b1ce5ce8cbe63501.d: crates/protocols/tests/properties.rs

/root/repo/target/debug/deps/libproperties-b1ce5ce8cbe63501.rmeta: crates/protocols/tests/properties.rs

crates/protocols/tests/properties.rs:
