/root/repo/target/debug/deps/sknn_data-35d47c2a59ebdca1.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libsknn_data-35d47c2a59ebdca1.rmeta: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
