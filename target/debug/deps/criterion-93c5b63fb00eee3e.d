/root/repo/target/debug/deps/criterion-93c5b63fb00eee3e.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-93c5b63fb00eee3e.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
