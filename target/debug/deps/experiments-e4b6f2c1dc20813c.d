/root/repo/target/debug/deps/experiments-e4b6f2c1dc20813c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-e4b6f2c1dc20813c.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
