/root/repo/target/debug/deps/paillier-8e1bf83485e14355.d: crates/bench/benches/paillier.rs Cargo.toml

/root/repo/target/debug/deps/libpaillier-8e1bf83485e14355.rmeta: crates/bench/benches/paillier.rs Cargo.toml

crates/bench/benches/paillier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
