/root/repo/target/debug/deps/properties-91b095401ed1c537.d: crates/bigint/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-91b095401ed1c537.rmeta: crates/bigint/tests/properties.rs Cargo.toml

crates/bigint/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
