/root/repo/target/debug/deps/bytes-359007a505328ac7.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-359007a505328ac7.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
