/root/repo/target/debug/deps/fig2c_sknnb_k-c244b5d6466da665.d: crates/bench/benches/fig2c_sknnb_k.rs

/root/repo/target/debug/deps/libfig2c_sknnb_k-c244b5d6466da665.rmeta: crates/bench/benches/fig2c_sknnb_k.rs

crates/bench/benches/fig2c_sknnb_k.rs:
