/root/repo/target/debug/deps/sknn_bench-5afd9ca1cdd043dc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sknn_bench-5afd9ca1cdd043dc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
