/root/repo/target/debug/deps/fig3_parallel-9931ef7d374229d6.d: crates/bench/benches/fig3_parallel.rs

/root/repo/target/debug/deps/fig3_parallel-9931ef7d374229d6: crates/bench/benches/fig3_parallel.rs

crates/bench/benches/fig3_parallel.rs:
