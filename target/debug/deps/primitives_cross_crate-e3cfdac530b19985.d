/root/repo/target/debug/deps/primitives_cross_crate-e3cfdac530b19985.d: tests/primitives_cross_crate.rs

/root/repo/target/debug/deps/primitives_cross_crate-e3cfdac530b19985: tests/primitives_cross_crate.rs

tests/primitives_cross_crate.rs:
