/root/repo/target/debug/deps/sknn_paillier-e94adcc9439cf6fd.d: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs

/root/repo/target/debug/deps/sknn_paillier-e94adcc9439cf6fd: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs

crates/paillier/src/lib.rs:
crates/paillier/src/ciphertext.rs:
crates/paillier/src/decrypt.rs:
crates/paillier/src/encoding.rs:
crates/paillier/src/encrypt.rs:
crates/paillier/src/error.rs:
crates/paillier/src/homomorphic.rs:
crates/paillier/src/keygen.rs:
crates/paillier/src/keys.rs:
