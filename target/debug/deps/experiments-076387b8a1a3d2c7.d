/root/repo/target/debug/deps/experiments-076387b8a1a3d2c7.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-076387b8a1a3d2c7: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
