/root/repo/target/debug/deps/transport_concurrency-93a85e34d6e26b49.d: crates/protocols/tests/transport_concurrency.rs

/root/repo/target/debug/deps/libtransport_concurrency-93a85e34d6e26b49.rmeta: crates/protocols/tests/transport_concurrency.rs

crates/protocols/tests/transport_concurrency.rs:
