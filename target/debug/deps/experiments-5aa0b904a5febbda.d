/root/repo/target/debug/deps/experiments-5aa0b904a5febbda.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-5aa0b904a5febbda: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
