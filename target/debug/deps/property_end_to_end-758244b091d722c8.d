/root/repo/target/debug/deps/property_end_to_end-758244b091d722c8.d: tests/property_end_to_end.rs

/root/repo/target/debug/deps/property_end_to_end-758244b091d722c8: tests/property_end_to_end.rs

tests/property_end_to_end.rs:
