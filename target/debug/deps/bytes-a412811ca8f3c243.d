/root/repo/target/debug/deps/bytes-a412811ca8f3c243.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-a412811ca8f3c243: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
