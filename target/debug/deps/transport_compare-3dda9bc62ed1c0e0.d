/root/repo/target/debug/deps/transport_compare-3dda9bc62ed1c0e0.d: crates/bench/benches/transport_compare.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_compare-3dda9bc62ed1c0e0.rmeta: crates/bench/benches/transport_compare.rs Cargo.toml

crates/bench/benches/transport_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
