/root/repo/target/debug/deps/sknn_data-e8d263d2468f8f7b.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libsknn_data-e8d263d2468f8f7b.rmeta: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
