/root/repo/target/debug/deps/sknn_bench-1aebd3842cd17b78.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsknn_bench-1aebd3842cd17b78.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
