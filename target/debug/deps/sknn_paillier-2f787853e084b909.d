/root/repo/target/debug/deps/sknn_paillier-2f787853e084b909.d: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs

/root/repo/target/debug/deps/libsknn_paillier-2f787853e084b909.rmeta: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs

crates/paillier/src/lib.rs:
crates/paillier/src/ciphertext.rs:
crates/paillier/src/decrypt.rs:
crates/paillier/src/encoding.rs:
crates/paillier/src/encrypt.rs:
crates/paillier/src/error.rs:
crates/paillier/src/homomorphic.rs:
crates/paillier/src/keygen.rs:
crates/paillier/src/keys.rs:
