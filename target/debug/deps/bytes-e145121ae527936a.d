/root/repo/target/debug/deps/bytes-e145121ae527936a.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-e145121ae527936a.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
