/root/repo/target/debug/deps/end_to_end_secure-3017a9c1f7220aa7.d: tests/end_to_end_secure.rs

/root/repo/target/debug/deps/end_to_end_secure-3017a9c1f7220aa7: tests/end_to_end_secure.rs

tests/end_to_end_secure.rs:
