/root/repo/target/debug/deps/fig3_parallel-352e60cd94b5e0af.d: crates/bench/benches/fig3_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_parallel-352e60cd94b5e0af.rmeta: crates/bench/benches/fig3_parallel.rs Cargo.toml

crates/bench/benches/fig3_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
