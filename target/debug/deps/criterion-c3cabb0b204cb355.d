/root/repo/target/debug/deps/criterion-c3cabb0b204cb355.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c3cabb0b204cb355.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
