/root/repo/target/debug/deps/rand-e74baef4f5195273.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-e74baef4f5195273.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
