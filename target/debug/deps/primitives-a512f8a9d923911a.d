/root/repo/target/debug/deps/primitives-a512f8a9d923911a.d: crates/bench/benches/primitives.rs

/root/repo/target/debug/deps/libprimitives-a512f8a9d923911a.rmeta: crates/bench/benches/primitives.rs

crates/bench/benches/primitives.rs:
