/root/repo/target/debug/deps/fig2c_sknnb_k-f8b38e8a18e732c3.d: crates/bench/benches/fig2c_sknnb_k.rs

/root/repo/target/debug/deps/fig2c_sknnb_k-f8b38e8a18e732c3: crates/bench/benches/fig2c_sknnb_k.rs

crates/bench/benches/fig2c_sknnb_k.rs:
