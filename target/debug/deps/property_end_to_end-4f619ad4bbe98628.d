/root/repo/target/debug/deps/property_end_to_end-4f619ad4bbe98628.d: tests/property_end_to_end.rs

/root/repo/target/debug/deps/libproperty_end_to_end-4f619ad4bbe98628.rmeta: tests/property_end_to_end.rs

tests/property_end_to_end.rs:
