/root/repo/target/debug/deps/fig3_parallel-7e20883c8ea33da8.d: crates/bench/benches/fig3_parallel.rs

/root/repo/target/debug/deps/libfig3_parallel-7e20883c8ea33da8.rmeta: crates/bench/benches/fig3_parallel.rs

crates/bench/benches/fig3_parallel.rs:
