/root/repo/target/debug/deps/properties-b9f8d84c37077be1.d: crates/paillier/tests/properties.rs

/root/repo/target/debug/deps/libproperties-b9f8d84c37077be1.rmeta: crates/paillier/tests/properties.rs

crates/paillier/tests/properties.rs:
