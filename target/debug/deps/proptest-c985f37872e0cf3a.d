/root/repo/target/debug/deps/proptest-c985f37872e0cf3a.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c985f37872e0cf3a.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c985f37872e0cf3a.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
