/root/repo/target/debug/deps/parking_lot-d84579170dae3738.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-d84579170dae3738: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
