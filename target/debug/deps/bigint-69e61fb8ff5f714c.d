/root/repo/target/debug/deps/bigint-69e61fb8ff5f714c.d: crates/bench/benches/bigint.rs

/root/repo/target/debug/deps/libbigint-69e61fb8ff5f714c.rmeta: crates/bench/benches/bigint.rs

crates/bench/benches/bigint.rs:
