/root/repo/target/debug/deps/proptest-8b1709fd12c25104.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-8b1709fd12c25104: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
