/root/repo/target/debug/deps/end_to_end_secure-b7dad488ed0722a9.d: tests/end_to_end_secure.rs

/root/repo/target/debug/deps/libend_to_end_secure-b7dad488ed0722a9.rmeta: tests/end_to_end_secure.rs

tests/end_to_end_secure.rs:
