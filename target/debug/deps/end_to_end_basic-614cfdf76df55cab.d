/root/repo/target/debug/deps/end_to_end_basic-614cfdf76df55cab.d: tests/end_to_end_basic.rs

/root/repo/target/debug/deps/end_to_end_basic-614cfdf76df55cab: tests/end_to_end_basic.rs

tests/end_to_end_basic.rs:
