/root/repo/target/debug/deps/criterion-e1a25e92e36e7b6b.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e1a25e92e36e7b6b.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e1a25e92e36e7b6b.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
