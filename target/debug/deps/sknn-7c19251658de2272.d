/root/repo/target/debug/deps/sknn-7c19251658de2272.d: src/lib.rs

/root/repo/target/debug/deps/libsknn-7c19251658de2272.rlib: src/lib.rs

/root/repo/target/debug/deps/libsknn-7c19251658de2272.rmeta: src/lib.rs

src/lib.rs:
