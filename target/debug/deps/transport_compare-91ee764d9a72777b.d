/root/repo/target/debug/deps/transport_compare-91ee764d9a72777b.d: crates/bench/benches/transport_compare.rs

/root/repo/target/debug/deps/transport_compare-91ee764d9a72777b: crates/bench/benches/transport_compare.rs

crates/bench/benches/transport_compare.rs:
