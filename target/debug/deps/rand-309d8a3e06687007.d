/root/repo/target/debug/deps/rand-309d8a3e06687007.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-309d8a3e06687007.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
