/root/repo/target/debug/deps/fig2a_sknnb_records-f94b09885d84f895.d: crates/bench/benches/fig2a_sknnb_records.rs

/root/repo/target/debug/deps/fig2a_sknnb_records-f94b09885d84f895: crates/bench/benches/fig2a_sknnb_records.rs

crates/bench/benches/fig2a_sknnb_records.rs:
