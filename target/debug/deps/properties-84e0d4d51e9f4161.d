/root/repo/target/debug/deps/properties-84e0d4d51e9f4161.d: crates/protocols/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-84e0d4d51e9f4161.rmeta: crates/protocols/tests/properties.rs Cargo.toml

crates/protocols/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
