/root/repo/target/debug/deps/rand-f42df835725c8982.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-f42df835725c8982: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
