/root/repo/target/debug/deps/properties-412051a1f4c9f6f3.d: crates/paillier/tests/properties.rs

/root/repo/target/debug/deps/properties-412051a1f4c9f6f3: crates/paillier/tests/properties.rs

crates/paillier/tests/properties.rs:
