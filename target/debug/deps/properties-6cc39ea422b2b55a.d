/root/repo/target/debug/deps/properties-6cc39ea422b2b55a.d: crates/bigint/tests/properties.rs

/root/repo/target/debug/deps/libproperties-6cc39ea422b2b55a.rmeta: crates/bigint/tests/properties.rs

crates/bigint/tests/properties.rs:
