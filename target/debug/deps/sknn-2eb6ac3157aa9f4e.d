/root/repo/target/debug/deps/sknn-2eb6ac3157aa9f4e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsknn-2eb6ac3157aa9f4e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
