/root/repo/target/debug/deps/rand-437a4540d5b9f991.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-437a4540d5b9f991.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-437a4540d5b9f991.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
