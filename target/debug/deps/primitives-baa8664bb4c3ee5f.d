/root/repo/target/debug/deps/primitives-baa8664bb4c3ee5f.d: crates/bench/benches/primitives.rs

/root/repo/target/debug/deps/primitives-baa8664bb4c3ee5f: crates/bench/benches/primitives.rs

crates/bench/benches/primitives.rs:
