/root/repo/target/debug/deps/fig2d_sknnm_k-52838ffa4320be47.d: crates/bench/benches/fig2d_sknnm_k.rs Cargo.toml

/root/repo/target/debug/deps/libfig2d_sknnm_k-52838ffa4320be47.rmeta: crates/bench/benches/fig2d_sknnm_k.rs Cargo.toml

crates/bench/benches/fig2d_sknnm_k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
