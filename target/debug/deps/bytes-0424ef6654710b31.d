/root/repo/target/debug/deps/bytes-0424ef6654710b31.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-0424ef6654710b31.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
