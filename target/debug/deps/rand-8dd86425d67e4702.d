/root/repo/target/debug/deps/rand-8dd86425d67e4702.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8dd86425d67e4702.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
