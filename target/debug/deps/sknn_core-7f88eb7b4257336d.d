/root/repo/target/debug/deps/sknn_core-7f88eb7b4257336d.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/encdb.rs crates/core/src/error.rs crates/core/src/federation.rs crates/core/src/parallel.rs crates/core/src/plain.rs crates/core/src/profile.rs crates/core/src/roles.rs crates/core/src/sknn_basic.rs crates/core/src/sknn_secure.rs crates/core/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsknn_core-7f88eb7b4257336d.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/encdb.rs crates/core/src/error.rs crates/core/src/federation.rs crates/core/src/parallel.rs crates/core/src/plain.rs crates/core/src/profile.rs crates/core/src/roles.rs crates/core/src/sknn_basic.rs crates/core/src/sknn_secure.rs crates/core/src/table.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/config.rs:
crates/core/src/encdb.rs:
crates/core/src/error.rs:
crates/core/src/federation.rs:
crates/core/src/parallel.rs:
crates/core/src/plain.rs:
crates/core/src/profile.rs:
crates/core/src/roles.rs:
crates/core/src/sknn_basic.rs:
crates/core/src/sknn_secure.rs:
crates/core/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
