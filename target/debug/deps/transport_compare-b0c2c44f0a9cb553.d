/root/repo/target/debug/deps/transport_compare-b0c2c44f0a9cb553.d: crates/bench/benches/transport_compare.rs

/root/repo/target/debug/deps/libtransport_compare-b0c2c44f0a9cb553.rmeta: crates/bench/benches/transport_compare.rs

crates/bench/benches/transport_compare.rs:
