/root/repo/target/debug/deps/sknn_protocols-366125d83894eb7a.d: crates/protocols/src/lib.rs crates/protocols/src/error.rs crates/protocols/src/party.rs crates/protocols/src/permutation.rs crates/protocols/src/sbd.rs crates/protocols/src/sbor.rs crates/protocols/src/sm.rs crates/protocols/src/smin.rs crates/protocols/src/smin_n.rs crates/protocols/src/ssed.rs crates/protocols/src/stats.rs crates/protocols/src/transport/mod.rs crates/protocols/src/transport/wire.rs crates/protocols/src/transport/channel.rs crates/protocols/src/transport/server.rs crates/protocols/src/transport/session.rs crates/protocols/src/transport/tcp.rs

/root/repo/target/debug/deps/libsknn_protocols-366125d83894eb7a.rlib: crates/protocols/src/lib.rs crates/protocols/src/error.rs crates/protocols/src/party.rs crates/protocols/src/permutation.rs crates/protocols/src/sbd.rs crates/protocols/src/sbor.rs crates/protocols/src/sm.rs crates/protocols/src/smin.rs crates/protocols/src/smin_n.rs crates/protocols/src/ssed.rs crates/protocols/src/stats.rs crates/protocols/src/transport/mod.rs crates/protocols/src/transport/wire.rs crates/protocols/src/transport/channel.rs crates/protocols/src/transport/server.rs crates/protocols/src/transport/session.rs crates/protocols/src/transport/tcp.rs

/root/repo/target/debug/deps/libsknn_protocols-366125d83894eb7a.rmeta: crates/protocols/src/lib.rs crates/protocols/src/error.rs crates/protocols/src/party.rs crates/protocols/src/permutation.rs crates/protocols/src/sbd.rs crates/protocols/src/sbor.rs crates/protocols/src/sm.rs crates/protocols/src/smin.rs crates/protocols/src/smin_n.rs crates/protocols/src/ssed.rs crates/protocols/src/stats.rs crates/protocols/src/transport/mod.rs crates/protocols/src/transport/wire.rs crates/protocols/src/transport/channel.rs crates/protocols/src/transport/server.rs crates/protocols/src/transport/session.rs crates/protocols/src/transport/tcp.rs

crates/protocols/src/lib.rs:
crates/protocols/src/error.rs:
crates/protocols/src/party.rs:
crates/protocols/src/permutation.rs:
crates/protocols/src/sbd.rs:
crates/protocols/src/sbor.rs:
crates/protocols/src/sm.rs:
crates/protocols/src/smin.rs:
crates/protocols/src/smin_n.rs:
crates/protocols/src/ssed.rs:
crates/protocols/src/stats.rs:
crates/protocols/src/transport/mod.rs:
crates/protocols/src/transport/wire.rs:
crates/protocols/src/transport/channel.rs:
crates/protocols/src/transport/server.rs:
crates/protocols/src/transport/session.rs:
crates/protocols/src/transport/tcp.rs:
