/root/repo/target/debug/deps/bytes-fdc9fe43a7cb3cb6.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-fdc9fe43a7cb3cb6.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-fdc9fe43a7cb3cb6.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
