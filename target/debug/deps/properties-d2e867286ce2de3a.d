/root/repo/target/debug/deps/properties-d2e867286ce2de3a.d: crates/bigint/tests/properties.rs

/root/repo/target/debug/deps/properties-d2e867286ce2de3a: crates/bigint/tests/properties.rs

crates/bigint/tests/properties.rs:
