/root/repo/target/debug/deps/sknn-d1423239aab16c47.d: src/lib.rs

/root/repo/target/debug/deps/sknn-d1423239aab16c47: src/lib.rs

src/lib.rs:
