/root/repo/target/debug/deps/primitives_cross_crate-90c34bb91da04e11.d: tests/primitives_cross_crate.rs

/root/repo/target/debug/deps/libprimitives_cross_crate-90c34bb91da04e11.rmeta: tests/primitives_cross_crate.rs

tests/primitives_cross_crate.rs:
