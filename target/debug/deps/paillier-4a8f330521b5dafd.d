/root/repo/target/debug/deps/paillier-4a8f330521b5dafd.d: crates/bench/benches/paillier.rs

/root/repo/target/debug/deps/paillier-4a8f330521b5dafd: crates/bench/benches/paillier.rs

crates/bench/benches/paillier.rs:
