/root/repo/target/debug/deps/sknn_data-0f144af004543fe7.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libsknn_data-0f144af004543fe7.rmeta: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
