/root/repo/target/debug/deps/proptest-729af1224715738c.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-729af1224715738c.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
