/root/repo/target/debug/deps/primitives_cross_crate-723bfe1fb91674a0.d: tests/primitives_cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libprimitives_cross_crate-723bfe1fb91674a0.rmeta: tests/primitives_cross_crate.rs Cargo.toml

tests/primitives_cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
