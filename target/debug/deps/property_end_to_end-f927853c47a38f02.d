/root/repo/target/debug/deps/property_end_to_end-f927853c47a38f02.d: tests/property_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_end_to_end-f927853c47a38f02.rmeta: tests/property_end_to_end.rs Cargo.toml

tests/property_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
