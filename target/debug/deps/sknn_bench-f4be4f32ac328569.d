/root/repo/target/debug/deps/sknn_bench-f4be4f32ac328569.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsknn_bench-f4be4f32ac328569.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
