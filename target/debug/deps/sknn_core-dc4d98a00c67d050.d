/root/repo/target/debug/deps/sknn_core-dc4d98a00c67d050.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/encdb.rs crates/core/src/error.rs crates/core/src/federation.rs crates/core/src/parallel.rs crates/core/src/plain.rs crates/core/src/profile.rs crates/core/src/roles.rs crates/core/src/sknn_basic.rs crates/core/src/sknn_secure.rs crates/core/src/table.rs

/root/repo/target/debug/deps/libsknn_core-dc4d98a00c67d050.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/config.rs crates/core/src/encdb.rs crates/core/src/error.rs crates/core/src/federation.rs crates/core/src/parallel.rs crates/core/src/plain.rs crates/core/src/profile.rs crates/core/src/roles.rs crates/core/src/sknn_basic.rs crates/core/src/sknn_secure.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/config.rs:
crates/core/src/encdb.rs:
crates/core/src/error.rs:
crates/core/src/federation.rs:
crates/core/src/parallel.rs:
crates/core/src/plain.rs:
crates/core/src/profile.rs:
crates/core/src/roles.rs:
crates/core/src/sknn_basic.rs:
crates/core/src/sknn_secure.rs:
crates/core/src/table.rs:
