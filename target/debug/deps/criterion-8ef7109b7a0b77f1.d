/root/repo/target/debug/deps/criterion-8ef7109b7a0b77f1.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8ef7109b7a0b77f1.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
