/root/repo/target/debug/deps/fig2f_compare-4a5568772d1f996a.d: crates/bench/benches/fig2f_compare.rs

/root/repo/target/debug/deps/fig2f_compare-4a5568772d1f996a: crates/bench/benches/fig2f_compare.rs

crates/bench/benches/fig2f_compare.rs:
