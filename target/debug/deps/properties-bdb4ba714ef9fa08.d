/root/repo/target/debug/deps/properties-bdb4ba714ef9fa08.d: crates/protocols/tests/properties.rs

/root/repo/target/debug/deps/properties-bdb4ba714ef9fa08: crates/protocols/tests/properties.rs

crates/protocols/tests/properties.rs:
