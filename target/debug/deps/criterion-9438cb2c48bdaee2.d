/root/repo/target/debug/deps/criterion-9438cb2c48bdaee2.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-9438cb2c48bdaee2: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
