/root/repo/target/debug/deps/proptest-7f698acf5a472b42.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7f698acf5a472b42.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
