/root/repo/target/debug/deps/bigint-bcdc5c4983f31c82.d: crates/bench/benches/bigint.rs Cargo.toml

/root/repo/target/debug/deps/libbigint-bcdc5c4983f31c82.rmeta: crates/bench/benches/bigint.rs Cargo.toml

crates/bench/benches/bigint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
