/root/repo/target/debug/deps/sknn_data-e55fb51f4e915a23.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libsknn_data-e55fb51f4e915a23.rlib: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libsknn_data-e55fb51f4e915a23.rmeta: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
