/root/repo/target/debug/deps/end_to_end_basic-b4462d61e7fa9eff.d: tests/end_to_end_basic.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_basic-b4462d61e7fa9eff.rmeta: tests/end_to_end_basic.rs Cargo.toml

tests/end_to_end_basic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
