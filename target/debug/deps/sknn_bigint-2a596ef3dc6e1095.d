/root/repo/target/debug/deps/sknn_bigint-2a596ef3dc6e1095.d: crates/bigint/src/lib.rs crates/bigint/src/add_sub.rs crates/bigint/src/bits.rs crates/bigint/src/cmp.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/limbs.rs crates/bigint/src/modular.rs crates/bigint/src/mont.rs crates/bigint/src/mul.rs crates/bigint/src/prime.rs crates/bigint/src/random.rs crates/bigint/src/shift.rs

/root/repo/target/debug/deps/libsknn_bigint-2a596ef3dc6e1095.rmeta: crates/bigint/src/lib.rs crates/bigint/src/add_sub.rs crates/bigint/src/bits.rs crates/bigint/src/cmp.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/limbs.rs crates/bigint/src/modular.rs crates/bigint/src/mont.rs crates/bigint/src/mul.rs crates/bigint/src/prime.rs crates/bigint/src/random.rs crates/bigint/src/shift.rs

crates/bigint/src/lib.rs:
crates/bigint/src/add_sub.rs:
crates/bigint/src/bits.rs:
crates/bigint/src/cmp.rs:
crates/bigint/src/convert.rs:
crates/bigint/src/div.rs:
crates/bigint/src/limbs.rs:
crates/bigint/src/modular.rs:
crates/bigint/src/mont.rs:
crates/bigint/src/mul.rs:
crates/bigint/src/prime.rs:
crates/bigint/src/random.rs:
crates/bigint/src/shift.rs:
