/root/repo/target/debug/deps/fig2d_sknnm_k-3eb5b070550f0cc9.d: crates/bench/benches/fig2d_sknnm_k.rs

/root/repo/target/debug/deps/libfig2d_sknnm_k-3eb5b070550f0cc9.rmeta: crates/bench/benches/fig2d_sknnm_k.rs

crates/bench/benches/fig2d_sknnm_k.rs:
