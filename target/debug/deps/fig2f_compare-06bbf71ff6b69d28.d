/root/repo/target/debug/deps/fig2f_compare-06bbf71ff6b69d28.d: crates/bench/benches/fig2f_compare.rs Cargo.toml

/root/repo/target/debug/deps/libfig2f_compare-06bbf71ff6b69d28.rmeta: crates/bench/benches/fig2f_compare.rs Cargo.toml

crates/bench/benches/fig2f_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
