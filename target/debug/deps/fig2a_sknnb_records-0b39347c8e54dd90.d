/root/repo/target/debug/deps/fig2a_sknnb_records-0b39347c8e54dd90.d: crates/bench/benches/fig2a_sknnb_records.rs Cargo.toml

/root/repo/target/debug/deps/libfig2a_sknnb_records-0b39347c8e54dd90.rmeta: crates/bench/benches/fig2a_sknnb_records.rs Cargo.toml

crates/bench/benches/fig2a_sknnb_records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
