/root/repo/target/debug/deps/parking_lot-96f1f75a1195f59f.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-96f1f75a1195f59f.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-96f1f75a1195f59f.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
