/root/repo/target/debug/deps/sknn-389cd8ba55293f27.d: src/lib.rs

/root/repo/target/debug/deps/libsknn-389cd8ba55293f27.rmeta: src/lib.rs

src/lib.rs:
