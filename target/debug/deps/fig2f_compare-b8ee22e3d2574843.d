/root/repo/target/debug/deps/fig2f_compare-b8ee22e3d2574843.d: crates/bench/benches/fig2f_compare.rs

/root/repo/target/debug/deps/libfig2f_compare-b8ee22e3d2574843.rmeta: crates/bench/benches/fig2f_compare.rs

crates/bench/benches/fig2f_compare.rs:
