/root/repo/target/debug/deps/bigint-0d3b49813fde9e5e.d: crates/bench/benches/bigint.rs

/root/repo/target/debug/deps/bigint-0d3b49813fde9e5e: crates/bench/benches/bigint.rs

crates/bench/benches/bigint.rs:
