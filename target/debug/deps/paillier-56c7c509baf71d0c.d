/root/repo/target/debug/deps/paillier-56c7c509baf71d0c.d: crates/bench/benches/paillier.rs

/root/repo/target/debug/deps/libpaillier-56c7c509baf71d0c.rmeta: crates/bench/benches/paillier.rs

crates/bench/benches/paillier.rs:
