/root/repo/target/debug/deps/properties-378d1d708a57879b.d: crates/paillier/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-378d1d708a57879b.rmeta: crates/paillier/tests/properties.rs Cargo.toml

crates/paillier/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
