/root/repo/target/debug/deps/sknn-876c6a4f92cb212b.d: src/lib.rs

/root/repo/target/debug/deps/libsknn-876c6a4f92cb212b.rmeta: src/lib.rs

src/lib.rs:
