/root/repo/target/debug/deps/sknn_bench-e108193ccf05573c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsknn_bench-e108193ccf05573c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
