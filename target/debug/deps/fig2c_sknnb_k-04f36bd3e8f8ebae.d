/root/repo/target/debug/deps/fig2c_sknnb_k-04f36bd3e8f8ebae.d: crates/bench/benches/fig2c_sknnb_k.rs Cargo.toml

/root/repo/target/debug/deps/libfig2c_sknnb_k-04f36bd3e8f8ebae.rmeta: crates/bench/benches/fig2c_sknnb_k.rs Cargo.toml

crates/bench/benches/fig2c_sknnb_k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
