/root/repo/target/debug/deps/sknn_paillier-eed7e2e0a788fabb.d: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs Cargo.toml

/root/repo/target/debug/deps/libsknn_paillier-eed7e2e0a788fabb.rmeta: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs Cargo.toml

crates/paillier/src/lib.rs:
crates/paillier/src/ciphertext.rs:
crates/paillier/src/decrypt.rs:
crates/paillier/src/encoding.rs:
crates/paillier/src/encrypt.rs:
crates/paillier/src/error.rs:
crates/paillier/src/homomorphic.rs:
crates/paillier/src/keygen.rs:
crates/paillier/src/keys.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
