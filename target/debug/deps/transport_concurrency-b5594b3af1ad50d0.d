/root/repo/target/debug/deps/transport_concurrency-b5594b3af1ad50d0.d: crates/protocols/tests/transport_concurrency.rs

/root/repo/target/debug/deps/transport_concurrency-b5594b3af1ad50d0: crates/protocols/tests/transport_concurrency.rs

crates/protocols/tests/transport_concurrency.rs:
