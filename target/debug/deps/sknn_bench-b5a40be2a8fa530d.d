/root/repo/target/debug/deps/sknn_bench-b5a40be2a8fa530d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsknn_bench-b5a40be2a8fa530d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsknn_bench-b5a40be2a8fa530d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
