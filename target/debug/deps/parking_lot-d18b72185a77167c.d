/root/repo/target/debug/deps/parking_lot-d18b72185a77167c.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d18b72185a77167c.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
