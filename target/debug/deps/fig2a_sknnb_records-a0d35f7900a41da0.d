/root/repo/target/debug/deps/fig2a_sknnb_records-a0d35f7900a41da0.d: crates/bench/benches/fig2a_sknnb_records.rs

/root/repo/target/debug/deps/libfig2a_sknnb_records-a0d35f7900a41da0.rmeta: crates/bench/benches/fig2a_sknnb_records.rs

crates/bench/benches/fig2a_sknnb_records.rs:
