/root/repo/target/debug/deps/sknn-2d1481a0a8f9e51f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsknn-2d1481a0a8f9e51f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
