/root/repo/target/debug/deps/parking_lot-630796d9a115bad2.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-630796d9a115bad2.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
