/root/repo/target/release/examples/leakage_audit-f04d8bfb045a60cb.d: examples/leakage_audit.rs

/root/repo/target/release/examples/leakage_audit-f04d8bfb045a60cb: examples/leakage_audit.rs

examples/leakage_audit.rs:
