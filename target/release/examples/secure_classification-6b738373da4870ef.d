/root/repo/target/release/examples/secure_classification-6b738373da4870ef.d: examples/secure_classification.rs

/root/repo/target/release/examples/secure_classification-6b738373da4870ef: examples/secure_classification.rs

examples/secure_classification.rs:
