/root/repo/target/release/examples/parallel_scaling-e3de75489d7d0f4d.d: examples/parallel_scaling.rs

/root/repo/target/release/examples/parallel_scaling-e3de75489d7d0f4d: examples/parallel_scaling.rs

examples/parallel_scaling.rs:
