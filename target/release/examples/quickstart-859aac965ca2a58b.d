/root/repo/target/release/examples/quickstart-859aac965ca2a58b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-859aac965ca2a58b: examples/quickstart.rs

examples/quickstart.rs:
