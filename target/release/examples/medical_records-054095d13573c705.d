/root/repo/target/release/examples/medical_records-054095d13573c705.d: examples/medical_records.rs

/root/repo/target/release/examples/medical_records-054095d13573c705: examples/medical_records.rs

examples/medical_records.rs:
