/root/repo/target/release/deps/sknn_bigint-0e6c9f5f258836a8.d: crates/bigint/src/lib.rs crates/bigint/src/add_sub.rs crates/bigint/src/bits.rs crates/bigint/src/cmp.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/limbs.rs crates/bigint/src/modular.rs crates/bigint/src/mont.rs crates/bigint/src/mul.rs crates/bigint/src/prime.rs crates/bigint/src/random.rs crates/bigint/src/shift.rs Cargo.toml

/root/repo/target/release/deps/libsknn_bigint-0e6c9f5f258836a8.rmeta: crates/bigint/src/lib.rs crates/bigint/src/add_sub.rs crates/bigint/src/bits.rs crates/bigint/src/cmp.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/limbs.rs crates/bigint/src/modular.rs crates/bigint/src/mont.rs crates/bigint/src/mul.rs crates/bigint/src/prime.rs crates/bigint/src/random.rs crates/bigint/src/shift.rs Cargo.toml

crates/bigint/src/lib.rs:
crates/bigint/src/add_sub.rs:
crates/bigint/src/bits.rs:
crates/bigint/src/cmp.rs:
crates/bigint/src/convert.rs:
crates/bigint/src/div.rs:
crates/bigint/src/limbs.rs:
crates/bigint/src/modular.rs:
crates/bigint/src/mont.rs:
crates/bigint/src/mul.rs:
crates/bigint/src/prime.rs:
crates/bigint/src/random.rs:
crates/bigint/src/shift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
