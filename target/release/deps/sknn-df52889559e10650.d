/root/repo/target/release/deps/sknn-df52889559e10650.d: src/lib.rs

/root/repo/target/release/deps/sknn-df52889559e10650: src/lib.rs

src/lib.rs:
