/root/repo/target/release/deps/property_end_to_end-6764485fae62841d.d: tests/property_end_to_end.rs

/root/repo/target/release/deps/property_end_to_end-6764485fae62841d: tests/property_end_to_end.rs

tests/property_end_to_end.rs:
