/root/repo/target/release/deps/sknn_data-be06b7896f441a44.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/release/deps/libsknn_data-be06b7896f441a44.rmeta: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
