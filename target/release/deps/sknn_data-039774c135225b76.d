/root/repo/target/release/deps/sknn_data-039774c135225b76.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/sknn_data-039774c135225b76: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
