/root/repo/target/release/deps/fig3_parallel-6eada97a8ee63ccf.d: crates/bench/benches/fig3_parallel.rs

/root/repo/target/release/deps/fig3_parallel-6eada97a8ee63ccf: crates/bench/benches/fig3_parallel.rs

crates/bench/benches/fig3_parallel.rs:
