/root/repo/target/release/deps/rand-f2ecc49bc5ec6916.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-f2ecc49bc5ec6916: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
