/root/repo/target/release/deps/sknn-d4d0532f3c46f049.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsknn-d4d0532f3c46f049.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
