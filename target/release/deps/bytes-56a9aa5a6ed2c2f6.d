/root/repo/target/release/deps/bytes-56a9aa5a6ed2c2f6.d: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-56a9aa5a6ed2c2f6.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-56a9aa5a6ed2c2f6.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
