/root/repo/target/release/deps/fig2a_sknnb_records-7f045ab1c9738b85.d: crates/bench/benches/fig2a_sknnb_records.rs

/root/repo/target/release/deps/fig2a_sknnb_records-7f045ab1c9738b85: crates/bench/benches/fig2a_sknnb_records.rs

crates/bench/benches/fig2a_sknnb_records.rs:
