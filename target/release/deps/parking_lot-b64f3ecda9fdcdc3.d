/root/repo/target/release/deps/parking_lot-b64f3ecda9fdcdc3.d: crates/shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-b64f3ecda9fdcdc3.rmeta: crates/shims/parking_lot/src/lib.rs Cargo.toml

crates/shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
