/root/repo/target/release/deps/properties-8f73bdbc921b0f4c.d: crates/bigint/tests/properties.rs

/root/repo/target/release/deps/properties-8f73bdbc921b0f4c: crates/bigint/tests/properties.rs

crates/bigint/tests/properties.rs:
