/root/repo/target/release/deps/sknn_bench-20a639390d55ec0f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsknn_bench-20a639390d55ec0f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsknn_bench-20a639390d55ec0f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
