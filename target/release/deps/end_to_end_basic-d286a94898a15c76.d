/root/repo/target/release/deps/end_to_end_basic-d286a94898a15c76.d: tests/end_to_end_basic.rs

/root/repo/target/release/deps/end_to_end_basic-d286a94898a15c76: tests/end_to_end_basic.rs

tests/end_to_end_basic.rs:
