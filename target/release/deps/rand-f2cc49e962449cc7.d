/root/repo/target/release/deps/rand-f2cc49e962449cc7.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-f2cc49e962449cc7.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
