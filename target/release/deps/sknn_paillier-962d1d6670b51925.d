/root/repo/target/release/deps/sknn_paillier-962d1d6670b51925.d: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs

/root/repo/target/release/deps/libsknn_paillier-962d1d6670b51925.rlib: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs

/root/repo/target/release/deps/libsknn_paillier-962d1d6670b51925.rmeta: crates/paillier/src/lib.rs crates/paillier/src/ciphertext.rs crates/paillier/src/decrypt.rs crates/paillier/src/encoding.rs crates/paillier/src/encrypt.rs crates/paillier/src/error.rs crates/paillier/src/homomorphic.rs crates/paillier/src/keygen.rs crates/paillier/src/keys.rs

crates/paillier/src/lib.rs:
crates/paillier/src/ciphertext.rs:
crates/paillier/src/decrypt.rs:
crates/paillier/src/encoding.rs:
crates/paillier/src/encrypt.rs:
crates/paillier/src/error.rs:
crates/paillier/src/homomorphic.rs:
crates/paillier/src/keygen.rs:
crates/paillier/src/keys.rs:
