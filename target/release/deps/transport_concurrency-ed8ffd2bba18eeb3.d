/root/repo/target/release/deps/transport_concurrency-ed8ffd2bba18eeb3.d: crates/protocols/tests/transport_concurrency.rs

/root/repo/target/release/deps/transport_concurrency-ed8ffd2bba18eeb3: crates/protocols/tests/transport_concurrency.rs

crates/protocols/tests/transport_concurrency.rs:
