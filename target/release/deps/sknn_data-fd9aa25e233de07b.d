/root/repo/target/release/deps/sknn_data-fd9aa25e233de07b.d: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libsknn_data-fd9aa25e233de07b.rlib: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libsknn_data-fd9aa25e233de07b.rmeta: crates/data/src/lib.rs crates/data/src/heart.rs crates/data/src/query.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/heart.rs:
crates/data/src/query.rs:
crates/data/src/synthetic.rs:
