/root/repo/target/release/deps/sknn-55a431da8eddc151.d: src/lib.rs

/root/repo/target/release/deps/libsknn-55a431da8eddc151.rlib: src/lib.rs

/root/repo/target/release/deps/libsknn-55a431da8eddc151.rmeta: src/lib.rs

src/lib.rs:
