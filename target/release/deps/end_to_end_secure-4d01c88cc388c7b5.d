/root/repo/target/release/deps/end_to_end_secure-4d01c88cc388c7b5.d: tests/end_to_end_secure.rs

/root/repo/target/release/deps/end_to_end_secure-4d01c88cc388c7b5: tests/end_to_end_secure.rs

tests/end_to_end_secure.rs:
