/root/repo/target/release/deps/primitives_cross_crate-1d5145e74c9f8f12.d: tests/primitives_cross_crate.rs

/root/repo/target/release/deps/primitives_cross_crate-1d5145e74c9f8f12: tests/primitives_cross_crate.rs

tests/primitives_cross_crate.rs:
