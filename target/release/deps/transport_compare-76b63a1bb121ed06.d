/root/repo/target/release/deps/transport_compare-76b63a1bb121ed06.d: crates/bench/benches/transport_compare.rs

/root/repo/target/release/deps/transport_compare-76b63a1bb121ed06: crates/bench/benches/transport_compare.rs

crates/bench/benches/transport_compare.rs:
