/root/repo/target/release/deps/properties-b0ce4d12e6aeec42.d: crates/paillier/tests/properties.rs

/root/repo/target/release/deps/properties-b0ce4d12e6aeec42: crates/paillier/tests/properties.rs

crates/paillier/tests/properties.rs:
