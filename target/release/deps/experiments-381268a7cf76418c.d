/root/repo/target/release/deps/experiments-381268a7cf76418c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-381268a7cf76418c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
