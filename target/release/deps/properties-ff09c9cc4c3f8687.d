/root/repo/target/release/deps/properties-ff09c9cc4c3f8687.d: crates/protocols/tests/properties.rs

/root/repo/target/release/deps/properties-ff09c9cc4c3f8687: crates/protocols/tests/properties.rs

crates/protocols/tests/properties.rs:
