/root/repo/target/release/deps/bigint-ddaefbfb7daa0f63.d: crates/bench/benches/bigint.rs

/root/repo/target/release/deps/bigint-ddaefbfb7daa0f63: crates/bench/benches/bigint.rs

crates/bench/benches/bigint.rs:
