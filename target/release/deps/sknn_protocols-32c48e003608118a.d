/root/repo/target/release/deps/sknn_protocols-32c48e003608118a.d: crates/protocols/src/lib.rs crates/protocols/src/error.rs crates/protocols/src/party.rs crates/protocols/src/permutation.rs crates/protocols/src/sbd.rs crates/protocols/src/sbor.rs crates/protocols/src/sm.rs crates/protocols/src/smin.rs crates/protocols/src/smin_n.rs crates/protocols/src/ssed.rs crates/protocols/src/stats.rs crates/protocols/src/transport/mod.rs crates/protocols/src/transport/wire.rs crates/protocols/src/transport/channel.rs crates/protocols/src/transport/server.rs crates/protocols/src/transport/session.rs crates/protocols/src/transport/tcp.rs Cargo.toml

/root/repo/target/release/deps/libsknn_protocols-32c48e003608118a.rmeta: crates/protocols/src/lib.rs crates/protocols/src/error.rs crates/protocols/src/party.rs crates/protocols/src/permutation.rs crates/protocols/src/sbd.rs crates/protocols/src/sbor.rs crates/protocols/src/sm.rs crates/protocols/src/smin.rs crates/protocols/src/smin_n.rs crates/protocols/src/ssed.rs crates/protocols/src/stats.rs crates/protocols/src/transport/mod.rs crates/protocols/src/transport/wire.rs crates/protocols/src/transport/channel.rs crates/protocols/src/transport/server.rs crates/protocols/src/transport/session.rs crates/protocols/src/transport/tcp.rs Cargo.toml

crates/protocols/src/lib.rs:
crates/protocols/src/error.rs:
crates/protocols/src/party.rs:
crates/protocols/src/permutation.rs:
crates/protocols/src/sbd.rs:
crates/protocols/src/sbor.rs:
crates/protocols/src/sm.rs:
crates/protocols/src/smin.rs:
crates/protocols/src/smin_n.rs:
crates/protocols/src/ssed.rs:
crates/protocols/src/stats.rs:
crates/protocols/src/transport/mod.rs:
crates/protocols/src/transport/wire.rs:
crates/protocols/src/transport/channel.rs:
crates/protocols/src/transport/server.rs:
crates/protocols/src/transport/session.rs:
crates/protocols/src/transport/tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
