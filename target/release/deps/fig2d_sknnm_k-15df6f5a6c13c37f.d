/root/repo/target/release/deps/fig2d_sknnm_k-15df6f5a6c13c37f.d: crates/bench/benches/fig2d_sknnm_k.rs

/root/repo/target/release/deps/fig2d_sknnm_k-15df6f5a6c13c37f: crates/bench/benches/fig2d_sknnm_k.rs

crates/bench/benches/fig2d_sknnm_k.rs:
