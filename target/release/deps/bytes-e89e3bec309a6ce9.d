/root/repo/target/release/deps/bytes-e89e3bec309a6ce9.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-e89e3bec309a6ce9.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
