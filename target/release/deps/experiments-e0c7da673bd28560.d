/root/repo/target/release/deps/experiments-e0c7da673bd28560.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-e0c7da673bd28560: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
