/root/repo/target/release/deps/paillier-0f439448528be9a5.d: crates/bench/benches/paillier.rs

/root/repo/target/release/deps/paillier-0f439448528be9a5: crates/bench/benches/paillier.rs

crates/bench/benches/paillier.rs:
