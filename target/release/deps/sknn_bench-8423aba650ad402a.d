/root/repo/target/release/deps/sknn_bench-8423aba650ad402a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/sknn_bench-8423aba650ad402a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
