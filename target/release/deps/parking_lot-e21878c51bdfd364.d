/root/repo/target/release/deps/parking_lot-e21878c51bdfd364.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e21878c51bdfd364.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e21878c51bdfd364.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
