/root/repo/target/release/deps/fig2c_sknnb_k-550c655816731e9d.d: crates/bench/benches/fig2c_sknnb_k.rs

/root/repo/target/release/deps/fig2c_sknnb_k-550c655816731e9d: crates/bench/benches/fig2c_sknnb_k.rs

crates/bench/benches/fig2c_sknnb_k.rs:
