/root/repo/target/release/deps/proptest-8c0a92426ca0c835.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-8c0a92426ca0c835: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
