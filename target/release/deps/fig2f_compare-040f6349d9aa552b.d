/root/repo/target/release/deps/fig2f_compare-040f6349d9aa552b.d: crates/bench/benches/fig2f_compare.rs

/root/repo/target/release/deps/fig2f_compare-040f6349d9aa552b: crates/bench/benches/fig2f_compare.rs

crates/bench/benches/fig2f_compare.rs:
