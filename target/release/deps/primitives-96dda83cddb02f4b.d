/root/repo/target/release/deps/primitives-96dda83cddb02f4b.d: crates/bench/benches/primitives.rs

/root/repo/target/release/deps/primitives-96dda83cddb02f4b: crates/bench/benches/primitives.rs

crates/bench/benches/primitives.rs:
