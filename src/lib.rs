//! # sknn — Secure k-Nearest Neighbor Queries over Encrypted Data
//!
//! A Rust implementation of
//! *Elmehdwi, Samanthula, Jiang — "Secure k-Nearest Neighbor Query over
//! Encrypted Data in Outsourced Environments"* (ICDE 2014, arXiv:1307.4824),
//! from the Paillier cryptosystem up to the two query protocols SkNN_b and
//! SkNN_m, including the synthetic-workload generators and the experiment
//! harness that regenerates every figure of the paper's evaluation.
//!
//! This facade crate re-exports the public API of the workspace crates so an
//! application needs a single dependency:
//!
//! | Layer | Crate | What it provides |
//! |-------|-------|------------------|
//! | [`bigint`] | `sknn-bigint` | From-scratch arbitrary-precision arithmetic (Montgomery exponentiation, Miller–Rabin, …) |
//! | [`paillier`] | `sknn-paillier` | The Paillier additively homomorphic cryptosystem |
//! | [`protocols`] | `sknn-protocols` | The SM, SSED, SBD, SMIN, SMIN_n and SBOR two-party primitives, the key-holder trait, and the pluggable transport stack |
//! | [`core`] | `sknn-core` | The SkNN_b / SkNN_m protocols, the Alice/Bob/C1/C2 roles and the [`SknnEngine`] query-engine façade |
//! | [`data`] | `sknn-data` | Synthetic and heart-disease workload generators |
//!
//! ## Architecture: the `SknnEngine` query-engine façade
//!
//! The paper's protocols assume one static outsourced table and one query
//! at a time. The engine layer generalizes that into a deployment front
//! door — one pair of non-colluding clouds hosting many workloads:
//!
//! ```text
//!  SknnEngine                                 core::engine
//!    │
//!    ├─ dataset registry                      register_dataset / remove_dataset
//!    │    name → { EncryptedDatabase,         one Paillier key pair per
//!    │             distance bits l,           deployment; per-dataset l and
//!    │             packing params }           slot-packing derivation
//!    │
//!    ├─ QueryBuilder                          engine.query("heart").k(5)
//!    │    typed, validates up front:            .point(&q)
//!    │    unknown dataset, k ∉ 1..=n,           .protocol(Protocol::Secure)
//!    │    arity mismatch, value bound →         .build()?
//!    │    SknnError::{UnknownDataset,
//!    │                InvalidQuery}
//!    │
//!    ├─ run / run_batch                       scatter–gather plans over the
//!    │    per-query QueryOutcome              dataset's shards, scheduled as
//!    │    { result, profile, audit, comm }    shard-stage tasks across
//!    │                                        ParallelismConfig threads and
//!    │                                        ShardingConfig.sessions wires
//!    │
//!    └─ dynamic updates                       DataOwner::encrypt_record →
//!         append_records / tombstone_record   C1's table grows and shrinks
//!                                             between queries; protocols
//!                                             skip tombstones
//! ```
//!
//! The legacy [`Federation`] single-table façade is a thin shim over a
//! one-dataset engine (its table lives under `Federation::DATASET`), so
//! existing embedders keep working; `Federation::engine()` is the
//! incremental migration path. See `DESIGN.md` ("Engine façade & dataset
//! lifecycle") for what dynamic updates do and do not leak to the clouds.
//!
//! ## Architecture: the sharded encrypted data plane
//!
//! The paper's protocols are one linear scan over all `n` records driven
//! by one C1↔C2 conversation — which is why batch throughput stays flat
//! no matter how many threads submit queries. [`ShardingConfig`]
//! (`{ shards, sessions }` on [`FederationConfig`]) turns the query path
//! into a **staged scatter–gather plan** (`core::exec`):
//!
//! ```text
//!  EncryptedDatabase                 round-robin shards: record i → shard i mod S
//!    └─ ShardView                    per-shard live/tombstone view, stable indices
//!
//!  scatter (per shard, pinned to session shard mod sessions):
//!    SkNN_b:  SsedStage → TopKStage          shard's k candidates + distance cts
//!    SkNN_m:  SsedStage → SbdStage →         shard's k candidates, extracted with
//!             k oblivious SMIN_n rounds      the paper's own randomize-permute
//!                                            machinery (nothing decrypted)
//!  gather (primary session):
//!    SkNN_b:  one top-k over the ≤ k·S candidate distances
//!    SkNN_m:  the same k SMIN_n/selection rounds — over ≤ k·S candidates
//!             instead of all n
//!    FinalizeStage: the usual two-share reveal to Bob
//! ```
//!
//! Results are bit-identical to the monolithic scan for every shard count
//! (the global k nearest are each among their shard's k nearest; the
//! merge orders by the same (distance, storage index) total order), and
//! `shards = 1` *is* the monolithic code path, not a parallel
//! implementation of it. Each shard's stages talk to the C2 session the
//! shard is pinned to — [`protocols::transport::SessionPool`] stands up
//! `sessions` fully independent connections (own wire, demux thread and
//! server workers) — so scatter stages overlap on the wire instead of
//! pipelining through one connection. [`QueryProfile`] reports per-shard,
//! per-stage ciphertext/decryption counters (`shard_stage_ops`), and the
//! `shard-scaling` experiment tracks queries/sec and scatter/gather
//! volume in `BENCH_results.json` per PR. What sharding changes about
//! C2's view — per-shard candidate counts and nothing else — is analyzed
//! in `DESIGN.md` ("Sharded data plane").
//!
//! ## Architecture: the C1↔C2 transport stack
//!
//! The paper's setting has two non-colluding clouds: C1 holds the encrypted
//! database and drives the query protocols; C2 holds the Paillier secret key
//! and answers a small, fixed set of requests (the
//! [`KeyHolder`] trait — exactly the
//! messages the Section 4.3 security argument reasons about). Everything
//! between the two is the *transport stack*, layered so protocol logic never
//! depends on the wire underneath:
//!
//! ```text
//!  SkNN_b / SkNN_m, SM, SBD, SMIN_n, …        work against &dyn KeyHolder
//!       │
//!  SessionKeyHolder                           protocols::transport::SessionKeyHolder
//!       │   · pipelining: every request gets a correlation id; a demux
//!       │     thread routes responses, so N worker threads keep N
//!       │     requests in flight on ONE connection
//!       │   · coalescing: concurrent small SmBatch/LsbBatch requests
//!       │     merge into one round trip (CoalesceConfig); the paper's
//!       │     dominant cost is round trips, not bytes
//!       │
//!  Transport trait                            protocols::transport::Transport
//!       │   send_frame / recv_frame / stats / close
//!       │
//!       ├─ ChannelTransport                   in-process MPMC frame queues:
//!       │                                     real wire bytes + traffic
//!       │                                     accounting without sockets
//!       └─ TcpTransport                       one TCP socket (std::net),
//!                                             TCP_NODELAY, same framing
//! ```
//!
//! Frames are versioned and length-prefixed (`protocols::transport::wire`);
//! malformed peer input surfaces as a typed
//! [`protocols::transport::TransportError`] — the key-holder server loop
//! ([`protocols::transport::serve`], which runs a configurable worker pool
//! so pipelined requests are also *served* concurrently) answers a broken
//! request with an error frame instead of crashing.
//!
//! [`FederationConfig`] selects the deployment shape: `transport` picks
//! [`TransportKind::InProcess`] (direct calls, the paper's single-machine
//! evaluation), [`TransportKind::Channel`] (in-process frames with
//! byte-accurate accounting) or [`TransportKind::Tcp`] (a real loopback
//! socket with the key-holder server on a background thread); `threads`
//! sets both C1's record-parallel workers and C2's serving workers; and
//! `coalesce` toggles request coalescing on the remote transports.
//! [`QueryResult::comm`] then reports per-query round trips and bytes for
//! any remote transport.
//!
//! ## Architecture: offline/online Paillier precomputation
//!
//! Query cost is dominated by the `r^N mod N²` exponentiation inside every
//! fresh Paillier encryption (SSED masking, SBD rounds, every key-holder
//! response). That exponentiation depends only on the randomness, so it
//! moves *offline*:
//!
//! ```text
//!  offline                                 online (query path)
//!  ───────                                 ───────────────────
//!  RandomnessPool                          PooledEncryptor
//!    · queue of precomputed (r, r^N mod N²)  · encrypt      = 1 mod-mul
//!    · background refill thread              · encrypt_zero = queue pop
//!    · synchronous fallback when drained     · rerandomize  = 1 mod-mul
//!    · reusable sliding-window Montgomery
//!      context for N² (bigint layer)
//! ```
//!
//! [`SknnEngine`] stands up one pool per cloud at setup and pre-warms both
//! ([`FederationConfig`]'s `pool` / `pool_prewarm` knobs; `capacity: 0`
//! disables pooling). C2's pool backs every fresh encryption in a
//! key-holder response — locally or behind the transport server — and C1's
//! pool backs the SBD round masks and result masking. Per-query pool hits
//! vs synchronous fallbacks are reported by [`QueryProfile::pool`]
//! ([`PoolActivity`]). Pool entries are sampled exactly like direct
//! encryption randomness and consumed at most once, so the ciphertext
//! distribution — and with it the paper's security argument — is unchanged
//! (see `DESIGN.md`).
//!
//! ## Architecture: slot-packed Paillier batching (SIMD)
//!
//! A Paillier plaintext holds a full `Z_N` element while protocol values
//! are a few dozen bits wide, so the hot C1↔C2 exchanges can pack σ
//! guard-banded values into one ciphertext (`paillier::packing::SlotLayout`,
//! stride = payload + guard so slot-wise products never carry):
//!
//! ```text
//!  scalar SSED (per record, m attributes)   packed SSED (σ records/group)
//!  ───────────────────────────────────────  ─────────────────────────────
//!  2·m ciphertexts  →  C2: 2·m decrypts     m ciphertexts → C2: m decrypts
//!  m ciphertexts    ←  (squares)            m ciphertexts ← (slot squares)
//!     …× σ records                             per GROUP of σ records
//!
//!  scalar SBD round: n masked cts → n decrypts → n bit cts
//!  packed SBD round: ⌈n/σ⌉ packed cts → ⌈n/σ⌉ decrypts → n bit cts
//! ```
//!
//! C1 merges ciphertexts into slots with a homomorphic Horner walk (~one
//! full exponentiation per group) and strips the blinding slot-wise; C2
//! decrypts once per group. The per-bit SBD responses stay scalar — SMIN
//! consumes bits individually and an additively homomorphic ciphertext
//! cannot be split by the party that cannot decrypt it — which is the one
//! floor on the response side (see `DESIGN.md`). [`FederationConfig`]'s
//! `packing` knob (`Off` / `Auto(σ)` / `Fixed(σ)`) routes the SSED and SBD
//! stages of both protocols through the packed paths;
//! [`QueryProfile`]`::ops` reports per-stage ciphertexts-on-wire and C2
//! decryption counts, and new wire request tags are negotiated per
//! connection (`Features` probe) so pre-packing peers interoperate
//! untouched.
//!
//! ## Deprecation registry
//!
//! Every deprecated item in the workspace is gated with a
//! `#[deprecated(since, note)]` attribute whose note points here; this
//! list is the single place to check what is scheduled for removal and
//! what replaces it. No internal code calls a deprecated item except the
//! equivalence test that pins the deprecated path to its replacement —
//! and `sknn-lint`'s `decrypt-containment` rule now enforces this
//! statically for the decrypt surface: every `decrypt*` method
//! (deprecated or not) may only be called from the key-holder modules on
//! the rule's allowlist, so a stray `decrypt_u64` caller fails CI rather
//! than just emitting a deprecation warning.
//!
//! | Deprecated | Since | Use instead |
//! |------------|-------|-------------|
//! | `Federation::query_secure_with_bits` | 0.1.0 | the engine's [`QueryBuilder`] with `.distance_bits(l)` |
//! | `PrivateKey::decrypt_u64` | 0.1.0 | [`PrivateKey::try_decrypt_u64`] (typed error instead of a panic) |
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use sknn::{Protocol, SknnEngine, FederationConfig, Table};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // Stand up the two clouds under one fresh Paillier key pair.
//! let config = FederationConfig { key_bits: 128, ..Default::default() };
//! let mut engine = SknnEngine::setup(config, &mut rng).unwrap();
//!
//! // Alice's plaintext table: rows are records, columns are attributes.
//! // Outsourcing encrypts it attribute-wise; ciphertexts go to cloud C1,
//! // the secret key went to cloud C2 at setup.
//! let table = Table::new(vec![
//!     vec![63, 1, 145],
//!     vec![56, 1, 130],
//!     vec![57, 0, 140],
//!     vec![55, 0, 128],
//! ]).unwrap();
//! engine.register_dataset("heart", &table, &mut rng).unwrap();
//!
//! // Bob asks for the 2 records nearest to his (encrypted) query. With
//! // `Protocol::Secure` (the default), neither cloud learns the distances,
//! // the result records, or the access pattern.
//! let outcome = engine
//!     .query("heart")
//!     .k(2)
//!     .point(&[58, 1, 133])
//!     .protocol(Protocol::Secure)
//!     .run(&mut rng)
//!     .unwrap();
//! assert_eq!(outcome.result.len(), 2);
//! assert!(outcome.audit.is_oblivious());
//!
//! // The data owner can append and retire records without re-outsourcing.
//! let record = engine.owner().encrypt_record(&[58, 1, 133], &mut rng).unwrap();
//! engine.append_records("heart", vec![record]).unwrap();
//! let nearest = engine.query("heart").k(1).point(&[58, 1, 133]).run(&mut rng).unwrap();
//! assert_eq!(nearest.result, vec![vec![58, 1, 133]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sknn_bigint as bigint;
pub use sknn_core as core;
pub use sknn_data as data;
pub use sknn_paillier as paillier;
pub use sknn_protocols as protocols;
pub use sknn_store as store;

// The most commonly used types, flattened for convenience.
pub use sknn_core::{
    plain_knn, plain_knn_records, squared_euclidean_distance, AccessPatternAudit, CloudC1,
    CompactionReport, DataOwner, Dataset, DatasetOptions, DurableUpdateError, Federation,
    FederationConfig, InvalidQueryReason, KeyHolder, LocalKeyHolder, OpCounters, ParallelismConfig,
    PoolActivity, PreparedQuery, Protocol, QueryBuilder, QueryOutcome, QueryProfile, QueryResult,
    QueryUser, RecoveryReport, RetryPolicy, RetryReport, SessionSet, ShardRetry, ShardView,
    ShardingConfig, SknnEngine, SknnError, Stage, StoreError, Table, TransportKind, UpdateRejected,
};
pub use sknn_paillier::{
    Ciphertext, Keypair, PoolConfig, PoolStats, PooledEncryptor, PrivateKey, PublicKey,
    RandomnessPool,
};
