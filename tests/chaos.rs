//! Chaos suite: deterministic fault injection across the full matrix.
//!
//! Every fault class a real deployment sees — dropped frames, slow frames,
//! duplicated frames, corrupted frames, severed connections — is injected
//! at a deterministic frame index through
//! [`sknn::protocols::transport::FaultInjectTransport`], across
//! {Channel, Tcp} × {Basic, Secure} × shards {1, 4}. The contract under
//! test is the fault-tolerance layer's headline guarantee: a query under
//! fault either returns **exactly the fault-free result** or a **typed
//! error** — never a hang (per-request deadlines bound every wait), never
//! a wrong answer, never a panic.
//!
//! The suite serializes through one mutex: several tests assert on
//! process-wide thread counts, which concurrent engines would distort.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::protocols::transport::{
    channel_pair, serve, BackpressureConfig, CoalesceConfig, FaultInjectTransport, FaultKind,
    FaultPlan, Reactor, SessionKeyHolder, SessionPool, TcpTransport, Transport,
};
use sknn::{
    plain_knn_records, DataOwner, FederationConfig, LocalKeyHolder, PoolConfig, Protocol,
    RetryPolicy, ShardingConfig, SknnEngine, SknnError, Table, TransportKind,
};
use std::net::TcpListener;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Serializes the whole suite (thread-count assertions need the process to
/// themselves) and caches the one key pair every engine shares.
static LOCK: Mutex<()> = Mutex::new(());
static OWNER: OnceLock<DataOwner> = OnceLock::new();

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn owner() -> DataOwner {
    OWNER
        .get_or_init(|| DataOwner::new(96, &mut StdRng::seed_from_u64(0xFA_u64)))
        .clone()
}

/// 6 records whose squared distances from the query (3, 3) are distinct,
/// so both protocols have one valid result list for every k and any
/// fault-induced deviation is visible immediately.
fn table() -> Table {
    Table::new(
        (0..6u64)
            .map(|i| vec![i, (i * i + 2 * i) % 23])
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

const QUERY: [u64; 2] = [3, 3];
const MAX_VALUE: u64 = 22;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wire {
    Channel,
    Tcp,
    /// The in-process channel multiplexed through the async reactor.
    AsyncChannel,
    /// Loopback TCP multiplexed through the async reactor.
    AsyncTcp,
}

impl Wire {
    const ALL: [Wire; 4] = [Wire::Channel, Wire::Tcp, Wire::AsyncChannel, Wire::AsyncTcp];

    fn is_async(self) -> bool {
        matches!(self, Wire::AsyncChannel | Wire::AsyncTcp)
    }
}

/// The wires the matrix tests run over, narrowed by the `SKNN_WIRE_FILTER`
/// environment variable (CI uses it to split blocking and async backends
/// into separate jobs). Comma-separated tokens, case-insensitive: a wire
/// name (`channel`, `tcp`, `asyncchannel`, `asynctcp`) or the groups
/// `blocking` / `async`. Unset or empty runs everything.
fn wires() -> Vec<Wire> {
    let filter = std::env::var("SKNN_WIRE_FILTER").unwrap_or_default();
    if filter.trim().is_empty() {
        return Wire::ALL.to_vec();
    }
    let tokens: Vec<String> = filter
        .split(',')
        .map(|t| t.trim().to_ascii_lowercase())
        .filter(|t| !t.is_empty())
        .collect();
    let selected: Vec<Wire> = Wire::ALL
        .into_iter()
        .filter(|w| {
            let name = format!("{w:?}").to_ascii_lowercase();
            let group = if w.is_async() { "async" } else { "blocking" };
            tokens.iter().any(|t| t == &name || t == group)
        })
        .collect();
    assert!(
        !selected.is_empty(),
        "SKNN_WIRE_FILTER={filter:?} matches no wire"
    );
    selected
}

/// The suite's policy: enough attempts to absorb any single fault, a short
/// backoff, and a deadline that converts dropped frames into typed
/// timeouts well inside the test budget.
fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(2),
        deadline: Some(Duration::from_millis(400)),
    }
}

/// Stands up an engine over `plans.len()` sessions; session `i`'s client
/// transport is wrapped in a [`FaultInjectTransport`] when `plans[i]` is
/// set. Offline randomness pooling is off so the only long-lived threads
/// are the sessions' own (servers + demux), which the leak check counts.
fn build_engine(
    wire: Wire,
    shards: usize,
    plans: &[Option<FaultPlan>],
    retry: RetryPolicy,
    rng: &mut StdRng,
) -> SknnEngine {
    let owner = owner();
    let mut clients = Vec::new();
    let mut servers = Vec::new();
    // Async wires share one reactor; fault plans are installed on the
    // reactor connection itself (the reactor owns the wire end the blocking
    // backends would wrap in a FaultInjectTransport).
    let reactor = wire.is_async().then(|| Reactor::new().expect("reactor"));
    let backpressure = BackpressureConfig::default();
    for (i, plan) in plans.iter().enumerate() {
        let holder = LocalKeyHolder::new(owner.private_key().clone(), 9_000 + i as u64);
        if let Some(reactor) = &reactor {
            let conn = match wire {
                Wire::AsyncChannel => {
                    let (conn, server_end) = reactor
                        .channel_pair(backpressure, *plan)
                        .expect("channel pair");
                    servers.push(
                        std::thread::Builder::new()
                            .name(format!("chaos-c2-achan-{i}"))
                            .spawn(move || serve(&server_end, &holder, 2))
                            .expect("spawn chaos async server"),
                    );
                    conn
                }
                Wire::AsyncTcp => {
                    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
                    let addr = listener.local_addr().expect("local addr");
                    servers.push(
                        std::thread::Builder::new()
                            .name(format!("chaos-c2-atcp-{i}"))
                            .spawn(move || {
                                let server_end = TcpTransport::accept(&listener)?;
                                serve(&server_end, &holder, 2)
                            })
                            .expect("spawn chaos async tcp server"),
                    );
                    let stream = std::net::TcpStream::connect(addr).expect("connect");
                    reactor
                        .connect_tcp(stream, backpressure, *plan)
                        .expect("register with reactor")
                }
                Wire::Channel | Wire::Tcp => unreachable!("blocking wire with a reactor"),
            };
            clients.push(SessionKeyHolder::connect_async(
                owner.public_key().clone(),
                conn,
                CoalesceConfig::disabled(),
            ));
            continue;
        }
        let raw: Arc<dyn Transport> = match wire {
            Wire::Channel => {
                let (client_end, server_end) = channel_pair();
                servers.push(
                    std::thread::Builder::new()
                        .name(format!("chaos-c2-{i}"))
                        .spawn(move || serve(&server_end, &holder, 2))
                        .expect("spawn chaos server"),
                );
                Arc::new(client_end)
            }
            Wire::Tcp => {
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = listener.local_addr().expect("local addr");
                servers.push(
                    std::thread::Builder::new()
                        .name(format!("chaos-c2-tcp-{i}"))
                        .spawn(move || {
                            let server_end = TcpTransport::accept(&listener)?;
                            serve(&server_end, &holder, 2)
                        })
                        .expect("spawn chaos tcp server"),
                );
                Arc::new(TcpTransport::connect(addr).expect("connect"))
            }
            Wire::AsyncChannel | Wire::AsyncTcp => unreachable!("async wire without a reactor"),
        };
        let transport: Arc<dyn Transport> = match plan {
            Some(p) => Arc::new(FaultInjectTransport::new(raw, *p)),
            None => raw,
        };
        clients.push(SessionKeyHolder::connect(
            owner.public_key().clone(),
            transport,
            CoalesceConfig::disabled(),
        ));
    }
    let mut pool = SessionPool::from_parts(clients, servers).expect("assemble pool");
    if let Some(reactor) = reactor {
        pool = pool.with_reactor(reactor);
    }
    let config = FederationConfig {
        key_bits: 96,
        max_query_value: MAX_VALUE,
        transport: match wire {
            Wire::Channel => TransportKind::Channel,
            Wire::Tcp => TransportKind::Tcp,
            Wire::AsyncChannel => TransportKind::AsyncChannel,
            Wire::AsyncTcp => TransportKind::AsyncTcp,
        },
        threads: 2,
        sharding: ShardingConfig {
            shards,
            sessions: plans.len(),
        },
        pool: PoolConfig {
            capacity: 0,
            ..Default::default()
        },
        pool_prewarm: 0,
        retry,
        ..Default::default()
    };
    let mut engine = SknnEngine::setup_with_sessions(owner, config, pool).expect("engine");
    engine
        .register_dataset("t", &table(), rng)
        .expect("register");
    engine
}

/// One plan per fault class, striking frame `at` (frame 0 is the feature
/// negotiation the session constructor performs, so `at ≥ 2` lands inside
/// query traffic).
fn plan_for(kind: FaultKind, at: u64) -> FaultPlan {
    match kind {
        FaultKind::Drop => FaultPlan::drop_at(at),
        FaultKind::Delay => FaultPlan::delay_at(at, Duration::from_millis(30)),
        FaultKind::Duplicate => FaultPlan::duplicate_at(at),
        FaultKind::Corrupt => FaultPlan::corrupt_at(at),
        FaultKind::Sever => FaultPlan::sever_at(at),
    }
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("read task dir")
        .count()
}

/// Polls until the process thread count drops back to `baseline` (session
/// demux and server threads are reaped on engine drop with a bounded
/// join), failing after a generous deadline.
fn assert_threads_return_to(baseline: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "leaked threads: {now} alive, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The full matrix over a single session: every fault class must yield
/// either the exact fault-free result (recovered by deadline + retry) or,
/// for a severed connection with no survivor, a typed error. No hang, no
/// panic, no wrong answer, no leaked thread.
#[test]
fn fault_matrix_recovers_or_errors_typed() {
    let _guard = lock();
    let expected = plain_knn_records(&table(), &QUERY, 2);
    let baseline = thread_count();
    for wire in wires() {
        for protocol in [Protocol::Basic, Protocol::Secure] {
            for shards in [1usize, 4] {
                for kind in FaultKind::ALL {
                    let mut rng = StdRng::seed_from_u64(0xC4A0_5000);
                    let engine =
                        build_engine(wire, shards, &[Some(plan_for(kind, 3))], policy(), &mut rng);
                    let run = engine
                        .query("t")
                        .k(2)
                        .point(&QUERY)
                        .protocol(protocol)
                        .run(&mut rng);
                    let label = format!("{wire:?}/{protocol:?}/shards={shards}/{kind:?}");
                    match run {
                        Ok(outcome) => {
                            assert_eq!(outcome.result, expected, "{label}: wrong answer");
                        }
                        Err(e) => {
                            // Only a severed wire with no surviving session
                            // is allowed to fail — and then only with a
                            // typed protocol error.
                            assert!(
                                matches!(kind, FaultKind::Sever),
                                "{label}: unexpected failure {e}"
                            );
                            assert!(
                                matches!(e, SknnError::Protocol(_)),
                                "{label}: untyped error {e}"
                            );
                        }
                    }
                    drop(engine);
                }
            }
        }
    }
    assert_threads_return_to(baseline);
}

/// A severed connection with a single session must be a typed error (there
/// is no survivor to re-pin onto), and the engine must remain usable for
/// constructing further engines — i.e. the failure is contained.
#[test]
fn sever_without_survivor_is_a_typed_error() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0x5E4E);
    let engine = build_engine(
        Wire::Channel,
        4,
        &[Some(FaultPlan::sever_at(2))],
        policy(),
        &mut rng,
    );
    let err = match engine
        .query("t")
        .k(2)
        .point(&QUERY)
        .protocol(Protocol::Basic)
        .run(&mut rng)
    {
        Err(e) => e,
        Ok(_) => panic!("severed single-session query cannot succeed"),
    };
    assert!(matches!(err, SknnError::Protocol(_)), "untyped: {err}");
}

/// The acceptance scenario: two sessions, four shards, session 1's wire
/// severed mid-batch. The batch must complete on the survivor with every
/// result identical to the fault-free reference, and the per-query
/// [`sknn::RetryReport`]s must show shards re-pinned off the dead session.
#[test]
fn sever_one_of_two_sessions_completes_batch_on_survivor() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let baseline = thread_count();
    let engine = build_engine(
        Wire::Channel,
        4,
        &[None, Some(FaultPlan::sever_at(2))],
        policy(),
        &mut rng,
    );
    let queries: Vec<_> = (1..=3usize)
        .map(|k| {
            engine
                .query("t")
                .k(k)
                .point(&QUERY)
                .protocol(Protocol::Basic)
                .build()
                .expect("build query")
        })
        .collect();
    let outcomes = engine.run_batch(&queries, &mut rng);
    let mut failed_over = Vec::new();
    let mut dead = Vec::new();
    for (k, outcome) in (1..=3usize).zip(&outcomes) {
        let outcome = outcome.as_ref().expect("batch query survives the sever");
        assert_eq!(
            outcome.result,
            plain_knn_records(&table(), &QUERY, k),
            "k = {k}"
        );
        failed_over.extend(outcome.retries.failed_over_shards());
        dead.extend(outcome.retries.dead_sessions.iter().copied());
    }
    assert!(
        !failed_over.is_empty(),
        "no shard re-pinned; reports: {:?}",
        outcomes
            .iter()
            .map(|o| o.as_ref().map(|o| o.retries.clone()))
            .collect::<Vec<_>>()
    );
    assert!(dead.contains(&1), "session 1 not reported dead: {dead:?}");
    // The recovery shows up in the pool's resilience counters too.
    let comm = engine.comm_stats().expect("remote transport accounts");
    assert!(comm.failovers >= 1, "failovers not counted: {comm:?}");
    drop(engine);
    assert_threads_return_to(baseline);
}

/// Same failover scenario through the fully secure protocol: the re-pinned
/// scatter stages re-run their oblivious rounds bit-identically, so the
/// result matches the fault-free reference exactly.
#[test]
fn secure_failover_matches_reference() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0x5EC2);
    let engine = build_engine(
        Wire::Tcp,
        4,
        &[None, Some(FaultPlan::sever_at(2))],
        policy(),
        &mut rng,
    );
    let outcome = engine
        .query("t")
        .k(2)
        .point(&QUERY)
        .protocol(Protocol::Secure)
        .run(&mut rng)
        .expect("secure query survives the sever");
    assert_eq!(outcome.result, plain_knn_records(&table(), &QUERY, 2));
    assert!(
        !outcome.retries.failed_over_shards().is_empty(),
        "no failover recorded: {:?}",
        outcome.retries
    );
}

/// With the default policy ([`RetryPolicy::none`]) nothing retries: a
/// corrupted exchange surfaces as a typed error immediately — the exact
/// pre-resilience behavior, just with a typed error instead of a panic.
#[test]
fn disabled_policy_fails_fast_with_typed_error() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0x0FF);
    let engine = build_engine(
        Wire::Channel,
        1,
        &[Some(FaultPlan::corrupt_at(2))],
        RetryPolicy::none(),
        &mut rng,
    );
    let run = engine
        .query("t")
        .k(2)
        .point(&QUERY)
        .protocol(Protocol::Basic)
        .run(&mut rng);
    let err = match run {
        Err(e) => e,
        Ok(_) => panic!("corrupted exchange cannot succeed without retries"),
    };
    assert!(matches!(err, SknnError::Protocol(_)), "untyped: {err}");
    assert!(
        engine.comm_stats().expect("accounting").retries == 0,
        "none() must not retry"
    );
}

/// A clean run under an armed-but-never-striking plan reports no failure
/// handling at all: the resilience layer is invisible until a fault fires.
#[test]
fn clean_run_reports_clean() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0xC1EA);
    let engine = build_engine(
        Wire::Channel,
        4,
        // Strike far beyond the traffic this test generates.
        &[Some(FaultPlan::drop_at(1_000_000))],
        policy(),
        &mut rng,
    );
    let outcome = engine
        .query("t")
        .k(2)
        .point(&QUERY)
        .protocol(Protocol::Basic)
        .run(&mut rng)
        .expect("clean run");
    assert_eq!(outcome.result, plain_knn_records(&table(), &QUERY, 2));
    assert!(outcome.retries.is_clean(), "{:?}", outcome.retries);
    let comm = engine.comm_stats().expect("accounting");
    assert_eq!((comm.retries, comm.reconnects, comm.failovers), (0, 0, 0));
}

/// Failover on the async backend: two reactor-multiplexed sessions, one
/// severed mid-query. The shard re-pinning and retry machinery must work
/// unchanged over the reactor — and dropping the engine must reap the
/// reactor thread along with the servers (zero leaked threads).
#[test]
fn async_sever_fails_over_and_leaks_no_threads() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0xA51C);
    let baseline = thread_count();
    for wire in [Wire::AsyncChannel, Wire::AsyncTcp] {
        let engine = build_engine(
            wire,
            4,
            &[None, Some(FaultPlan::sever_at(2))],
            policy(),
            &mut rng,
        );
        let outcome = engine
            .query("t")
            .k(2)
            .point(&QUERY)
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap_or_else(|e| panic!("{wire:?}: query must survive the sever: {e}"));
        assert_eq!(
            outcome.result,
            plain_knn_records(&table(), &QUERY, 2),
            "{wire:?}"
        );
        assert!(
            !outcome.retries.failed_over_shards().is_empty(),
            "{wire:?}: no failover recorded: {:?}",
            outcome.retries
        );
        drop(engine);
    }
    assert_threads_return_to(baseline);
}

/// A full engine stood up purely through [`FederationConfig::transport`]
/// (no hand-built pool): the `AsyncTcp` arm in the engine itself must
/// produce correct answers and reap every thread — servers, workers and
/// the reactor — on drop.
#[test]
fn engine_configured_async_tcp_round_trips_and_reaps() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0xE2E1);
    let baseline = thread_count();
    for transport in [TransportKind::AsyncChannel, TransportKind::AsyncTcp] {
        let mut engine = SknnEngine::setup_with_owner(
            owner(),
            FederationConfig {
                key_bits: 96,
                max_query_value: MAX_VALUE,
                transport,
                threads: 2,
                sharding: ShardingConfig {
                    shards: 2,
                    sessions: 2,
                },
                pool: PoolConfig {
                    capacity: 0,
                    ..Default::default()
                },
                pool_prewarm: 0,
                ..Default::default()
            },
        )
        .expect("async engine");
        engine
            .register_dataset("t", &table(), &mut rng)
            .expect("register");
        let outcome = engine
            .query("t")
            .k(2)
            .point(&QUERY)
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .expect("query");
        assert_eq!(
            outcome.result,
            plain_knn_records(&table(), &QUERY, 2),
            "{transport:?}"
        );
        assert!(outcome.comm.is_some(), "{transport:?} must account traffic");
        drop(engine);
    }
    assert_threads_return_to(baseline);
}
