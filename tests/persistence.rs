//! Durable round-trip invariance: a dataset persisted to disk, churned
//! with appends and tombstones, flushed, and reloaded by a fresh engine
//! must answer every query **bit-identically** to the engine that wrote
//! it — across both protocols (SkNN_b and SkNN_m), across transports,
//! and across a compaction that rewrites shard logs and reclaims
//! tombstoned records.
//!
//! The contract under test is the storage layer's headline guarantee:
//! durability is *invisible* to query semantics. `open_dir` rebuilds
//! exactly the in-memory `EncryptedDatabase` the writer held (same
//! ciphertext bytes, same shard placement, same liveness), so result
//! lists — which are deterministic given the database and the query —
//! cannot drift across a restart.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::{
    plain_knn_records, DataOwner, FederationConfig, Protocol, ShardingConfig, SknnEngine, Table,
    TransportKind,
};
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("sknn-persist-{}-{}-{}", std::process::id(), tag, n))
}

/// 8 records whose squared distances from the query (3, 3) are distinct,
/// so every k has exactly one valid result list and any reload drift is
/// visible immediately.
fn table() -> Table {
    Table::new(
        (0..8u64)
            .map(|i| vec![i, (i * i + 2 * i) % 23])
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

const QUERY: [u64; 2] = [3, 3];
const MAX_VALUE: u64 = 22;

fn config(transport: TransportKind) -> FederationConfig {
    FederationConfig {
        key_bits: 96,
        max_query_value: MAX_VALUE,
        transport,
        sharding: ShardingConfig {
            shards: 3,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Ground truth over the records still live after tombstoning the given
/// original-table rows.
fn live_knn(dead: &[usize], k: usize) -> Vec<Vec<u64>> {
    let rows: Vec<Vec<u64>> = table()
        .records()
        .iter()
        .enumerate()
        .filter(|(i, _)| !dead.contains(i))
        .map(|(_, r)| r.to_vec())
        .collect();
    plain_knn_records(&Table::new(rows).unwrap(), &QUERY, k)
}

/// register → tombstone → append → flush → drop → reload: both protocols
/// must return bit-identical result lists before and after the restart,
/// on an in-process wire and on a real frame channel.
#[test]
fn round_trip_is_bit_identical_across_restart() {
    for transport in [TransportKind::InProcess, TransportKind::Channel] {
        let mut rng = StdRng::seed_from_u64(0xD0_0001);
        let root = tmp_root("roundtrip");
        let owner = DataOwner::new(96, &mut rng);

        let mut engine = SknnEngine::open_dir(owner.clone(), config(transport), &root)
            .expect("open empty store root");
        engine
            .register_dataset_persistent("d", &table(), &mut rng)
            .expect("persistent registration");
        engine.tombstone_record("d", 1).expect("tombstone");
        let extra = owner.encrypt_record(&[3, 4], &mut rng).expect("encrypt");
        assert_eq!(
            engine.append_records("d", vec![extra]).expect("append"),
            vec![8],
            "stable indices keep counting past the original table"
        );
        engine.flush().expect("flush");

        let mut before = Vec::new();
        for protocol in [Protocol::Basic, Protocol::Secure] {
            let outcome = engine
                .query("d")
                .k(3)
                .point(&QUERY)
                .protocol(protocol)
                .run(&mut rng)
                .expect("query before restart");
            before.push(outcome.result);
        }
        drop(engine);

        let reloaded = SknnEngine::open_dir(owner, config(transport), &root).expect("reload");
        assert_eq!(reloaded.dataset_names(), vec!["d"]);
        assert!(
            reloaded.recovery_report("d").expect("report").is_clean(),
            "a flushed store reloads without salvage"
        );
        for (protocol, expected) in [Protocol::Basic, Protocol::Secure].into_iter().zip(&before) {
            let outcome = reloaded
                .query("d")
                .k(3)
                .point(&QUERY)
                .protocol(protocol)
                .run(&mut rng)
                .expect("query after restart");
            assert_eq!(
                &outcome.result, expected,
                "{transport:?}/{protocol:?}: reload changed the result"
            );
        }
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
}

/// Compaction rewrites every shard log, renumbers physical slots, and
/// reclaims tombstoned bytes — and none of that may show through the
/// query API, before or after a restart of the compacted store.
#[test]
fn compaction_then_restart_preserves_results_and_stable_indices() {
    let mut rng = StdRng::seed_from_u64(0xD0_0002);
    let root = tmp_root("compact");
    let owner = DataOwner::new(96, &mut rng);

    let mut engine = SknnEngine::open_dir(owner.clone(), config(TransportKind::InProcess), &root)
        .expect("open empty store root");
    engine
        .register_dataset_persistent("d", &table(), &mut rng)
        .expect("persistent registration");
    let dead = [0usize, 2, 5];
    for &i in &dead {
        engine.tombstone_record("d", i).expect("tombstone");
    }
    let report = engine.compact_dataset("d").expect("compact");
    assert_eq!(report.reclaimed_records, dead.len() as u64);
    assert!(report.shards_rewritten >= 1, "{report:?}");
    assert!(
        report.bytes_after < report.bytes_before,
        "compaction reclaims log bytes: {report:?}"
    );

    // The owner's view survives the physical renumbering: old stable
    // indices still address the same rows, reclaimed ones stay dead.
    assert!(
        engine.tombstone_record("d", 2).is_err(),
        "a reclaimed index must not come back to life"
    );
    engine.tombstone_record("d", 7).expect("live stable index");
    let dead_now = [0usize, 2, 5, 7];

    let mut before = Vec::new();
    for protocol in [Protocol::Basic, Protocol::Secure] {
        let outcome = engine
            .query("d")
            .k(3)
            .point(&QUERY)
            .protocol(protocol)
            .run(&mut rng)
            .expect("query after compaction");
        assert_eq!(
            outcome.result,
            live_knn(&dead_now, 3),
            "{protocol:?}: compaction changed the answer"
        );
        before.push(outcome.result);
    }
    engine.flush().expect("flush");
    drop(engine);

    let reloaded =
        SknnEngine::open_dir(owner, config(TransportKind::InProcess), &root).expect("reload");
    assert!(reloaded.recovery_report("d").expect("report").is_clean());
    let dataset = reloaded.dataset("d").expect("dataset");
    assert_eq!(
        dataset.num_physical_records(),
        table().records().len() - dead.len(),
        "reload sees the compacted physical layout"
    );
    for (protocol, expected) in [Protocol::Basic, Protocol::Secure].into_iter().zip(&before) {
        let outcome = reloaded
            .query("d")
            .k(3)
            .point(&QUERY)
            .protocol(protocol)
            .run(&mut rng)
            .expect("query after restart of compacted store");
        assert_eq!(
            &outcome.result, expected,
            "{protocol:?}: restart of a compacted store changed the result"
        );
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// A restarted engine is a full peer of the writer: it can keep churning
/// the reloaded dataset (append, tombstone, compact, flush) and every
/// mutation round-trips through yet another restart.
#[test]
fn reloaded_store_remains_writable() {
    let mut rng = StdRng::seed_from_u64(0xD0_0003);
    let root = tmp_root("rewrite");
    let owner = DataOwner::new(96, &mut rng);

    let mut engine =
        SknnEngine::open_dir(owner.clone(), config(TransportKind::InProcess), &root).expect("open");
    engine
        .register_dataset_persistent("d", &table(), &mut rng)
        .expect("register");
    engine.flush().expect("flush");
    drop(engine);

    let mut second = SknnEngine::open_dir(owner.clone(), config(TransportKind::InProcess), &root)
        .expect("reopen");
    second.tombstone_record("d", 4).expect("tombstone reloaded");
    let extra = owner.encrypt_record(&[2, 2], &mut rng).expect("encrypt");
    assert_eq!(
        second.append_records("d", vec![extra]).expect("append"),
        vec![8]
    );
    let report = second.compact_dataset("d").expect("compact reloaded");
    assert_eq!(report.reclaimed_records, 1);
    second.flush().expect("flush");
    let before = second
        .query("d")
        .k(2)
        .point(&QUERY)
        .protocol(Protocol::Basic)
        .run(&mut rng)
        .expect("query")
        .result;
    // The appended (2, 2) sits at distance 2 from (3, 3): it must rank
    // first, proving the post-restart append is really in the dataset.
    assert_eq!(before[0], vec![2, 2]);
    drop(second);

    let third =
        SknnEngine::open_dir(owner, config(TransportKind::InProcess), &root).expect("third");
    assert!(third.recovery_report("d").expect("report").is_clean());
    let after = third
        .query("d")
        .k(2)
        .point(&QUERY)
        .protocol(Protocol::Basic)
        .run(&mut rng)
        .expect("query")
        .result;
    assert_eq!(after, before);
    std::fs::remove_dir_all(&root).expect("cleanup");
}
