//! Integration tests that exercise the primitive layers together the way the
//! top-level protocols compose them, but driven directly through the facade
//! crate's re-exports (bigint → paillier → protocols).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::bigint::BigUint;
use sknn::protocols::{
    recompose_bits, secure_bit_decompose_batch, secure_bit_or, secure_min_n, secure_multiply_batch,
    secure_squared_distance, LocalKeyHolder,
};
use sknn::Keypair;

#[test]
fn full_primitive_pipeline_mirrors_algorithm_6_inner_loop() {
    // One hand-driven iteration of Algorithm 6's inner loop on a tiny input,
    // checking each intermediate against its plaintext value.
    let mut rng = StdRng::seed_from_u64(31337);
    let (pk, sk) = Keypair::generate(128, &mut rng).split();
    let holder = LocalKeyHolder::new(sk.clone(), 99);

    let records: Vec<Vec<u64>> = vec![vec![5, 1], vec![2, 2], vec![9, 9]];
    let query: Vec<u64> = vec![3, 2];
    let l = 8;

    // Encrypt attribute-wise.
    let enc_records: Vec<Vec<_>> = records
        .iter()
        .map(|r| r.iter().map(|&v| pk.encrypt_u64(v, &mut rng)).collect())
        .collect();
    let enc_query: Vec<_> = query.iter().map(|&v| pk.encrypt_u64(v, &mut rng)).collect();

    // SSED for every record.
    let distances: Vec<_> = enc_records
        .iter()
        .map(|r| secure_squared_distance(&pk, &holder, &enc_query, r, &mut rng).unwrap())
        .collect();
    let plain_distances: Vec<u64> = records
        .iter()
        .map(|r| {
            r.iter()
                .zip(&query)
                .map(|(&a, &b)| (a as i64 - b as i64).pow(2) as u64)
                .sum()
        })
        .collect();
    for (c, &expected) in distances.iter().zip(&plain_distances) {
        assert_eq!(sk.decrypt(c).to_u64().unwrap(), expected);
    }

    // SBD of every distance, then the encrypted tournament minimum.
    let bits = secure_bit_decompose_batch(&pk, &holder, &distances, l, &mut rng).unwrap();
    let dmin_bits = secure_min_n(&pk, &holder, &bits, &mut rng).unwrap();
    let dmin = sk
        .decrypt(&recompose_bits(&pk, &dmin_bits))
        .to_u64()
        .unwrap();
    assert_eq!(dmin, *plain_distances.iter().min().unwrap());

    // The SBOR-based freeze: OR-ing the winner's bits with 1 saturates them.
    let one = pk.encrypt_u64(1, &mut rng);
    let frozen: Vec<_> = bits[1]
        .iter()
        .map(|b| secure_bit_or(&pk, &holder, &one, b, &mut rng))
        .collect();
    let frozen_value = frozen
        .iter()
        .fold(0u64, |acc, b| (acc << 1) | sk.decrypt(b).to_u64().unwrap());
    assert_eq!(frozen_value, (1 << l) - 1);
}

#[test]
fn batched_secure_multiplication_scales_to_hundreds_of_pairs() {
    let mut rng = StdRng::seed_from_u64(4242);
    let (pk, sk) = Keypair::generate(128, &mut rng).split();
    let holder = LocalKeyHolder::new(sk.clone(), 7);

    let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, 1000 - i)).collect();
    let enc_pairs: Vec<_> = pairs
        .iter()
        .map(|&(a, b)| (pk.encrypt_u64(a, &mut rng), pk.encrypt_u64(b, &mut rng)))
        .collect();
    let products = secure_multiply_batch(&pk, &holder, &enc_pairs, &mut rng);
    assert_eq!(products.len(), 200);
    for (&(a, b), c) in pairs.iter().zip(&products) {
        assert_eq!(sk.decrypt(c).to_u64().unwrap(), a * b);
    }
}

#[test]
fn homomorphic_masking_round_trips_through_the_facade_reexports() {
    // The final reveal step of both protocols, written out by hand:
    // C1 masks with r, C2 decrypts, Bob subtracts r.
    let mut rng = StdRng::seed_from_u64(555);
    let (pk, sk) = Keypair::generate(128, &mut rng).split();
    let value = 4096u64;
    let c = pk.encrypt_u64(value, &mut rng);

    let r = sknn::bigint::random_below(&mut rng, pk.n());
    let gamma = pk.add(&c, &pk.encrypt(&r, &mut rng));
    let gamma_prime = sk.decrypt(&gamma);
    let recovered = gamma_prime.mod_sub(&r, pk.n());
    assert_eq!(recovered, BigUint::from_u64(value));
}
