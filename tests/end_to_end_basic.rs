//! Cross-crate integration tests for the basic protocol (SkNN_b): data
//! generation (`sknn-data`) → outsourcing and querying (`sknn-core`) →
//! plaintext verification, over both transports.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::data::{perturbed_query, uniform_query, SyntheticDataset};
use sknn::{plain_knn_records, Federation, FederationConfig, SknnError, TransportKind};

fn config(key_bits: usize, max_query_value: u64) -> FederationConfig {
    FederationConfig {
        key_bits,
        max_query_value,
        ..Default::default()
    }
}

#[test]
fn synthetic_dataset_queries_match_plaintext_knn() {
    let mut rng = StdRng::seed_from_u64(1001);
    let dataset = SyntheticDataset::uniform(40, 4, 10, &mut rng);
    let federation =
        Federation::setup(&dataset.table, config(128, dataset.max_value), &mut rng).unwrap();

    for trial in 0..5 {
        let query = uniform_query(4, dataset.max_value, &mut rng);
        for k in [1usize, 3, 7] {
            let result = federation.query_basic(&query, k, &mut rng).unwrap();
            assert_eq!(
                result.records,
                plain_knn_records(&dataset.table, &query, k),
                "trial {trial}, k = {k}"
            );
            assert_eq!(result.records.len(), k);
        }
    }
}

#[test]
fn perturbed_queries_over_channel_transport() {
    let mut rng = StdRng::seed_from_u64(1002);
    let dataset = SyntheticDataset::uniform(30, 6, 12, &mut rng);
    let federation = Federation::setup(
        &dataset.table,
        FederationConfig {
            key_bits: 128,
            max_query_value: dataset.max_value,
            transport: TransportKind::Channel,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();

    let query = perturbed_query(&dataset.table, 2, dataset.max_value, &mut rng);
    let result = federation.query_basic(&query, 4, &mut rng).unwrap();
    assert_eq!(result.records, plain_knn_records(&dataset.table, &query, 4));

    // The channel transport must report traffic, and the basic protocol's
    // round count is small: one SSED round per record batch… in our
    // implementation each record's SSED is one round, plus top-k and reveal.
    let comm = result.comm.expect("channel transport reports traffic");
    assert!(comm.requests >= dataset.table.num_records() as u64);
    assert!(comm.total_bytes() > 0);
}

#[test]
fn basic_protocol_leaks_access_pattern_by_design() {
    let mut rng = StdRng::seed_from_u64(1003);
    let dataset = SyntheticDataset::uniform(20, 3, 10, &mut rng);
    let federation =
        Federation::setup(&dataset.table, config(128, dataset.max_value), &mut rng).unwrap();
    let query = uniform_query(3, dataset.max_value, &mut rng);
    let result = federation.query_basic(&query, 5, &mut rng).unwrap();

    assert!(result.audit.distances_revealed_to_c2);
    assert!(result.audit.access_pattern_revealed);
    assert_eq!(result.audit.record_indices_revealed_to_c1.len(), 5);
    // The leaked indices are exactly the plaintext kNN indices.
    assert_eq!(
        result.audit.record_indices_revealed_to_c1,
        sknn::plain_knn(&dataset.table, &query, 5)
    );
}

#[test]
fn query_validation_errors_are_reported() {
    let mut rng = StdRng::seed_from_u64(1004);
    let dataset = SyntheticDataset::uniform(10, 3, 10, &mut rng);
    let federation =
        Federation::setup(&dataset.table, config(128, dataset.max_value), &mut rng).unwrap();

    assert!(matches!(
        federation.query_basic(&[1, 2], 3, &mut rng),
        Err(SknnError::QueryDimensionMismatch { .. })
    ));
    assert!(matches!(
        federation.query_basic(&[1, 2, 3], 0, &mut rng),
        Err(SknnError::InvalidK { .. })
    ));
    assert!(matches!(
        federation.query_basic(&[1, 2, 3], 11, &mut rng),
        Err(SknnError::InvalidK { .. })
    ));
}

#[test]
fn repeated_queries_reuse_the_same_outsourced_database() {
    let mut rng = StdRng::seed_from_u64(1005);
    let dataset = SyntheticDataset::uniform(25, 3, 10, &mut rng);
    let federation =
        Federation::setup(&dataset.table, config(128, dataset.max_value), &mut rng).unwrap();

    // Ask the same query twice and a different query once; results must be
    // consistent and independent.
    let q1 = uniform_query(3, dataset.max_value, &mut rng);
    let q2 = uniform_query(3, dataset.max_value, &mut rng);
    let first = federation.query_basic(&q1, 3, &mut rng).unwrap();
    let second = federation.query_basic(&q1, 3, &mut rng).unwrap();
    let third = federation.query_basic(&q2, 3, &mut rng).unwrap();
    assert_eq!(first.records, second.records);
    assert_eq!(first.records, plain_knn_records(&dataset.table, &q1, 3));
    assert_eq!(third.records, plain_knn_records(&dataset.table, &q2, 3));
}
