//! End-to-end acceptance tests for the `SknnEngine` façade: one engine
//! hosting two datasets answers a 16-query mixed batch over the Channel
//! transport with results identical to per-query `Federation` runs, builder
//! validation returns typed errors over both transports, and dynamic
//! append/tombstone updates are reflected in subsequent query results.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::{
    plain_knn_records, Federation, FederationConfig, InvalidQueryReason, PreparedQuery, Protocol,
    SknnEngine, SknnError, Table, TransportKind,
};

/// Distances from the query (2, 2) are 68, 29, 18, 98, 2 — all distinct,
/// so every k has a unique, deterministically ordered result for both
/// protocols.
fn vitals_table() -> Table {
    Table::new(vec![
        vec![10, 0],
        vec![0, 7],
        vec![5, 5],
        vec![9, 9],
        vec![1, 1],
    ])
    .unwrap()
}

/// Three-attribute table with distinct distances from (3, 3, 3):
/// 12, 2, 36, 108, 27 (and from (1, 1, 1): 16, 14, 72, 192, 27).
fn labs_table() -> Table {
    Table::new(vec![
        vec![1, 1, 5],
        vec![2, 3, 4],
        vec![7, 7, 1],
        vec![9, 9, 9],
        vec![0, 0, 6],
    ])
    .unwrap()
}

fn config(transport: TransportKind) -> FederationConfig {
    FederationConfig {
        key_bits: 96,
        max_query_value: 10,
        transport,
        threads: 4,
        ..Default::default()
    }
}

#[test]
fn two_dataset_mixed_batch_over_channel_matches_federation() {
    let mut rng = StdRng::seed_from_u64(7001);
    let vitals = vitals_table();
    let labs = labs_table();

    let mut engine = SknnEngine::setup(config(TransportKind::Channel), &mut rng).unwrap();
    engine
        .register_dataset("vitals", &vitals, &mut rng)
        .unwrap();
    engine.register_dataset("labs", &labs, &mut rng).unwrap();

    // 16 queries: both datasets, both protocols, several k values.
    let specs: [(&str, &[u64], usize, Protocol); 16] = [
        ("vitals", &[2, 2], 1, Protocol::Basic),
        ("labs", &[3, 3, 3], 1, Protocol::Basic),
        ("vitals", &[2, 2], 2, Protocol::Basic),
        ("labs", &[3, 3, 3], 2, Protocol::Basic),
        ("vitals", &[2, 2], 3, Protocol::Basic),
        ("labs", &[3, 3, 3], 3, Protocol::Basic),
        ("vitals", &[9, 0], 4, Protocol::Basic),
        ("labs", &[1, 1, 1], 4, Protocol::Basic),
        ("vitals", &[2, 2], 5, Protocol::Basic),
        ("labs", &[3, 3, 3], 5, Protocol::Basic),
        ("vitals", &[9, 0], 1, Protocol::Basic),
        ("labs", &[1, 1, 1], 1, Protocol::Basic),
        ("vitals", &[2, 2], 1, Protocol::Secure),
        ("labs", &[3, 3, 3], 1, Protocol::Secure),
        ("vitals", &[2, 2], 2, Protocol::Secure),
        ("labs", &[3, 3, 3], 2, Protocol::Secure),
    ];
    let queries: Vec<PreparedQuery> = specs
        .iter()
        .map(|&(dataset, point, k, protocol)| {
            engine
                .query(dataset)
                .k(k)
                .point(point)
                .protocol(protocol)
                .build()
                .expect("valid query")
        })
        .collect();

    let outcomes = engine.run_batch(&queries, &mut rng);
    assert_eq!(outcomes.len(), 16);

    // Per-query reference runs through the legacy single-dataset façade,
    // each on its own deployment — the shim and the engine must agree
    // record for record.
    let vitals_fed = Federation::setup(&vitals, config(TransportKind::Channel), &mut rng).unwrap();
    let labs_fed = Federation::setup(&labs, config(TransportKind::Channel), &mut rng).unwrap();
    for (&(dataset, point, k, protocol), outcome) in specs.iter().zip(&outcomes) {
        let outcome = outcome.as_ref().expect("batch query succeeds");
        let federation = match dataset {
            "vitals" => &vitals_fed,
            _ => &labs_fed,
        };
        let reference = match protocol {
            Protocol::Basic => federation.query_basic(point, k, &mut rng).unwrap(),
            Protocol::Secure => federation.query_secure(point, k, &mut rng).unwrap(),
        };
        assert_eq!(
            outcome.result, reference.records,
            "{dataset} k={k} {protocol:?}"
        );
        let table = if dataset == "vitals" { &vitals } else { &labs };
        assert_eq!(
            outcome.result,
            plain_knn_records(table, point, k),
            "{dataset} k={k} {protocol:?} vs plaintext"
        );
        // Channel transport accounts traffic for every query in the batch.
        assert!(outcome.comm.is_some());
        match protocol {
            Protocol::Basic => assert!(!outcome.audit.is_oblivious()),
            Protocol::Secure => assert!(outcome.audit.is_oblivious()),
        }
    }
}

#[test]
fn builder_validation_is_typed_over_both_transports() {
    let mut rng = StdRng::seed_from_u64(7002);
    for transport in [TransportKind::InProcess, TransportKind::Channel] {
        let mut engine = SknnEngine::setup(config(transport), &mut rng).unwrap();
        engine
            .register_dataset("vitals", &vitals_table(), &mut rng)
            .unwrap();

        // Unknown dataset name.
        assert!(
            matches!(
                engine.query("nope").k(1).point(&[2, 2]).build(),
                Err(SknnError::UnknownDataset { ref name }) if name == "nope"
            ),
            "{transport:?}"
        );
        // k = 0 and k > n.
        assert!(
            matches!(
                engine.query("vitals").k(0).point(&[2, 2]).build(),
                Err(SknnError::InvalidQuery {
                    reason: InvalidQueryReason::KOutOfRange { k: 0, n: 5 },
                    ..
                })
            ),
            "{transport:?}"
        );
        assert!(
            matches!(
                engine.query("vitals").k(6).point(&[2, 2]).build(),
                Err(SknnError::InvalidQuery {
                    reason: InvalidQueryReason::KOutOfRange { k: 6, n: 5 },
                    ..
                })
            ),
            "{transport:?}"
        );
        // Wrong attribute arity.
        assert!(
            matches!(
                engine.query("vitals").k(1).point(&[2, 2, 2]).build(),
                Err(SknnError::InvalidQuery {
                    reason: InvalidQueryReason::WrongArity {
                        expected: 2,
                        got: 3
                    },
                    ..
                })
            ),
            "{transport:?}"
        );
        // Out-of-range attribute value (bound = max(table max 10, cfg 10)).
        assert!(
            matches!(
                engine.query("vitals").k(1).point(&[2, 11]).build(),
                Err(SknnError::InvalidQuery {
                    reason: InvalidQueryReason::ValueOutOfRange {
                        attribute: 1,
                        value: 11,
                        bound: 10
                    },
                    ..
                })
            ),
            "{transport:?}"
        );
        // A valid build still runs on this transport.
        let outcome = engine
            .query("vitals")
            .k(1)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        assert_eq!(outcome.result, vec![vec![1, 1]], "{transport:?}");
    }
}

#[test]
fn append_and_tombstone_round_trips_are_reflected_in_queries() {
    let mut rng = StdRng::seed_from_u64(7003);
    let vitals = vitals_table();
    let mut engine = SknnEngine::setup(config(TransportKind::Channel), &mut rng).unwrap();
    engine
        .register_dataset("vitals", &vitals, &mut rng)
        .unwrap();

    // Append: the new record is the exact query point, so it must win k = 1
    // immediately, under both protocols.
    let record = engine.owner().encrypt_record(&[2, 2], &mut rng).unwrap();
    let indices = engine.append_records("vitals", vec![record]).unwrap();
    assert_eq!(indices, vec![5]);
    for protocol in [Protocol::Basic, Protocol::Secure] {
        let found = engine
            .query("vitals")
            .k(1)
            .point(&[2, 2])
            .protocol(protocol)
            .run(&mut rng)
            .unwrap();
        assert_eq!(found.result, vec![vec![2, 2]], "{protocol:?}");
    }

    // Tombstone: never returned again, by either protocol, even at k = n.
    engine.tombstone_record("vitals", 5).unwrap();
    for protocol in [Protocol::Basic, Protocol::Secure] {
        let all = engine
            .query("vitals")
            .k(5)
            .point(&[2, 2])
            .protocol(protocol)
            .run(&mut rng)
            .unwrap();
        assert_eq!(all.result.len(), 5, "{protocol:?}");
        assert!(
            !all.result.contains(&vec![2, 2]),
            "{protocol:?} returned a tombstoned record"
        );
        let mut got = all.result.clone();
        got.sort();
        let mut want = plain_knn_records(&vitals, &[2, 2], 5);
        want.sort();
        assert_eq!(got, want, "{protocol:?}");
    }

    // k is validated against the shrunken live count.
    assert!(matches!(
        engine.query("vitals").k(6).point(&[2, 2]).build(),
        Err(SknnError::InvalidQuery {
            reason: InvalidQueryReason::KOutOfRange { k: 6, n: 5 },
            ..
        })
    ));

    // Tombstoning an original record excludes it too (not just appended
    // ones): record 4 = (1, 1) is the nearest to (2, 2).
    engine.tombstone_record("vitals", 4).unwrap();
    let nearest = engine
        .query("vitals")
        .k(1)
        .point(&[2, 2])
        .protocol(Protocol::Basic)
        .run(&mut rng)
        .unwrap();
    assert_eq!(nearest.result, vec![vec![5, 5]], "next-nearest record wins");
}

#[test]
fn mixed_batch_after_updates_matches_sequential_runs() {
    let mut rng = StdRng::seed_from_u64(7004);
    let mut engine = SknnEngine::setup(config(TransportKind::Channel), &mut rng).unwrap();
    engine
        .register_dataset("vitals", &vitals_table(), &mut rng)
        .unwrap();
    engine
        .register_dataset("labs", &labs_table(), &mut rng)
        .unwrap();

    // Mutate both datasets, then batch across them. The appended (2, 2)
    // sits at distance 0 from the vitals query point, so every result set
    // stays tie-free and deterministic.
    let rec = engine.owner().encrypt_record(&[2, 2], &mut rng).unwrap();
    engine.append_records("vitals", vec![rec]).unwrap();
    engine.tombstone_record("labs", 1).unwrap();

    let queries: Vec<PreparedQuery> = vec![
        engine
            .query("vitals")
            .k(2)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .build()
            .unwrap(),
        engine
            .query("labs")
            .k(2)
            .point(&[3, 3, 3])
            .protocol(Protocol::Basic)
            .build()
            .unwrap(),
        engine
            .query("vitals")
            .k(1)
            .point(&[2, 2])
            .protocol(Protocol::Secure)
            .build()
            .unwrap(),
        engine
            .query("labs")
            .k(1)
            .point(&[3, 3, 3])
            .protocol(Protocol::Secure)
            .build()
            .unwrap(),
    ];
    let outcomes = engine.run_batch(&queries, &mut rng);
    for (query, outcome) in queries.iter().zip(&outcomes) {
        let outcome = outcome.as_ref().expect("batch query succeeds");
        let sequential = engine.run(query, &mut rng).unwrap();
        assert_eq!(outcome.result, sequential.result, "{}", query.dataset());
    }
    // The appended (2, 2) wins vitals at distance 0; the tombstoned labs
    // record (2, 3, 4) — previously nearest at distance 2 — is replaced by
    // (1, 1, 5) at distance 12.
    assert_eq!(
        outcomes[0].as_ref().unwrap().result,
        vec![vec![2, 2], vec![1, 1]]
    );
    assert_eq!(outcomes[1].as_ref().unwrap().result[0], vec![1, 1, 5]);
    assert_eq!(outcomes[2].as_ref().unwrap().result, vec![vec![2, 2]]);
    assert_eq!(outcomes[3].as_ref().unwrap().result, vec![vec![1, 1, 5]]);
}
