//! Acceptance test for slot-packed Paillier batching: `Fixed(8)` packing at
//! a 1024-bit key on the heart-disease dataset.
//!
//! Asserted (packed vs scalar, same key, same data, same queries):
//!
//! * identical kNN results from both protocols;
//! * ≥4× fewer C1→C2 ciphertexts **and** ≥4× fewer C2 decryptions across
//!   the SSED+SBD stages;
//! * ≥4× fewer ciphertexts on the wire (both directions) for the SSED
//!   stage alone, and strictly fewer for SSED+SBD combined.
//!
//! The SBD *response* side is the one place total wire volume cannot drop
//! by σ: every round must hand C1 one fresh per-bit ciphertext per value —
//! SMIN consumes the bits individually, and additively homomorphic
//! ciphertexts cannot be split by the party that cannot decrypt them. The
//! request side, C2's decryptions, and SSED's responses all shrink by ~σ.
//! See DESIGN.md ("Slot-packed batching") for the full argument.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sknn::core::{OpCounters, PackingKind, Stage};
use sknn::data::heart::{example_query, heart_disease_fixture, HeartDiseaseGenerator};
use sknn::{DataOwner, Federation, FederationConfig, QueryResult, Table};

const KEY_BITS: usize = 1024;
const SIGMA: usize = 8;

fn heart_table() -> Table {
    // The six records of Table 1 plus generated records from the Table 2
    // ranges, so the packed path spans two ciphertext groups at σ = 8.
    let mut rows = heart_disease_fixture();
    let mut rng = StdRng::seed_from_u64(0x4EA7);
    let gen = HeartDiseaseGenerator;
    while rows.len() < 10 {
        rows.push(gen.record(&mut rng));
    }
    Table::new(rows).expect("well-formed heart table")
}

fn setup(owner: DataOwner, table: &Table, packing: PackingKind) -> Federation {
    let mut rng = StdRng::seed_from_u64(0x4EA8);
    let config = FederationConfig {
        key_bits: KEY_BITS,
        max_query_value: 600,
        packing,
        ..Default::default()
    };
    Federation::setup_with_owner(owner, table, config, &mut rng).expect("federation setup")
}

fn ssed_sbd_ops(result: &QueryResult) -> OpCounters {
    let mut ops = result.profile.ops(Stage::DistanceComputation);
    ops.add(result.profile.ops(Stage::BitDecomposition));
    ops
}

#[test]
fn fixed_8_packing_at_1024_bits_on_heart_data() {
    let table = heart_table();
    let query = example_query();
    let k = 2;

    // One expensive key generation, shared by both deployments so the
    // plaintext data and key are identical.
    let mut key_rng = StdRng::seed_from_u64(0x4EA9);
    let owner = DataOwner::new(KEY_BITS, &mut key_rng);

    let scalar = setup(owner.clone(), &table, PackingKind::Off);
    let packed = setup(owner, &table, PackingKind::Fixed(SIGMA));
    assert!(scalar.packing().is_none());
    assert_eq!(
        packed.packing().expect("Fixed(8) must derive").slots(),
        SIGMA
    );

    let mut rng = StdRng::seed_from_u64(0x4EAA);

    // ── SkNN_b: identical records, ≥4× cheaper SSED ────────────────────
    let scalar_basic = scalar
        .query_basic(&query, k, &mut rng)
        .expect("scalar basic");
    let packed_basic = packed
        .query_basic(&query, k, &mut rng)
        .expect("packed basic");
    assert_eq!(
        packed_basic.records, scalar_basic.records,
        "packed and scalar SkNN_b must return identical records"
    );
    assert_eq!(
        packed_basic.records,
        sknn::plain_knn_records(&table, &query, k)
    );

    let scalar_ssed = scalar_basic.profile.ops(Stage::DistanceComputation);
    let packed_ssed = packed_basic.profile.ops(Stage::DistanceComputation);
    assert!(
        packed_ssed.ciphertexts_on_wire() * 4 <= scalar_ssed.ciphertexts_on_wire(),
        "SSED wire: packed {packed_ssed:?} vs scalar {scalar_ssed:?}"
    );
    assert!(
        packed_ssed.c2_decryptions * 4 <= scalar_ssed.c2_decryptions,
        "SSED decryptions: packed {packed_ssed:?} vs scalar {scalar_ssed:?}"
    );
    // The top-k distance shipment also travels packed.
    let scalar_sel = scalar_basic.profile.ops(Stage::RecordSelection);
    let packed_sel = packed_basic.profile.ops(Stage::RecordSelection);
    assert!(packed_sel.c2_decryptions * 4 <= scalar_sel.c2_decryptions);

    // ── SkNN_m: identical result sets, ≥4× cheaper SSED+SBD ────────────
    let scalar_secure = scalar
        .query_secure(&query, k, &mut rng)
        .expect("scalar secure");
    let packed_secure = packed
        .query_secure(&query, k, &mut rng)
        .expect("packed secure");
    let mut scalar_records = scalar_secure.records.clone();
    let mut packed_records = packed_secure.records.clone();
    scalar_records.sort();
    packed_records.sort();
    assert_eq!(
        packed_records, scalar_records,
        "packed and scalar SkNN_m must return identical record sets"
    );

    let scalar_ops = ssed_sbd_ops(&scalar_secure);
    let packed_ops = ssed_sbd_ops(&packed_secure);
    assert!(
        packed_ops.c2_decryptions * 4 <= scalar_ops.c2_decryptions,
        "SSED+SBD decryptions: packed {packed_ops:?} vs scalar {scalar_ops:?}"
    );
    assert!(
        packed_ops.ciphertexts_to_c2 * 4 <= scalar_ops.ciphertexts_to_c2,
        "SSED+SBD C1→C2 ciphertexts: packed {packed_ops:?} vs scalar {scalar_ops:?}"
    );
    // Total wire (both directions) shrinks too, bounded by the per-bit
    // response floor described in the module docs.
    assert!(
        packed_ops.ciphertexts_on_wire() < scalar_ops.ciphertexts_on_wire(),
        "SSED+SBD total wire: packed {packed_ops:?} vs scalar {scalar_ops:?}"
    );
    // The SSED stage alone clears 4× in both directions even within the
    // secure protocol.
    let scalar_ssed = scalar_secure.profile.ops(Stage::DistanceComputation);
    let packed_ssed = packed_secure.profile.ops(Stage::DistanceComputation);
    assert!(packed_ssed.ciphertexts_on_wire() * 4 <= scalar_ssed.ciphertexts_on_wire());
    assert!(packed_ssed.c2_decryptions * 4 <= scalar_ssed.c2_decryptions);

    // Guard against silent fallback: the packed run must actually have
    // used packed requests (σ=8 cuts SSED decryptions ~16×, far below any
    // scalar run).
    assert!(packed_ssed.c2_decryptions * 8 <= scalar_ssed.c2_decryptions);

    let _ = rng.gen::<u64>();
}
