//! Shard-count invariance suite for the sharded data plane.
//!
//! The scatter–gather executor must be a pure performance structure: for
//! every shard/session shape, both protocols must return exactly the
//! records — in exactly the order — that the unsharded seed path returns.
//! This suite pins that down over shards ∈ {1, 2, 4} × sessions ∈ {1, 2}
//! × {Basic, Secure} × {Channel, Tcp}, checks that dynamic updates land
//! in the round-robin-owning shard, and asserts the headline scaling
//! property: the gather's SMIN_n stage runs over the ≤ k·S surviving
//! candidates, so its ciphertext volume *drops* against the unsharded run
//! once n ≫ k·S.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::{
    plain_knn_records, FederationConfig, Protocol, ShardingConfig, SknnEngine, Stage, Table,
    TransportKind,
};

/// 16 records whose squared distances from the query (3, 3) are all
/// distinct (asserted in `distances_are_distinct`), so every k has one
/// valid result set and one valid nearest-first ordering — any shard-shape
/// dependence would be visible immediately.
fn table() -> Table {
    Table::new(
        (0..16u64)
            .map(|i| vec![i, (i * i + 2 * i) % 23])
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

const QUERY: [u64; 2] = [3, 3];
const MAX_VALUE: u64 = 22;

fn engine_with(
    sharding: ShardingConfig,
    transport: TransportKind,
    threads: usize,
    rng: &mut StdRng,
) -> SknnEngine {
    let mut engine = SknnEngine::setup(
        FederationConfig {
            key_bits: 96,
            max_query_value: MAX_VALUE,
            transport,
            threads,
            sharding,
            ..Default::default()
        },
        rng,
    )
    .expect("engine setup");
    engine
        .register_dataset("t", &table(), rng)
        .expect("register dataset");
    engine
}

#[test]
fn distances_are_distinct() {
    let t = table();
    let mut dists: Vec<u128> = t
        .records()
        .iter()
        .map(|r| sknn::squared_euclidean_distance(r, &QUERY))
        .collect();
    dists.sort_unstable();
    dists.dedup();
    assert_eq!(dists.len(), 16, "the fixture must have distinct distances");
}

/// The core matrix: every shard/session/protocol/transport combination
/// returns the unsharded seed path's records in the seed path's order.
#[test]
fn results_and_ordering_are_shard_count_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    let k = 3;
    let expected = plain_knn_records(&table(), &QUERY, k);

    for transport in [TransportKind::Channel, TransportKind::Tcp] {
        for shards in [1usize, 2, 4] {
            for sessions in [1usize, 2] {
                let engine =
                    engine_with(ShardingConfig { shards, sessions }, transport, 2, &mut rng);
                assert_eq!(engine.dataset("t").unwrap().shards(), shards);
                assert_eq!(engine.num_sessions(), sessions);
                for protocol in [Protocol::Basic, Protocol::Secure] {
                    let outcome = engine
                        .query("t")
                        .k(k)
                        .point(&QUERY)
                        .protocol(protocol)
                        .run(&mut rng)
                        .unwrap_or_else(|e| {
                            panic!(
                                "{transport:?} shards={shards} sessions={sessions} \
                                 {protocol:?}: {e}"
                            )
                        });
                    assert_eq!(
                        outcome.result, expected,
                        "{transport:?} shards={shards} sessions={sessions} {protocol:?}"
                    );
                    // Sharded plans report per-shard op attribution for
                    // every populated shard; unsharded plans report none.
                    if shards > 1 {
                        assert_eq!(
                            outcome.profile.shards().len(),
                            shards,
                            "{transport:?} shards={shards} {protocol:?}"
                        );
                        for s in outcome.profile.shards() {
                            assert!(
                                outcome
                                    .profile
                                    .shard_stage_ops(s, Stage::DistanceComputation)
                                    .ciphertexts_to_c2
                                    > 0,
                                "shard {s} must attribute SSED traffic"
                            );
                        }
                    } else {
                        assert!(outcome.profile.shards().is_empty());
                    }
                    // Remote transports must account traffic on every wire
                    // the query actually used.
                    assert!(outcome.comm.expect("remote transport").requests > 0);
                }
            }
        }
    }
}

/// The headline scaling property (acceptance criterion): the secure
/// gather's SMIN_n/selection stages run over the ≤ k·S surviving
/// candidates, so their ciphertext volume drops versus the unsharded run
/// for n ≫ k·S — here n = 16 against k·S = 2·4 = 8.
#[test]
fn secure_gather_runs_smin_over_candidates_only() {
    let mut rng = StdRng::seed_from_u64(0x5AAE);
    let k = 2;
    let run = |shards: usize, rng: &mut StdRng| {
        let engine = engine_with(
            ShardingConfig {
                shards,
                sessions: 1,
            },
            TransportKind::InProcess,
            1,
            rng,
        );
        engine
            .query("t")
            .k(k)
            .point(&QUERY)
            .protocol(Protocol::Secure)
            .run(rng)
            .unwrap()
    };
    let unsharded = run(1, &mut rng);
    let sharded = run(4, &mut rng);
    assert_eq!(unsharded.result, sharded.result);

    for stage in [
        Stage::SecureMinimum,
        Stage::RecordSelection,
        Stage::DistanceFreezing,
    ] {
        let mono = unsharded.profile.ops(stage);
        let shard = sharded.profile.ops(stage);
        assert!(
            shard.ciphertexts_to_c2 < mono.ciphertexts_to_c2,
            "{stage:?}: gather over k·S = 8 candidates must ship fewer \
             ciphertexts than the unsharded run over n = 16 \
             ({} vs {})",
            shard.ciphertexts_to_c2,
            mono.ciphertexts_to_c2
        );
    }
    // The scatter work is visible — and attributed per shard.
    let scatter = sharded.profile.ops(Stage::ShardCandidates);
    assert!(scatter.ciphertexts_to_c2 > 0);
    let per_shard: u64 = sharded
        .profile
        .shards()
        .into_iter()
        .map(|s| {
            sharded
                .profile
                .shard_stage_ops(s, Stage::ShardCandidates)
                .ciphertexts_to_c2
        })
        .sum();
    assert_eq!(per_shard, scatter.ciphertexts_to_c2);
}

/// The same drop holds for SkNN_b: the gather merge ships only the k·S
/// candidate distances instead of all n.
#[test]
fn basic_gather_merges_candidates_only() {
    let mut rng = StdRng::seed_from_u64(0x5AAF);
    let k = 2;
    let run = |shards: usize, rng: &mut StdRng| {
        let engine = engine_with(
            ShardingConfig {
                shards,
                sessions: 1,
            },
            TransportKind::InProcess,
            1,
            rng,
        );
        engine
            .query("t")
            .k(k)
            .point(&QUERY)
            .protocol(Protocol::Basic)
            .run(rng)
            .unwrap()
    };
    let unsharded = run(1, &mut rng);
    let sharded = run(4, &mut rng);
    assert_eq!(unsharded.result, sharded.result);
    // Unsharded selection ships all 16 distances; the sharded merge ships
    // the 8 candidates.
    let mono = unsharded.profile.ops(Stage::RecordSelection);
    let merge = sharded.profile.ops(Stage::RecordSelection);
    assert_eq!(mono.ciphertexts_to_c2, 16);
    assert_eq!(merge.ciphertexts_to_c2, 8);
}

/// Dynamic updates route to the round-robin-owning shard, and the
/// updated dataset still answers shard-invariantly.
#[test]
fn appends_and_tombstones_land_in_the_owning_shard() {
    let mut rng = StdRng::seed_from_u64(0x5AB0);
    let shards = 4;
    let mut engine = engine_with(
        ShardingConfig {
            shards,
            sessions: 1,
        },
        TransportKind::InProcess,
        1,
        &mut rng,
    );

    // Physical index 16 → shard 16 mod 4 = 0.
    let record = engine.owner().encrypt_record(&[3, 3], &mut rng).unwrap();
    let indices = engine.append_records("t", vec![record]).unwrap();
    assert_eq!(indices, vec![16]);
    {
        let db = engine.dataset("t").unwrap().cloud().database();
        assert_eq!(db.shard_of(16), 0);
        assert!(db.shard(0).live_indices().contains(&16));
        for s in 1..shards {
            assert!(!db.shard(s).live_indices().contains(&16));
        }
    }

    // The appended record (distance 0) is the new nearest under every
    // protocol.
    for protocol in [Protocol::Basic, Protocol::Secure] {
        let nearest = engine
            .query("t")
            .k(1)
            .point(&QUERY)
            .protocol(protocol)
            .run(&mut rng)
            .unwrap();
        assert_eq!(nearest.result, vec![vec![3, 3]], "{protocol:?}");
    }

    // Tombstoning removes it from shard 0's view only, and queries go
    // back to the original answer.
    engine.tombstone_record("t", 16).unwrap();
    {
        let db = engine.dataset("t").unwrap().cloud().database();
        assert!(!db.shard(0).live_indices().contains(&16));
        assert_eq!(db.num_live(), 16);
    }
    let expected = plain_knn_records(&table(), &QUERY, 2);
    for protocol in [Protocol::Basic, Protocol::Secure] {
        let outcome = engine
            .query("t")
            .k(2)
            .point(&QUERY)
            .protocol(protocol)
            .run(&mut rng)
            .unwrap();
        assert_eq!(outcome.result, expected, "{protocol:?}");
    }

    // Tombstone an entire shard empty (indices 1, 5, 9, 13 form shard 1):
    // the plan must drop the empty shard and still answer correctly.
    for i in [1usize, 5, 9, 13] {
        engine.tombstone_record("t", i).unwrap();
    }
    assert_eq!(
        engine
            .dataset("t")
            .unwrap()
            .cloud()
            .database()
            .shard(1)
            .num_live(),
        0
    );
    let survivors = Table::new(
        table()
            .records()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 1)
            .map(|(_, r)| r.to_vec())
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let expected = plain_knn_records(&survivors, &QUERY, 3);
    for protocol in [Protocol::Basic, Protocol::Secure] {
        let outcome = engine
            .query("t")
            .k(3)
            .point(&QUERY)
            .protocol(protocol)
            .run(&mut rng)
            .unwrap();
        assert_eq!(outcome.result, expected, "{protocol:?}");
    }
}

/// Batches schedule shard-stage tasks: a mixed batch over a sharded
/// dataset with two sessions returns exactly the per-query results.
#[test]
fn sharded_batches_match_sequential_runs() {
    let mut rng = StdRng::seed_from_u64(0x5AB1);
    let engine = engine_with(
        ShardingConfig {
            shards: 4,
            sessions: 2,
        },
        TransportKind::Channel,
        4,
        &mut rng,
    );
    let queries: Vec<_> = [
        (1usize, Protocol::Basic),
        (4, Protocol::Basic),
        (2, Protocol::Secure),
        (3, Protocol::Basic),
    ]
    .iter()
    .map(|&(k, protocol)| {
        engine
            .query("t")
            .k(k)
            .point(&QUERY)
            .protocol(protocol)
            .build()
            .unwrap()
    })
    .collect();
    let outcomes = engine.run_batch(&queries, &mut rng);
    for (query, outcome) in queries.iter().zip(&outcomes) {
        let outcome = outcome.as_ref().expect("batch query succeeds");
        assert_eq!(
            outcome.result,
            plain_knn_records(&table(), &QUERY, query.k()),
            "k = {}",
            query.k()
        );
    }
}
