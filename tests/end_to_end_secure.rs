//! Cross-crate integration tests for the fully secure protocol (SkNN_m).
//!
//! Because SkNN_m hides which stored record produced each result, ties between
//! equidistant records can legitimately resolve differently than the plaintext
//! baseline; the assertions therefore compare *distance multisets* (which must
//! match exactly) and record membership.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::data::{perturbed_query, uniform_query, SyntheticDataset};
use sknn::{
    plain_knn_records, squared_euclidean_distance, Federation, FederationConfig, Stage, Table,
    TransportKind,
};

fn sorted_distances(records: &[Vec<u64>], query: &[u64]) -> Vec<u128> {
    let mut d: Vec<u128> = records
        .iter()
        .map(|r| squared_euclidean_distance(r, query))
        .collect();
    d.sort_unstable();
    d
}

fn assert_valid_knn(table: &Table, query: &[u64], k: usize, records: &[Vec<u64>]) {
    assert_eq!(records.len(), k);
    // Every returned record must exist in the table.
    for r in records {
        assert!(
            table.records().iter().any(|row| row == r),
            "returned record {r:?} is not in the table"
        );
    }
    // The returned distance multiset must equal the plaintext kNN's.
    let expected = plain_knn_records(table, query, k);
    assert_eq!(
        sorted_distances(records, query),
        sorted_distances(&expected, query)
    );
}

#[test]
fn secure_queries_match_plaintext_knn_distances() {
    let mut rng = StdRng::seed_from_u64(2001);
    let dataset = SyntheticDataset::uniform(15, 3, 8, &mut rng);
    let federation = Federation::setup(
        &dataset.table,
        FederationConfig {
            key_bits: 128,
            max_query_value: dataset.max_value,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();

    for k in [1usize, 2, 5] {
        let query = uniform_query(3, dataset.max_value, &mut rng);
        let result = federation.query_secure(&query, k, &mut rng).unwrap();
        assert_valid_knn(&dataset.table, &query, k, &result.records);
        assert!(result.audit.is_oblivious(), "SkNN_m must not leak");
    }
}

#[test]
fn secure_and_basic_protocols_agree() {
    let mut rng = StdRng::seed_from_u64(2002);
    let dataset = SyntheticDataset::uniform(12, 4, 10, &mut rng);
    let federation = Federation::setup(
        &dataset.table,
        FederationConfig {
            key_bits: 128,
            max_query_value: dataset.max_value,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let query = perturbed_query(&dataset.table, 1, dataset.max_value, &mut rng);

    let basic = federation.query_basic(&query, 4, &mut rng).unwrap();
    let secure = federation.query_secure(&query, 4, &mut rng).unwrap();
    assert_eq!(
        sorted_distances(&basic.records, &query),
        sorted_distances(&secure.records, &query)
    );
}

#[test]
fn secure_query_over_channel_transport_counts_traffic_and_hides_pattern() {
    let mut rng = StdRng::seed_from_u64(2003);
    let dataset = SyntheticDataset::uniform(10, 3, 8, &mut rng);
    let federation = Federation::setup(
        &dataset.table,
        FederationConfig {
            key_bits: 128,
            max_query_value: dataset.max_value,
            transport: TransportKind::Channel,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();

    let query = uniform_query(3, dataset.max_value, &mut rng);
    let basic = federation.query_basic(&query, 2, &mut rng).unwrap();
    let secure = federation.query_secure(&query, 2, &mut rng).unwrap();

    assert_valid_knn(&dataset.table, &query, 2, &secure.records);
    assert!(secure.audit.is_oblivious());

    // Security costs bandwidth: the secure protocol exchanges strictly more
    // messages and bytes than the basic one for the same query.
    let b = basic.comm.unwrap();
    let s = secure.comm.unwrap();
    assert!(s.requests > b.requests);
    assert!(s.total_bytes() > b.total_bytes());
}

#[test]
fn profile_shows_smin_dominating_as_in_the_paper() {
    // Section 5.2: "around 69.7% of cost in SkNN_m is accounted due to SMIN_n".
    let mut rng = StdRng::seed_from_u64(2004);
    let dataset = SyntheticDataset::uniform(20, 6, 8, &mut rng);
    let federation = Federation::setup(
        &dataset.table,
        FederationConfig {
            key_bits: 128,
            max_query_value: dataset.max_value,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let query = uniform_query(6, dataset.max_value, &mut rng);
    let result = federation.query_secure(&query, 3, &mut rng).unwrap();

    let smin_fraction = result.profile.fraction(Stage::SecureMinimum);
    assert!(
        smin_fraction > 0.4,
        "SMIN_n should dominate the secure protocol, got {:.1}%",
        smin_fraction * 100.0
    );
    // All stages of the secure pipeline actually ran.
    for stage in [
        Stage::DistanceComputation,
        Stage::BitDecomposition,
        Stage::SecureMinimum,
        Stage::RecordSelection,
        Stage::DistanceFreezing,
        Stage::Finalization,
    ] {
        assert!(
            result.profile.stage(stage) > std::time::Duration::ZERO,
            "stage {stage:?} did not run"
        );
    }
}

#[test]
fn all_records_identical_edge_case() {
    // Every record is the same point: any k of them is a correct answer and
    // the protocol must still terminate and return k copies.
    let mut rng = StdRng::seed_from_u64(2005);
    let table = Table::new(vec![vec![7, 7]; 6]).unwrap();
    let federation = Federation::setup(
        &table,
        FederationConfig {
            key_bits: 128,
            max_query_value: 15,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let result = federation.query_secure(&[1, 2], 3, &mut rng).unwrap();
    assert_eq!(result.records, vec![vec![7, 7]; 3]);
}

#[test]
fn query_identical_to_a_record_returns_it_first() {
    let mut rng = StdRng::seed_from_u64(2006);
    let table = Table::new(vec![vec![9, 1], vec![3, 4], vec![8, 8], vec![0, 2]]).unwrap();
    let federation = Federation::setup(
        &table,
        FederationConfig {
            key_bits: 128,
            max_query_value: 9,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let result = federation.query_secure(&[3, 4], 1, &mut rng).unwrap();
    assert_eq!(result.records, vec![vec![3, 4]]);
}
