//! Crash-recovery corpus: systematic torn writes and bit flips against a
//! real dataset directory written by the engine.
//!
//! The recovery contract (see `DESIGN.md`, "Durable storage &
//! compaction"):
//!
//! * **Torn tail** — any truncation of a shard log reloads successfully
//!   to a *clean prefix*: every record served is bit-identical to a
//!   record the writer appended, in the writer's order, and no tombstone
//!   appears that the writer never wrote. Unacknowledged suffixes vanish;
//!   nothing is ever invented.
//! * **Corruption** — a bit flip in the durable prefix (or anywhere in
//!   the checksummed manifest) is a **typed** [`StoreError`] — the store
//!   refuses to serve a prefix it cannot trust.
//! * In neither case does loading panic. The corpus sweeps every
//!   truncation length and a dense grid of flip offsets to make "never"
//!   mean never.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::bigint::BigUint;
use sknn::store::{
    decode_entry, DatasetStore, EntryDecode, Manifest, StoreError, LOG_HEADER_LEN, MANIFEST_FILE,
};
use sknn::{
    DataOwner, FederationConfig, Protocol, ShardingConfig, SknnEngine, SknnError, Table,
    TransportKind,
};
use std::path::{Path, PathBuf};

fn tmp_root(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("sknn-recover-{}-{}-{}", std::process::id(), tag, n))
}

fn table() -> Table {
    Table::new(
        (0..9u64)
            .map(|i| vec![i, (i * 3 + 1) % 11])
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

fn config() -> FederationConfig {
    FederationConfig {
        key_bits: 96,
        max_query_value: 10,
        transport: TransportKind::InProcess,
        sharding: ShardingConfig {
            shards: 3,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Writes a churned dataset to `<root>/d` through the real engine
/// (register → tombstone → append → flush) and returns the dataset dir.
fn write_fixture(root: &Path, owner: &DataOwner) -> PathBuf {
    let mut rng = StdRng::seed_from_u64(0x5AFE);
    let mut engine = SknnEngine::open_dir(owner.clone(), config(), root).expect("open root");
    engine
        .register_dataset_persistent("d", &table(), &mut rng)
        .expect("register");
    engine.tombstone_record("d", 2).expect("tombstone");
    engine.tombstone_record("d", 7).expect("tombstone");
    let extra = owner.encrypt_record(&[4, 4], &mut rng).expect("encrypt");
    engine.append_records("d", vec![extra]).expect("append");
    engine.flush().expect("flush");
    drop(engine);
    root.join("d")
}

/// Byte-for-byte snapshot of every file in a dataset directory.
fn snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read dataset dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).expect("read file");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

/// Restores a dataset directory to a snapshot, wiping anything recovery
/// or generation rewrites left behind.
fn restore(dir: &Path, files: &[(String, Vec<u8>)]) {
    if dir.exists() {
        std::fs::remove_dir_all(dir).expect("wipe dir");
    }
    std::fs::create_dir_all(dir).expect("recreate dir");
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).expect("restore file");
    }
}

/// The recovered store never invents data: its records are a
/// bit-identical prefix of the pristine store's records, and it marks a
/// record dead only if the writer really tombstoned it.
fn assert_clean_prefix(
    recovered: &DatasetStore,
    original_records: &[Vec<BigUint>],
    original_live: &[bool],
    label: &str,
) {
    let n = recovered.records().len();
    assert!(
        n <= original_records.len(),
        "{label}: recovered {n} records, writer only stored {}",
        original_records.len()
    );
    assert_eq!(
        recovered.records(),
        &original_records[..n],
        "{label}: recovered records are not a bit-identical prefix"
    );
    for (i, (&rec_live, &orig_live)) in recovered
        .live()
        .iter()
        .zip(original_live.iter())
        .enumerate()
    {
        // A lost tail may resurrect a tombstone (the tombstone entry was
        // in the dropped suffix) but never fabricate one.
        assert!(
            rec_live || !orig_live,
            "{label}: record {i} is tombstoned on reload but the writer never killed it"
        );
    }
}

/// Every possible torn write against one shard log — truncation to every
/// length from zero bytes to just-short-of-complete — reloads to a clean
/// prefix. No panic, no error, no invented record.
#[test]
fn every_tail_truncation_recovers_a_clean_prefix() {
    let root = tmp_root("torn");
    let mut rng = StdRng::seed_from_u64(0x70_41);
    let owner = DataOwner::new(96, &mut rng);
    let dir = write_fixture(&root, &owner);
    let pristine = snapshot(&dir);
    let meta = Manifest::load(&dir.join(MANIFEST_FILE))
        .expect("manifest")
        .meta;
    let (original, clean) = DatasetStore::open(&dir, &meta).expect("pristine open");
    assert!(clean.is_clean());
    let original_records = original.records().to_vec();
    let original_live = original.live().to_vec();
    drop(original);

    let victim = pristine
        .iter()
        .filter(|(name, _)| name.starts_with("shard-"))
        .max_by_key(|(_, bytes)| bytes.len())
        .expect("a shard log")
        .0
        .clone();
    let victim_bytes = &pristine
        .iter()
        .find(|(n, _)| *n == victim)
        .expect("victim bytes")
        .1;
    let full = victim_bytes.len();
    // The victim's valid prefix lengths: the header boundary plus the end
    // of every complete frame.
    let mut boundaries = std::collections::BTreeSet::new();
    let mut at = LOG_HEADER_LEN as usize;
    boundaries.insert(at);
    while let EntryDecode::Entry { consumed, .. } = decode_entry(&victim_bytes[at..]) {
        at += consumed;
        boundaries.insert(at);
    }
    assert_eq!(at, full, "pristine log must parse to its last byte");

    for cut in 0..full {
        restore(&dir, &pristine);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join(&victim))
            .expect("open victim");
        f.set_len(cut as u64).expect("truncate");
        drop(f);

        let label = format!("truncate {victim} to {cut}/{full}");
        let (recovered, report) = DatasetStore::open(&dir, &meta)
            .unwrap_or_else(|e| panic!("{label}: torn tail must recover, got {e}"));
        // A cut landing exactly on a frame boundary is indistinguishable
        // from a crash before the next write ever started — the report may
        // legitimately be clean there. A cut mid-frame must be reported.
        if !boundaries.contains(&cut) {
            assert!(
                !report.is_clean(),
                "{label}: bytes vanished mid-frame without the report noticing"
            );
        }
        assert_clean_prefix(&recovered, &original_records, &original_live, &label);

        // Recovery is convergent: a second open of the salvaged dir is
        // clean and serves the same prefix.
        let n = recovered.records().len();
        drop(recovered);
        let (again, second) = DatasetStore::open(&dir, &meta)
            .unwrap_or_else(|e| panic!("{label}: reopen after salvage failed: {e}"));
        assert!(second.is_clean(), "{label}: salvage did not persist");
        assert_eq!(again.records().len(), n, "{label}: salvage is not stable");
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// A dense grid of single-bit flips across a shard log: each one either
/// recovers a clean prefix (flip landed in the unacknowledged tail
/// frame) or refuses with a typed error (flip landed in the durable
/// prefix). Both outcomes occur across the corpus; a panic or a
/// silently-altered record never does.
#[test]
fn bit_flip_corpus_yields_prefix_or_typed_error() {
    let root = tmp_root("flip");
    let mut rng = StdRng::seed_from_u64(0xF1_1B);
    let owner = DataOwner::new(96, &mut rng);
    let dir = write_fixture(&root, &owner);
    let pristine = snapshot(&dir);
    let meta = Manifest::load(&dir.join(MANIFEST_FILE))
        .expect("manifest")
        .meta;
    let (original, _) = DatasetStore::open(&dir, &meta).expect("pristine open");
    let original_records = original.records().to_vec();
    let original_live = original.live().to_vec();
    drop(original);

    let (victim, victim_bytes) = pristine
        .iter()
        .filter(|(name, _)| name.starts_with("shard-"))
        .max_by_key(|(_, bytes)| bytes.len())
        .expect("a shard log")
        .clone();

    let mut recovered_count = 0usize;
    let mut refused_count = 0usize;
    for offset in (0..victim_bytes.len()).step_by(3) {
        for bit in [0x01u8, 0x80] {
            restore(&dir, &pristine);
            let mut mutated = victim_bytes.clone();
            mutated[offset] ^= bit;
            std::fs::write(dir.join(&victim), &mutated).expect("write flipped");

            let label = format!("flip bit {bit:#04x} at {offset} of {victim}");
            match DatasetStore::open(&dir, &meta) {
                Ok((recovered, _)) => {
                    recovered_count += 1;
                    assert_clean_prefix(&recovered, &original_records, &original_live, &label);
                }
                Err(e) => {
                    refused_count += 1;
                    assert!(
                        matches!(e, StoreError::Corrupt { .. }),
                        "{label}: expected a corruption error, got {e}"
                    );
                }
            }
        }
    }
    assert!(
        recovered_count > 0 && refused_count > 0,
        "corpus must exercise both outcomes: {recovered_count} recovered, {refused_count} refused"
    );
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// The manifest is checksummed end to end: any single-bit flip makes the
/// dataset refuse to open with a typed error rather than trusting a
/// mutated identity (key fingerprint, shard count, index map...).
#[test]
fn manifest_bit_flips_are_always_refused() {
    let root = tmp_root("manifest");
    let mut rng = StdRng::seed_from_u64(0x3A_21);
    let owner = DataOwner::new(96, &mut rng);
    let dir = write_fixture(&root, &owner);
    let pristine = snapshot(&dir);
    let meta = Manifest::load(&dir.join(MANIFEST_FILE))
        .expect("manifest")
        .meta;
    let manifest_bytes = pristine
        .iter()
        .find(|(n, _)| n == MANIFEST_FILE)
        .expect("manifest in snapshot")
        .1
        .clone();

    for offset in 0..manifest_bytes.len() {
        restore(&dir, &pristine);
        let mut mutated = manifest_bytes.clone();
        mutated[offset] ^= 0x04;
        std::fs::write(dir.join(MANIFEST_FILE), &mutated).expect("write flipped manifest");
        assert!(
            DatasetStore::open(&dir, &meta).is_err(),
            "flip at manifest byte {offset} was accepted"
        );
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// The same contract holds end to end through `SknnEngine::open_dir`: a
/// torn tail reloads (with the salvage visible in the recovery report)
/// and still answers queries; durable-prefix corruption surfaces as
/// [`SknnError::Storage`] — never a panic, never a wrong answer.
#[test]
fn engine_reload_survives_torn_tail_and_types_corruption() {
    let root = tmp_root("engine");
    let mut rng = StdRng::seed_from_u64(0xE2_6E);
    let owner = DataOwner::new(96, &mut rng);
    let dir = write_fixture(&root, &owner);
    let pristine = snapshot(&dir);
    let (victim, victim_bytes) = pristine
        .iter()
        .filter(|(name, _)| name.starts_with("shard-"))
        .max_by_key(|(_, bytes)| bytes.len())
        .expect("a shard log")
        .clone();

    // Torn tail: cut mid-way through the victim log's final frame.
    restore(&dir, &pristine);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(&victim))
        .expect("open victim");
    f.set_len(victim_bytes.len() as u64 - 5).expect("truncate");
    drop(f);
    let engine = SknnEngine::open_dir(owner.clone(), config(), &root).expect("torn tail reloads");
    let report = engine.recovery_report("d").expect("report");
    assert!(!report.is_clean(), "5 dropped bytes must be reported");
    assert!(report.dropped_tail_bytes > 0, "{report:?}");
    let outcome = engine
        .query("d")
        .k(2)
        .point(&[4, 4])
        .protocol(Protocol::Basic)
        .run(&mut rng)
        .expect("salvaged dataset answers queries");
    assert_eq!(outcome.result.len(), 2);
    drop(engine);

    // Durable-prefix corruption: flip a bit in the victim's first frame.
    restore(&dir, &pristine);
    let mut mutated = victim_bytes.clone();
    mutated[20] ^= 0x20;
    std::fs::write(dir.join(&victim), &mutated).expect("write flipped");
    match SknnEngine::open_dir(owner, config(), &root) {
        Err(SknnError::Storage(StoreError::Corrupt { .. })) => {}
        Err(e) => panic!("expected a typed corruption error, got {e}"),
        Ok(_) => panic!("corrupted durable prefix must not load"),
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}
