//! Backend-equivalence suite: the async reactor transport against the
//! blocking per-session demux it replaces.
//!
//! The reactor changes *scheduling only* — one readiness-driven thread
//! multiplexes every session where the blocking backends park one demux
//! thread per session. The frames, their payloads and their per-stream
//! order are identical, so the contract under test is strict:
//!
//! 1. **Bit-identical answers** across {Basic, Secure} × shards {1, 4}
//!    for the channel and TCP wires, from identical seeds.
//! 2. **Byte-identical traffic** in the serial case: a serial C1 issues
//!    the same frames in the same order on either backend, so the comm
//!    counters must agree exactly.
//! 3. **Backpressure is typed, never a hang**: a full window and queue
//!    produce `TransportError::Overloaded` after a bounded block.
//! 4. **O(1) demux threads**: hundreds of concurrent queries are served
//!    by exactly one `sknn-reactor` thread, not one thread per session.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::protocols::transport::{
    serve, BackpressureConfig, CoalesceConfig, Reactor, SessionKeyHolder, SessionPool,
};
use sknn::{
    plain_knn_records, DataOwner, FederationConfig, LocalKeyHolder, PoolConfig, Protocol,
    ShardingConfig, SknnEngine, Table, TransportKind,
};
use std::sync::{Mutex, OnceLock};

/// Serializes the suite: the reactor-thread-count assertions need the
/// process to themselves, and engines are thread-hungry anyway.
static LOCK: Mutex<()> = Mutex::new(());
static OWNER: OnceLock<DataOwner> = OnceLock::new();

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn owner() -> DataOwner {
    OWNER
        .get_or_init(|| DataOwner::new(96, &mut StdRng::seed_from_u64(0xEC_u64)))
        .clone()
}

/// 8 records with pairwise-distinct squared distances from the query, so
/// both protocols have exactly one correct answer for every k and any
/// scheduling-induced deviation is visible immediately.
fn table() -> Table {
    Table::new(
        (0..8u64)
            .map(|i| vec![i, (i * i * 3 + i) % 29])
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

const QUERY: [u64; 2] = [4, 4];
const MAX_VALUE: u64 = 28;

fn engine(transport: TransportKind, shards: usize, threads: usize) -> SknnEngine {
    let mut rng = StdRng::seed_from_u64(0xD47A);
    let mut engine = SknnEngine::setup_with_owner(
        owner(),
        FederationConfig {
            key_bits: 96,
            max_query_value: MAX_VALUE,
            transport,
            threads,
            sharding: ShardingConfig {
                shards,
                sessions: shards.min(2),
            },
            pool: PoolConfig {
                capacity: 0,
                ..Default::default()
            },
            pool_prewarm: 0,
            ..Default::default()
        },
    )
    .expect("engine");
    engine
        .register_dataset("t", &table(), &mut rng)
        .expect("register");
    engine
}

fn run_one(engine: &SknnEngine, protocol: Protocol, k: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    engine
        .query("t")
        .k(k)
        .point(&QUERY)
        .protocol(protocol)
        .run(&mut rng)
        .expect("query")
        .result
}

/// Async and blocking backends return bit-identical results from
/// identical seeds, across both protocols and sharded/unsharded layouts,
/// on both the in-process and the TCP wire.
#[test]
fn async_backends_match_blocking_bit_identical() {
    let _guard = lock();
    let pairs = [
        (TransportKind::Channel, TransportKind::AsyncChannel),
        (TransportKind::Tcp, TransportKind::AsyncTcp),
    ];
    for (blocking, asynch) in pairs {
        for shards in [1usize, 4] {
            let reference = engine(blocking, shards, 2);
            let candidate = engine(asynch, shards, 2);
            for protocol in [Protocol::Basic, Protocol::Secure] {
                for k in [1usize, 3] {
                    let seed = 0x9000 + k as u64;
                    let expected = run_one(&reference, protocol, k, seed);
                    let got = run_one(&candidate, protocol, k, seed);
                    assert_eq!(
                        got, expected,
                        "{asynch:?} vs {blocking:?} / {protocol:?} / shards={shards} / k={k}"
                    );
                    // Both must also match the plaintext reference — equal
                    // wrong answers would otherwise pass.
                    assert_eq!(expected, plain_knn_records(&table(), &QUERY, k));
                }
            }
        }
    }
}

/// A serial C1 issues the same frames in the same order on either
/// backend, so the traffic counters — requests, responses, bytes each
/// way — must agree exactly. This is the strongest cheap proxy for
/// "byte-identical wire" the public API exposes.
#[test]
fn serial_traffic_counters_are_identical() {
    let _guard = lock();
    for (blocking, asynch) in [
        (TransportKind::Channel, TransportKind::AsyncChannel),
        (TransportKind::Tcp, TransportKind::AsyncTcp),
    ] {
        for protocol in [Protocol::Basic, Protocol::Secure] {
            let reference = engine(blocking, 1, 1);
            let candidate = engine(asynch, 1, 1);
            let expected = run_one(&reference, protocol, 2, 0x7E57);
            let got = run_one(&candidate, protocol, 2, 0x7E57);
            assert_eq!(got, expected, "{asynch:?} {protocol:?}");
            let ref_comm = reference.comm_stats().expect("accounting");
            let cand_comm = candidate.comm_stats().expect("accounting");
            assert_eq!(
                (ref_comm.requests, ref_comm.request_bytes),
                (cand_comm.requests, cand_comm.request_bytes),
                "{asynch:?} {protocol:?}: request traffic diverged"
            );
            assert_eq!(
                (ref_comm.responses, ref_comm.response_bytes),
                (cand_comm.responses, cand_comm.response_bytes),
                "{asynch:?} {protocol:?}: response traffic diverged"
            );
        }
    }
}

fn reactor_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("read task dir")
        .filter(|entry| {
            let Ok(entry) = entry else { return false };
            std::fs::read_to_string(entry.path().join("comm"))
                .map(|comm| comm.trim() == "sknn-reactor")
                .unwrap_or(false)
        })
        .count()
}

/// The headline scaling claim: hundreds of concurrent in-flight queries
/// across several sessions are demultiplexed by **one** reactor thread.
/// (The blocking backends dedicate one demux thread per session; the
/// reactor's thread count is independent of both sessions and load.)
#[test]
fn many_inflight_queries_one_reactor_thread() {
    let _guard = lock();
    let engine = engine(TransportKind::AsyncTcp, 4, 256);
    assert_eq!(
        reactor_thread_count(),
        1,
        "4 sessions must share one reactor thread"
    );
    let queries: Vec<_> = (0..256usize)
        .map(|i| {
            engine
                .query("t")
                .k(1 + i % 3)
                .point(&QUERY)
                .protocol(Protocol::Basic)
                .build()
                .expect("build")
        })
        .collect();
    // Sample the reactor thread count while the batch is in flight: it
    // must never grow with load.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let peak = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut peak = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                peak = peak.max(reactor_thread_count());
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            peak
        })
    };
    let mut rng = StdRng::seed_from_u64(0x1F11);
    let outcomes = engine.run_batch(&queries, &mut rng);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let peak = peak.join().expect("sampler");
    assert!(peak <= 1, "reactor thread count grew under load: {peak}");
    for (i, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().expect("batch query");
        let k = 1 + i % 3;
        assert_eq!(
            outcome.result,
            plain_knn_records(&table(), &QUERY, k),
            "query {i}"
        );
    }
}

/// The most hostile backpressure shape that can still make progress: an
/// in-flight window of **one**. Sixteen worker threads' requests
/// serialize through the single slot — the overflow queue and the
/// promote-on-completion path carry all the load — and every query still
/// completes with the right answer. The typed tail of the ladder
/// (`TransportError::Overloaded` once window, queue and the bounded block
/// are all exhausted) is pinned down at the unit level in the reactor's
/// own tests, where the peer can be wedged deterministically.
#[test]
fn window_of_one_serializes_but_never_hangs() {
    let _guard = lock();
    let owner = owner();
    let reactor = Reactor::new().expect("reactor");
    let backpressure = BackpressureConfig {
        window: 1,
        queue: 256,
        ..Default::default()
    };
    let mut clients = Vec::new();
    let mut servers = Vec::new();
    for i in 0..2usize {
        let holder = LocalKeyHolder::new(owner.private_key().clone(), 7_000 + i as u64);
        let (conn, server_end) = reactor
            .channel_pair(backpressure, None)
            .expect("channel pair");
        servers.push(
            std::thread::Builder::new()
                .name(format!("equiv-c2-{i}"))
                .spawn(move || serve(&server_end, &holder, 2))
                .expect("spawn server"),
        );
        clients.push(SessionKeyHolder::connect_async(
            owner.public_key().clone(),
            conn,
            CoalesceConfig::disabled(),
        ));
    }
    let pool = SessionPool::from_parts(clients, servers)
        .expect("pool")
        .with_reactor(reactor);
    let mut rng = StdRng::seed_from_u64(0x11AE);
    let mut engine = SknnEngine::setup_with_sessions(
        owner,
        FederationConfig {
            key_bits: 96,
            max_query_value: MAX_VALUE,
            transport: TransportKind::AsyncChannel,
            threads: 16,
            sharding: ShardingConfig {
                shards: 2,
                sessions: 2,
            },
            pool: PoolConfig {
                capacity: 0,
                ..Default::default()
            },
            pool_prewarm: 0,
            ..Default::default()
        },
        pool,
    )
    .expect("engine");
    engine
        .register_dataset("t", &table(), &mut rng)
        .expect("register");
    let queries: Vec<_> = (0..16usize)
        .map(|_| {
            engine
                .query("t")
                .k(2)
                .point(&QUERY)
                .protocol(Protocol::Basic)
                .build()
                .expect("build")
        })
        .collect();
    let outcomes = engine.run_batch(&queries, &mut rng);
    let expected = plain_knn_records(&table(), &QUERY, 2);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.as_ref().expect("query completes").result,
            expected,
            "query {i}"
        );
    }
}

/// Admission control composes with the async backend: a gate of 4 bounds
/// the engine's concurrency below the batch width, every query still
/// completes correctly, and nothing deadlocks.
#[test]
fn admission_gate_bounds_async_batches() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(0xAD31);
    let mut engine = SknnEngine::setup_with_owner(
        owner(),
        FederationConfig {
            key_bits: 96,
            max_query_value: MAX_VALUE,
            transport: TransportKind::AsyncChannel,
            threads: 16,
            admission: 4,
            sharding: ShardingConfig {
                shards: 1,
                sessions: 2,
            },
            pool: PoolConfig {
                capacity: 0,
                ..Default::default()
            },
            pool_prewarm: 0,
            ..Default::default()
        },
    )
    .expect("engine");
    engine
        .register_dataset("t", &table(), &mut rng)
        .expect("register");
    let queries: Vec<_> = (0..16usize)
        .map(|_| {
            engine
                .query("t")
                .k(2)
                .point(&QUERY)
                .protocol(Protocol::Basic)
                .build()
                .expect("build")
        })
        .collect();
    let outcomes = engine.run_batch(&queries, &mut rng);
    let expected = plain_knn_records(&table(), &QUERY, 2);
    for outcome in &outcomes {
        assert_eq!(outcome.as_ref().expect("admitted query").result, expected);
    }
}
