//! Property-based end-to-end tests: for random small tables and queries, both
//! protocols must return a correct k-nearest-neighbor set (verified against
//! the plaintext baseline by distance multiset, which is tie-insensitive).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn::{
    plain_knn_records, squared_euclidean_distance, DataOwner, Federation, FederationConfig,
    Keypair, Table,
};
use std::sync::OnceLock;

/// Key generation dominates test time, so share one key pair across cases.
fn shared_keypair() -> &'static Keypair {
    static KEYS: OnceLock<Keypair> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        Keypair::generate(128, &mut rng)
    })
}

fn sorted_distances(records: &[Vec<u64>], query: &[u64]) -> Vec<u128> {
    let mut d: Vec<u128> = records
        .iter()
        .map(|r| squared_euclidean_distance(r, query))
        .collect();
    d.sort_unstable();
    d
}

fn arb_instance() -> impl Strategy<Value = (Vec<Vec<u64>>, Vec<u64>, usize)> {
    // Between 2 and 8 records, 1–3 attributes, values below 16, k ≤ n.
    (2usize..=8, 1usize..=3).prop_flat_map(|(n, m)| {
        (
            prop::collection::vec(prop::collection::vec(0u64..16, m), n),
            prop::collection::vec(0u64..16, m),
            1usize..=n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn basic_protocol_is_correct_on_random_instances((rows, query, k) in arb_instance(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = Table::new(rows).unwrap();
        let owner = DataOwner::from_keypair(shared_keypair().clone());
        let federation = Federation::setup_with_owner(
            owner,
            &table,
            FederationConfig { key_bits: 128, max_query_value: 16, ..Default::default() },
            &mut rng,
        ).unwrap();

        let result = federation.query_basic(&query, k, &mut rng).unwrap();
        // SkNN_b uses the same tie-breaking as the plaintext baseline, so the
        // records must match exactly, in order.
        prop_assert_eq!(result.records, plain_knn_records(&table, &query, k));
    }

    #[test]
    fn secure_protocol_is_correct_on_random_instances((rows, query, k) in arb_instance(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = Table::new(rows).unwrap();
        let owner = DataOwner::from_keypair(shared_keypair().clone());
        let federation = Federation::setup_with_owner(
            owner,
            &table,
            FederationConfig { key_bits: 128, max_query_value: 16, ..Default::default() },
            &mut rng,
        ).unwrap();

        let result = federation.query_secure(&query, k, &mut rng).unwrap();
        prop_assert_eq!(result.records.len(), k);
        // Every record returned must be a table row.
        for r in &result.records {
            prop_assert!(table.records().iter().any(|row| row == r));
        }
        // Distance multiset must equal the plaintext baseline's.
        let expected = plain_knn_records(&table, &query, k);
        prop_assert_eq!(
            sorted_distances(&result.records, &query),
            sorted_distances(&expected, &query)
        );
        // And nothing was leaked.
        prop_assert!(result.audit.is_oblivious());
    }
}
