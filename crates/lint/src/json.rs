//! Minimal JSON emission for `--json` (machine-readable findings for the
//! CI artifact). Hand-rolled because the workspace builds offline; the
//! output shape is stable and documented here:
//!
//! ```json
//! {
//!   "findings": [
//!     {"rule": "...", "file": "...", "line": 1, "message": "...", "status": "failing"}
//!   ],
//!   "summary": {"failing": 1, "baselined": 0, "suppressed": 0}
//! }
//! ```

use crate::rules::Finding;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, status: &str) -> String {
    format!(
        "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"status\": \"{}\"}}",
        escape(f.rule),
        escape(&f.file),
        f.line,
        escape(&f.message),
        status
    )
}

/// Renders the full report document.
pub fn report(failing: &[Finding], baselined: &[Finding], suppressed: usize) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(failing.len() + baselined.len());
    rows.extend(failing.iter().map(|f| finding_json(f, "failing")));
    rows.extend(baselined.iter().map(|f| finding_json(f, "baselined")));
    format!(
        "{{\n  \"findings\": [\n{}\n  ],\n  \"summary\": {{\"failing\": {}, \"baselined\": {}, \"suppressed\": {}}}\n}}\n",
        rows.join(",\n"),
        failing.len(),
        baselined.len(),
        suppressed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_shapes() {
        let f = Finding {
            rule: "panic-free",
            file: "a\"b.rs".into(),
            line: 3,
            message: "line1\nline2".into(),
        };
        let doc = report(std::slice::from_ref(&f), &[], 2);
        assert!(doc.contains("\\\"b.rs"));
        assert!(doc.contains("line1\\nline2"));
        assert!(doc.contains("\"failing\": 1"));
        assert!(doc.contains("\"suppressed\": 2"));
    }
}
