//! A minimal Rust lexer: strips comments and literals while preserving
//! byte offsets and line numbers exactly.
//!
//! The analyzer never needs a full parse — every rule works on *token
//! neighborhoods* ("`.unwrap` followed by `(`", "`Request::Name` inside
//! `fn wire_tag`"). What it must never do is match inside a string
//! literal or a comment, so this module produces a `code` buffer of the
//! same length as the input where:
//!
//! - line and block comments (nested) are blanked to spaces,
//! - string, raw-string, byte-string, and char literals are blanked
//!   (the delimiting quotes are kept so literals remain visible as
//!   tokens),
//! - newlines are preserved everywhere, so `offset -> line` mapping is
//!   identical between the raw source and the stripped buffer.
//!
//! Line comments are additionally collected verbatim (for
//! `// sknn-lint: allow(...)` suppressions) and string-literal spans are
//! recorded (for the secret-format rule, which inspects format strings).

/// One `//` comment: 1-based line number and the raw text including the
/// leading slashes.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Raw comment text, `//` included.
    pub text: String,
}

/// The result of stripping one source file.
#[derive(Debug)]
pub struct Stripped {
    /// Same byte length as the input; comments and literal contents
    /// blanked with spaces, newlines preserved.
    pub code: String,
    /// All line comments, for suppression parsing.
    pub comments: Vec<Comment>,
    /// Byte ranges (start..end, quotes excluded) of string-literal
    /// contents in the *raw* source.
    pub strings: Vec<(usize, usize)>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Strips `source` as described in the module docs.
pub fn strip(source: &str) -> Stripped {
    let bytes = source.as_bytes();
    let n = bytes.len();
    let mut code: Vec<u8> = Vec::with_capacity(n);
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes a blanked byte, preserving newlines (and the line counter).
    macro_rules! blank {
        ($b:expr) => {
            if $b == b'\n' {
                code.push(b'\n');
                line += 1;
            } else {
                code.push(b' ');
            }
        };
    }

    while i < n {
        let b = bytes[i];
        let prev_ident = i > 0 && is_ident(bytes[i - 1]);
        if b == b'\n' {
            code.push(b'\n');
            line += 1;
            i += 1;
        } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            let start = i;
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            comments.push(Comment {
                line,
                text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
            });
            code.extend(std::iter::repeat_n(b' ', i - start));
        } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            // Nested block comment.
            let mut depth = 1usize;
            code.push(b' ');
            code.push(b' ');
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    depth -= 1;
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
        } else if (b == b'r' || b == b'b') && !prev_ident && is_literal_prefix(bytes, i) {
            // r"...", r#"..."#, b"...", br#"..."# and friends.
            let (raw, prefix_len) = literal_prefix(bytes, i);
            for _ in 0..prefix_len {
                code.push(bytes[i]);
                i += 1;
            }
            if raw {
                let mut hashes = 0usize;
                while i < n && bytes[i] == b'#' {
                    code.push(b'#');
                    i += 1;
                    hashes += 1;
                }
                if i < n && bytes[i] == b'"' {
                    code.push(b'"');
                    i += 1;
                    let content_start = i;
                    // Scan for `"` followed by `hashes` hash marks.
                    loop {
                        if i >= n {
                            break;
                        }
                        if bytes[i] == b'"'
                            && bytes[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&c| c == b'#')
                                .count()
                                == hashes
                            && i + 1 + hashes <= n
                        {
                            strings.push((content_start, i));
                            code.push(b'"');
                            i += 1;
                            code.extend(std::iter::repeat_n(b'#', hashes));
                            i += hashes;
                            break;
                        }
                        blank!(bytes[i]);
                        i += 1;
                    }
                }
            } else if i < n && bytes[i] == b'"' {
                i = scan_plain_string(bytes, i, &mut code, &mut line, &mut strings);
            }
        } else if b == b'"' {
            i = scan_plain_string(bytes, i, &mut code, &mut line, &mut strings);
        } else if b == b'\'' {
            // Char literal vs. lifetime. `'\x'`-style escapes and `'c'`
            // are literals; anything else (`'a` in `&'a str`) is a
            // lifetime and flows through untouched.
            if i + 1 < n && bytes[i + 1] == b'\\' {
                code.push(b'\'');
                i += 1;
                while i < n && bytes[i] != b'\'' {
                    blank!(bytes[i]);
                    i += 1;
                }
                if i < n {
                    code.push(b'\'');
                    i += 1;
                }
            } else if i + 2 < n && bytes[i + 2] == b'\'' {
                code.push(b'\'');
                code.push(b' ');
                code.push(b'\'');
                i += 3;
            } else {
                code.push(b'\'');
                i += 1;
            }
        } else {
            code.push(b);
            i += 1;
        }
    }

    Stripped {
        // Every replacement byte is ASCII and untouched spans are copied
        // verbatim, so the buffer is valid UTF-8 by construction.
        code: String::from_utf8_lossy(&code).into_owned(),
        comments,
        strings,
    }
}

/// Consumes a `"`-delimited string with escapes starting at `bytes[i]`.
fn scan_plain_string(
    bytes: &[u8],
    mut i: usize,
    code: &mut Vec<u8>,
    line: &mut usize,
    strings: &mut Vec<(usize, usize)>,
) -> usize {
    let n = bytes.len();
    code.push(b'"');
    i += 1;
    let content_start = i;
    while i < n {
        match bytes[i] {
            b'\\' if i + 1 < n => {
                if bytes[i + 1] == b'\n' {
                    code.push(b' ');
                    code.push(b'\n');
                    *line += 1;
                } else {
                    code.push(b' ');
                    code.push(b' ');
                }
                i += 2;
            }
            b'"' => {
                strings.push((content_start, i));
                code.push(b'"');
                i += 1;
                return i;
            }
            b'\n' => {
                code.push(b'\n');
                *line += 1;
                i += 1;
            }
            _ => {
                code.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// Does `bytes[i..]` start a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`)?
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    let n = bytes.len();
    match bytes[i] {
        b'r' => i + 1 < n && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#'),
        b'b' => {
            (i + 1 < n && bytes[i + 1] == b'"')
                || (i + 2 < n
                    && bytes[i + 1] == b'r'
                    && (bytes[i + 2] == b'"' || bytes[i + 2] == b'#'))
        }
        _ => false,
    }
}

/// `(is_raw, prefix_len)` for a literal prefix at `bytes[i]`.
fn literal_prefix(bytes: &[u8], i: usize) -> (bool, usize) {
    match bytes[i] {
        b'r' => (true, 1),
        b'b' if bytes.get(i + 1) == Some(&b'r') => (true, 2),
        _ => (false, 1),
    }
}

/// Byte offsets of each line start, for `offset -> line` mapping.
pub fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte `offset`.
pub fn line_of(starts: &[usize], offset: usize) -> usize {
    match starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Byte ranges of `#[cfg(test)] mod`-style regions: any item whose
/// attribute list mentions `test` (word-boundary match, so `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ...))]` all qualify) together with
/// its brace-delimited body.
pub fn test_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let n = bytes.len();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < n {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        // `#![...]` inner attributes never gate a following item.
        let mut j = i + 1;
        while j < n && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= n || bytes[j] != b'[' {
            i += 1;
            continue;
        }
        // Capture the attribute to its matching bracket.
        let attr_start = j;
        let mut depth = 0usize;
        let mut k = j;
        while k < n {
            match bytes[k] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= n {
            break;
        }
        let attr = &code[attr_start..=k];
        if contains_word(attr, "test") {
            if let Some((_, region_end)) = item_body_after(bytes, k + 1) {
                regions.push((i, region_end));
            }
        }
        i = k + 1;
    }
    regions
}

/// Finds the `{ ... }` body of the item that starts after offset `i`,
/// skipping further attributes; returns `None` when a `;` ends the item
/// before any body (e.g. `#[cfg(test)] mod tests;`).
fn item_body_after(bytes: &[u8], mut i: usize) -> Option<(usize, usize)> {
    let n = bytes.len();
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < n {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b';' if paren == 0 && bracket == 0 => return None,
            b'{' if paren == 0 && bracket == 0 => {
                let start = i;
                let mut depth = 0usize;
                while i < n {
                    match bytes[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((start, i + 1));
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some((start, n));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whole-word containment: `needle` appears in `haystack` with
/// non-identifier characters (or boundaries) on both sides.
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    find_words(haystack, needle).next().is_some()
}

/// Iterator over byte offsets of whole-word occurrences of `needle`.
pub fn find_words<'a>(haystack: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = haystack.as_bytes();
    let len = needle.len();
    haystack.match_indices(needle).filter_map(move |(pos, _)| {
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after_ok = pos + len >= bytes.len() || !is_ident(bytes[pos + len]);
        (before_ok && after_ok).then_some(pos)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_preserving_length() {
        let src = "let x = \"a // not comment\"; // real\n/* block */ let y = 1;";
        let s = strip(src);
        assert_eq!(s.code.len(), src.len());
        assert!(!s.code.contains("not comment"));
        assert!(!s.code.contains("real"));
        assert!(!s.code.contains("block"));
        assert!(s.code.contains("let y = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let a = r#\"un\"closed? no\"#; let c = '\"'; let lt: &'static str = \"x\";";
        let s = strip(src);
        assert_eq!(s.code.len(), src.len());
        assert!(!s.code.contains("closed"));
        assert!(s.code.contains("'static"));
        // Exactly two string-literal spans (the raw one and "x").
        assert_eq!(s.strings.len(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let s = strip(src);
        assert!(!s.code.contains("still"));
        assert!(s.code.contains("fn f()"));
    }

    #[test]
    fn test_region_covers_cfg_test_mod() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn after() {}";
        let s = strip(src);
        let regions = test_regions(&s.code);
        assert_eq!(regions.len(), 1);
        let (a, b) = regions[0];
        assert!(src[a..b].contains("y.unwrap"));
        assert!(!src[a..b].contains("x.unwrap"));
        assert!(!src[a..b].contains("after"));
    }

    #[test]
    fn cfg_test_on_semicolon_item_makes_no_region() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}";
        let s = strip(src);
        assert!(test_regions(&s.code).is_empty());
    }

    #[test]
    fn array_type_semicolons_do_not_end_the_item() {
        let src = "#[test]\nfn t(x: [u8; 4]) { body(); }";
        let s = strip(src);
        let regions = test_regions(&s.code);
        assert_eq!(regions.len(), 1);
        assert!(src[regions[0].0..regions[0].1].contains("body"));
    }

    #[test]
    fn whole_word_matching() {
        assert!(contains_word("cfg(test)", "test"));
        assert!(!contains_word("latest", "test"));
        assert!(!contains_word("test_helper", "test"));
    }

    #[test]
    fn line_mapping_survives_multiline_strings() {
        let src = "let s = \"line one\nline two\";\nlet t = 3;";
        let s = strip(src);
        let starts = line_starts(&s.code);
        let off = s.code.find("let t").unwrap();
        assert_eq!(line_of(&starts, off), 3);
    }
}
