//! CLI driver for the sknn trust-boundary linter. See the library docs
//! for the rule catalogue; this binary adds baseline handling, JSON
//! output, and process exit codes for CI:
//!
//! - `0` — no findings outside the baseline
//! - `1` — at least one failing finding
//! - `2` — usage or I/O error

use sknn_lint::baseline::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baseline: bool,
}

const USAGE: &str = "usage: sknn-lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline] [--list-rules]

Scans the workspace for trust-boundary violations. The baseline file
defaults to <root>/lint-baseline.txt when present.";

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        json: None,
        update_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = need(&mut args, "--root")?.into(),
            "--baseline" => opts.baseline = Some(need(&mut args, "--baseline")?.into()),
            "--json" => opts.json = Some(need(&mut args, "--json")?.into()),
            "--update-baseline" => opts.update_baseline = true,
            "--list-rules" => {
                for rule in sknn_lint::rules::RULE_IDS {
                    println!("{rule}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Some(opts))
}

fn need(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sknn-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let analysis = match sknn_lint::analyze(&opts.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sknn-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.txt"));

    if opts.update_baseline {
        let next = Baseline::from_findings(&analysis.findings);
        if let Err(e) = std::fs::write(&baseline_path, next.serialize()) {
            eprintln!("sknn-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} findings across {} files baselined)",
            baseline_path.display(),
            next.total(),
            analysis.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sknn-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        // Missing baseline just means "no budget anywhere".
        Err(_) => Baseline::default(),
    };

    let parts = baseline.partition(analysis.findings);

    for f in &parts.failing {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    for (rule, path, budget, current) in &parts.slack {
        println!(
            "note: {path} is below its `{rule}` baseline ({current} of {budget}); \
             run --update-baseline to lock in the burn-down"
        );
    }
    println!(
        "sknn-lint: {} files scanned, {} failing, {} baselined, {} suppressed",
        analysis.files_scanned,
        parts.failing.len(),
        parts.baselined.len(),
        analysis.suppressed
    );

    if let Some(json_path) = &opts.json {
        let doc = sknn_lint::json::report(&parts.failing, &parts.baselined, analysis.suppressed);
        if let Err(e) = std::fs::write(json_path, doc) {
            eprintln!("sknn-lint: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    if parts.failing.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
