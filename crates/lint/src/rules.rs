//! The five trust-boundary rules.
//!
//! Every rule works on the stripped token stream of [`SourceFile`]s; see
//! DESIGN.md ("Static trust-boundary analysis") for why each rule exists
//! and how it maps onto the paper's two-cloud non-collusion argument.
//!
//! | id | rule |
//! |----|------|
//! | `decrypt-containment` | R1: `PrivateKey` decryption only in key-holder (C2) modules |
//! | `secret-format`       | R2: no printing / `Debug` of secret material in library code |
//! | `panic-free`          | R3: no panic paths in non-test `protocols` + `core` code |
//! | `wire-conformance`    | R4: every wire tag has encoder, handler, and feature gate |
//! | `rng-discipline`      | R5: engine/exec RNGs only via the derived-seed helpers |

use crate::lexer::find_words;
use crate::source::{FileKind, SourceFile};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`panic-free`, ...).
    pub rule: &'static str,
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// All rule ids, for `--list-rules` and suppression validation.
pub const RULE_IDS: &[&str] = &[
    "decrypt-containment",
    "secret-format",
    "panic-free",
    "wire-conformance",
    "rng-discipline",
];

// ── R1: decrypt containment ─────────────────────────────────────────────

/// Decryption entry points. `debug_decrypt*` are the key holder's
/// explicitly-labelled test/audit helpers; seeing them outside test code
/// is exactly as bad as a raw `decrypt`.
const DECRYPT_METHODS: &[&str] = &[
    "decrypt",
    "decrypt_direct",
    "try_decrypt_u64",
    "decrypt_u64",
    "debug_decrypt",
    "debug_decrypt_u64",
];

/// Files allowed to decrypt outside `#[cfg(test)]`: the Paillier
/// implementation itself and the two C2-side modules (the local key
/// holder and the transport server that dispatches onto it). Everything
/// else in the workspace plays C1 or the data owner, for whom a decrypt
/// call voids the paper's simulation argument.
const R1_ALLOWED_FILES: &[&str] = &[
    "crates/paillier/src/decrypt.rs",
    "crates/protocols/src/party.rs",
    "crates/protocols/src/transport/server.rs",
];

// ── R2: secret formatting ───────────────────────────────────────────────

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Identifier names that conventionally bind secret material in this
/// codebase: the private key and the multiplicative/additive blinding
/// values whose secrecy the SM/SMIN simulators rely on.
const SECRET_IDENTS: &[&str] = &[
    "sk",
    "private_key",
    "secret_key",
    "lambda",
    "mu",
    "blinding",
];

/// Types that hold key material and must never derive `Debug`.
const SECRET_TYPES: &[&str] = &["PrivateKey", "Keypair"];

// ── R3: panic-free protocol paths ───────────────────────────────────────

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "expect_err", "unwrap_err"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];
const R3_SCOPE: &[&str] = &["crates/protocols/src/", "crates/core/src/"];

// ── R4: wire conformance ────────────────────────────────────────────────

const WIRE_RS: &str = "crates/protocols/src/transport/wire.rs";
const SERVER_RS: &str = "crates/protocols/src/transport/server.rs";
const SESSION_RS: &str = "crates/protocols/src/transport/session.rs";
/// Wire tags below this value shipped in the v1 scalar protocol; tags at
/// or above it were added later and must be gated behind a feature
/// revision in `Request::required_features` so old servers answer them
/// like unknown tags instead of mis-decoding.
const POST_V1_TAG_START: u64 = 8;

// ── R5: RNG discipline ──────────────────────────────────────────────────

const RNG_CONSTRUCTORS: &[&str] = &[
    "seed_from_u64",
    "from_entropy",
    "from_seed",
    "from_rng",
    "thread_rng",
];
const R5_SCOPE: &[&str] = &["crates/core/src/exec/", "crates/core/src/engine/"];

/// Runs every rule over `files`; returns surviving findings plus the
/// number suppressed by inline `allow(...)` comments.
pub fn run_all(files: &[SourceFile]) -> (Vec<Finding>, usize) {
    let mut sink = Sink {
        findings: Vec::new(),
        suppressed: 0,
    };
    for file in files {
        rule_decrypt_containment(file, &mut sink);
        rule_secret_format(file, &mut sink);
        rule_panic_free(file, &mut sink);
        rule_rng_discipline(file, &mut sink);
    }
    rule_wire_conformance(files, &mut sink);
    sink.findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    (sink.findings, sink.suppressed)
}

struct Sink {
    findings: Vec<Finding>,
    suppressed: usize,
}

impl Sink {
    fn push(&mut self, file: &SourceFile, rule: &'static str, line: usize, message: String) {
        if file.is_suppressed(rule, line) {
            self.suppressed += 1;
        } else {
            self.findings.push(Finding {
                rule,
                file: file.rel.clone(),
                line,
                message,
            });
        }
    }
}

fn is_ws(b: u8) -> bool {
    b.is_ascii_whitespace()
}

/// Last non-whitespace byte before `pos`.
fn prev_significant(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes[..pos].iter().rev().copied().find(|b| !is_ws(*b))
}

/// First non-whitespace byte at or after `pos`.
fn next_significant(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes[pos..].iter().copied().find(|b| !is_ws(*b))
}

/// Offsets of `name` in *method-call* position: `recv.name(...)`.
fn method_calls<'a>(code: &'a str, name: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = code.as_bytes();
    find_words(code, name).filter(move |&pos| {
        prev_significant(bytes, pos) == Some(b'.')
            && next_significant(bytes, pos + name.len()) == Some(b'(')
    })
}

/// Offsets of `name` in any call position: `recv.name(...)`,
/// `Type::name(...)`, or a bare `name(...)`.
fn any_calls<'a>(code: &'a str, name: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = code.as_bytes();
    find_words(code, name).filter(move |&pos| {
        let callee = next_significant(bytes, pos + name.len()) == Some(b'(');
        let not_definition = !preceded_by_word(code, pos, "fn");
        callee && not_definition
    })
}

/// Offsets of macro invocations `name!`.
fn macro_calls<'a>(code: &'a str, name: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = code.as_bytes();
    find_words(code, name).filter(move |&pos| {
        next_significant(bytes, pos + name.len()) == Some(b'!')
            && prev_significant(bytes, pos) != Some(b'.')
    })
}

/// Is the word at `pos` directly preceded by the keyword `word`?
fn preceded_by_word(code: &str, pos: usize, word: &str) -> bool {
    let head = code[..pos].trim_end();
    head.ends_with(word)
        && head[..head.len() - word.len()]
            .bytes()
            .next_back()
            .is_none_or(|b| !(b.is_ascii_alphanumeric() || b == b'_'))
}

// ── R1 ──────────────────────────────────────────────────────────────────

fn rule_decrypt_containment(file: &SourceFile, sink: &mut Sink) {
    if matches!(file.kind, FileKind::Test | FileKind::Bench) {
        return;
    }
    if R1_ALLOWED_FILES.contains(&file.rel.as_str()) {
        return;
    }
    for method in DECRYPT_METHODS {
        let hits: Vec<usize> = method_calls(&file.code, method)
            .chain(path_calls(&file.code, method))
            .collect();
        for pos in hits {
            if file.in_test(pos) {
                continue;
            }
            let line = file.line_of(pos);
            sink.push(
                file,
                "decrypt-containment",
                line,
                format!(
                    "`{method}` called outside the key-holder (C2) trust boundary; \
                     only {} may decrypt in non-test code",
                    R1_ALLOWED_FILES.join(", ")
                ),
            );
        }
    }
}

/// Offsets of `name` in path-call position: `Type::name(...)`.
fn path_calls<'a>(code: &'a str, name: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = code.as_bytes();
    find_words(code, name).filter(move |&pos| {
        pos >= 2
            && &code[pos - 2..pos] == "::"
            && next_significant(bytes, pos + name.len()) == Some(b'(')
    })
}

// ── R2 ──────────────────────────────────────────────────────────────────

fn rule_secret_format(file: &SourceFile, sink: &mut Sink) {
    if file.kind != FileKind::Library {
        return;
    }
    // (a) Console printing has no place in protocol library code: C1 must
    // not be able to exfiltrate anything it observed, even accidentally.
    for mac in PRINT_MACROS {
        let hits: Vec<usize> = macro_calls(&file.code, mac).collect();
        for pos in hits {
            if file.in_test(pos) {
                continue;
            }
            let line = file.line_of(pos);
            sink.push(
                file,
                "secret-format",
                line,
                format!(
                    "`{mac}!` in library code; route output through QueryProfile/audit or delete"
                ),
            );
        }
    }
    // (b) Interpolating a secret-named binding into any format string.
    for &(start, end) in &file.strings {
        if file.in_test(start) {
            continue;
        }
        let lit = &file.raw[start..end];
        for ident in SECRET_IDENTS {
            for pos in find_words(lit, ident) {
                let bytes = lit.as_bytes();
                let braced = pos > 0
                    && bytes[pos - 1] == b'{'
                    && matches!(bytes.get(pos + ident.len()), Some(b'}') | Some(b':'));
                if braced {
                    let line = file.line_of(start + pos);
                    sink.push(
                        file,
                        "secret-format",
                        line,
                        format!("format string interpolates secret binding `{ident}`"),
                    );
                }
            }
        }
    }
    // (c) `#[derive(Debug)]` on key-material types would let any caller
    // print the private key through an innocent-looking `{:?}`.
    for pos in derive_debug_targets(&file.code) {
        if file.in_test(pos.0) {
            continue;
        }
        if SECRET_TYPES.contains(&pos.1.as_str()) {
            let line = file.line_of(pos.0);
            sink.push(
                file,
                "secret-format",
                line,
                format!(
                    "`{}` derives Debug; key material must not be formattable",
                    pos.1
                ),
            );
        }
    }
}

/// `(offset, type_name)` for every `#[derive(.. Debug ..)] struct/enum T`.
fn derive_debug_targets(code: &str) -> Vec<(usize, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for pos in find_words(code, "derive") {
        let Some(open) = code[pos..].find('(').map(|o| pos + o) else {
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        for (i, b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        if !crate::lexer::contains_word(&code[open..close], "Debug") {
            continue;
        }
        let rest = &code[close..];
        let item = find_words(rest, "struct")
            .chain(find_words(rest, "enum"))
            .min();
        let Some(item_off) = item else { continue };
        // Step past the `struct`/`enum` keyword itself before looking for
        // the type name.
        let kw_len = if rest[item_off..].starts_with("struct") {
            6
        } else {
            4
        };
        let after = &rest[item_off + kw_len..];
        let name_start = after
            .char_indices()
            .find(|(_, c)| c.is_alphabetic() || *c == '_')
            .map(|(i, _)| i);
        let Some(ns) = name_start else { continue };
        // Only pair the derive with an adjacent item (same attribute
        // block), not a struct hundreds of lines later.
        if item_off > 120 {
            continue;
        }
        let name: String = after[ns..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        out.push((pos, name));
    }
    out
}

// ── R3 ──────────────────────────────────────────────────────────────────

fn rule_panic_free(file: &SourceFile, sink: &mut Sink) {
    if file.kind != FileKind::Library || !R3_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for method in PANIC_METHODS {
        let hits: Vec<usize> = method_calls(&file.code, method).collect();
        for pos in hits {
            if file.in_test(pos) {
                continue;
            }
            let line = file.line_of(pos);
            sink.push(
                file,
                "panic-free",
                line,
                format!("`.{method}()` on a protocol path; return a typed error instead"),
            );
        }
    }
    for mac in PANIC_MACROS {
        let hits: Vec<usize> = macro_calls(&file.code, mac).collect();
        for pos in hits {
            if file.in_test(pos) {
                continue;
            }
            let line = file.line_of(pos);
            sink.push(
                file,
                "panic-free",
                line,
                format!("`{mac}!` on a protocol path; return a typed error instead"),
            );
        }
    }
}

// ── R4 ──────────────────────────────────────────────────────────────────

fn rule_wire_conformance(files: &[SourceFile], sink: &mut Sink) {
    let Some(wire) = files.iter().find(|f| f.rel == WIRE_RS) else {
        return; // No wire protocol in this tree (e.g. a rule fixture).
    };
    let server = files.iter().find(|f| f.rel == SERVER_RS);
    let session = files.iter().find(|f| f.rel == SESSION_RS);

    let Some(enum_span) = enum_body(&wire.code, "Request") else {
        sink.push(
            wire,
            "wire-conformance",
            1,
            "could not locate `enum Request` in wire.rs".into(),
        );
        return;
    };
    let variants = enum_variants(&wire.code[enum_span.0..enum_span.1], enum_span.0);
    let Some(impl_span) = inherent_impl(&wire.code, "Request") else {
        sink.push(
            wire,
            "wire-conformance",
            1,
            "could not locate `impl Request` in wire.rs".into(),
        );
        return;
    };
    let impl_code = &wire.code[impl_span.0..impl_span.1];

    // wire_tag: every variant mapped, every tag unique.
    let tags = fn_body(impl_code, "wire_tag")
        .map(|(a, b)| arm_tags(&impl_code[a..b]))
        .unwrap_or_default();
    let mut seen = std::collections::BTreeMap::new();
    for (name, tag) in &tags {
        if let Some(prior) = seen.insert(*tag, name.clone()) {
            sink.push(
                wire,
                "wire-conformance",
                1,
                format!("wire tag {tag} assigned to both `{prior}` and `{name}`"),
            );
        }
    }
    // required_features: which variants are feature-gated.
    let gated: Vec<String> = fn_body(impl_code, "required_features")
        .map(|(a, b)| gated_variants(&impl_code[a..b]))
        .unwrap_or_default();
    let encode_span = fn_body(impl_code, "encode");
    let decode_span = fn_body(impl_code, "decode");

    for (name, offset) in &variants {
        let line = wire.line_of(*offset);
        let tag = tags.iter().find(|(n, _)| n == name).map(|(_, t)| *t);
        let Some(tag) = tag else {
            sink.push(
                wire,
                "wire-conformance",
                line,
                format!("`Request::{name}` has no `wire_tag` arm"),
            );
            continue;
        };
        if let Some((a, b)) = encode_span {
            if !mentions_variant(&impl_code[a..b], name) {
                sink.push(
                    wire,
                    "wire-conformance",
                    line,
                    format!("`Request::{name}` is never encoded (`fn encode` has no arm)"),
                );
            }
        }
        if let Some((a, b)) = decode_span {
            if !arm_tag_present(&impl_code[a..b], tag) {
                sink.push(
                    wire,
                    "wire-conformance",
                    line,
                    format!("wire tag {tag} (`Request::{name}`) has no `fn decode` arm"),
                );
            }
        }
        if let Some(server) = server {
            if !file_mentions_variant(server, name) {
                sink.push(
                    wire,
                    "wire-conformance",
                    line,
                    format!(
                        "`Request::{name}` has no server-side handler arm in transport/server.rs"
                    ),
                );
            }
        }
        if let Some(session) = session {
            if !file_mentions_variant(session, name) {
                sink.push(
                    wire,
                    "wire-conformance",
                    line,
                    format!("`Request::{name}` has no client encoder in transport/session.rs"),
                );
            }
        }
        let is_gated = gated.iter().any(|g| g == name);
        if tag >= POST_V1_TAG_START && !is_gated {
            sink.push(
                wire,
                "wire-conformance",
                line,
                format!(
                    "post-v1 `Request::{name}` (tag {tag}) is not gated in `required_features`; \
                     an old server would mis-handle it instead of replying unknown-tag"
                ),
            );
        }
        if tag < POST_V1_TAG_START && is_gated {
            sink.push(
                wire,
                "wire-conformance",
                line,
                format!(
                    "v1 `Request::{name}` (tag {tag}) is feature-gated in `required_features`; \
                     v1 peers could no longer issue it"
                ),
            );
        }
    }
}

/// Does `file` mention `Request::Name` (word-boundary) outside tests?
fn file_mentions_variant(file: &SourceFile, name: &str) -> bool {
    let needle = format!("Request::{name}");
    let hits: Vec<usize> = find_words(&file.code, &needle).collect();
    hits.into_iter().any(|pos| !file.in_test(pos))
}

fn mentions_variant(code: &str, name: &str) -> bool {
    let needle = format!("Request::{name}");
    let hits: Vec<usize> = find_words(code, &needle).collect();
    !hits.is_empty()
}

/// Body span (inside the braces) of `enum <name> { ... }`.
fn enum_body(code: &str, name: &str) -> Option<(usize, usize)> {
    for pos in find_words(code, "enum") {
        let rest = code[pos + 4..].trim_start();
        if !rest.starts_with(name) {
            continue;
        }
        let open = code[pos..].find('{')? + pos;
        let close = matching_brace(code.as_bytes(), open)?;
        return Some((open + 1, close));
    }
    None
}

/// Span of the inherent `impl <name> { ... }` block body.
fn inherent_impl(code: &str, name: &str) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    for pos in find_words(code, "impl") {
        let rest = code[pos + 4..].trim_start();
        let Some(stripped) = rest.strip_prefix(name) else {
            continue;
        };
        // Inherent impl: next significant char after the type is `{`.
        if next_significant(stripped.as_bytes(), 0) != Some(b'{') {
            continue;
        }
        let open = code[pos..].find('{')? + pos;
        let close = matching_brace(bytes, open)?;
        return Some((open + 1, close));
    }
    None
}

/// Body span of `fn <name>(...) ... { ... }` within `code`.
fn fn_body(code: &str, name: &str) -> Option<(usize, usize)> {
    for pos in find_words(code, name) {
        if !preceded_by_word(code, pos, "fn") {
            continue;
        }
        let open = code[pos..].find('{')? + pos;
        let close = matching_brace(code.as_bytes(), open)?;
        return Some((open + 1, close));
    }
    None
}

fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Variant names (and byte offsets, relative to the whole file given
/// `base`) of an enum body.
fn enum_variants(body: &str, base: usize) -> Vec<(String, usize)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let b = bytes[i];
        if b.is_ascii_whitespace() || b == b',' {
            i += 1;
        } else if b == b'#' {
            // Skip the attribute's bracket block.
            let mut depth = 0usize;
            while i < n {
                match bytes[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((body[start..i].to_string(), base + start));
            // Consume the payload up to the next top-level comma.
            let mut depth = 0isize;
            while i < n {
                match bytes[i] {
                    b'{' | b'(' | b'[' => depth += 1,
                    b'}' | b')' | b']' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// `(variant, tag)` pairs from a `match self { Request::X(..) => 3, ... }`
/// body.
fn arm_tags(body: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for pos in find_words(body, "Request") {
        let rest = &body[pos..];
        let Some(after) = rest.strip_prefix("Request::") else {
            continue;
        };
        let name: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let Some(arrow) = rest.find("=>") else {
            continue;
        };
        let value = rest[arrow + 2..].trim_start();
        let digits: String = value.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(tag) = digits.parse::<u64>() {
            out.push((name, tag));
        }
    }
    out
}

/// Is there a `tag =>` arm for this literal tag value?
fn arm_tag_present(body: &str, tag: u64) -> bool {
    let needle = tag.to_string();
    let bytes = body.as_bytes();
    for (pos, _) in body.match_indices(&needle) {
        let before_ok = pos == 0
            || !(bytes[pos - 1].is_ascii_alphanumeric()
                || bytes[pos - 1] == b'_'
                || bytes[pos - 1] == b'.');
        let end = pos + needle.len();
        let after_ok = end >= bytes.len()
            || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_' || bytes[end] == b'.');
        if before_ok && after_ok && body[end..].trim_start().starts_with("=>") {
            return true;
        }
    }
    false
}

/// Variants whose `required_features` arm evaluates to
/// `FEATURE_VERSION_PACKED` (or any non-default feature constant).
fn gated_variants(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    for pos in find_words(body, "Request") {
        let rest = &body[pos..];
        let Some(after) = rest.strip_prefix("Request::") else {
            continue;
        };
        let name: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let Some(arrow) = rest.find("=>") else {
            continue;
        };
        let value = rest[arrow + 2..].trim_start();
        if value.starts_with("FEATURE_VERSION_") && !value.starts_with("FEATURE_VERSION_SCALAR") {
            out.push(name);
        }
    }
    out
}

// ── R5 ──────────────────────────────────────────────────────────────────

fn rule_rng_discipline(file: &SourceFile, sink: &mut Sink) {
    if file.kind != FileKind::Library || !R5_SCOPE.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for ctor in RNG_CONSTRUCTORS {
        let hits: Vec<usize> = any_calls(&file.code, ctor).collect();
        for pos in hits {
            if file.in_test(pos) {
                continue;
            }
            let line = file.line_of(pos);
            sink.push(
                file,
                "rng-discipline",
                line,
                format!(
                    "`{ctor}` constructs an RNG directly in engine/exec code; use \
                     crate::seed::derive_seeds / derived_rng so run_batch determinism holds"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lint_one(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel.into(), src.into());
        run_all(std::slice::from_ref(&f)).0
    }

    #[test]
    fn unwrap_in_protocol_code_is_flagged_and_test_code_is_not() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }";
        let findings = lint_one("crates/protocols/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "panic-free");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 0); z.unwrap_or_default(); }";
        assert!(lint_one("crates/protocols/src/a.rs", src).is_empty());
    }

    #[test]
    fn debug_assert_is_not_flagged() {
        let src = "fn f() { debug_assert!(x); debug_assert_eq!(a, b); }";
        assert!(lint_one("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn decrypt_outside_allowlist_is_flagged() {
        let src = "fn f(sk: &PrivateKey, c: &Ciphertext) { let _ = sk.decrypt(c); }";
        let findings = lint_one("crates/core/src/exec/bad.rs", src);
        assert!(findings.iter().any(|f| f.rule == "decrypt-containment"));
    }

    #[test]
    fn decrypt_in_party_rs_is_allowed() {
        let src = "fn f(sk: &PrivateKey, c: &Ciphertext) { let _ = sk.decrypt(c); }";
        assert!(lint_one("crates/protocols/src/party.rs", src).is_empty());
    }

    #[test]
    fn suppression_comment_is_honored() {
        let src = "fn f() {\n    // sknn-lint: allow(panic-free, \"structurally impossible\")\n    x.unwrap();\n}";
        let f = SourceFile::parse("crates/protocols/src/a.rs".into(), src.into());
        let (findings, suppressed) = run_all(std::slice::from_ref(&f));
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn println_in_library_code_is_flagged() {
        let src = "fn f() { println!(\"hi\"); }";
        let findings = lint_one("crates/core/src/a.rs", src);
        assert!(findings.iter().any(|f| f.rule == "secret-format"));
    }

    #[test]
    fn secret_interpolation_is_flagged() {
        let src = "fn f() { let m = format!(\"key {sk:?}\"); }";
        let findings = lint_one("crates/data/src/a.rs", src);
        assert!(findings.iter().any(|f| f.rule == "secret-format"));
    }

    #[test]
    fn seed_from_u64_in_engine_is_flagged_but_helper_calls_are_not() {
        let bad = "fn f() { let r = StdRng::seed_from_u64(7); }";
        assert_eq!(lint_one("crates/core/src/engine/a.rs", bad).len(), 1);
        let good = "fn f(rng: &mut R) { let r = crate::seed::derived_rng(crate::seed::derive_seeds(rng, 1)[0]); }";
        assert!(lint_one("crates/core/src/engine/a.rs", good).is_empty());
    }
}
