//! Workspace walking and the per-file model every rule consumes.

use crate::lexer::{self, Comment, Stripped};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of target a file belongs to, derived from its path. Rules
/// use this to scope themselves: the trust-boundary rules bind library
/// code, while test/bench/example code is exercised under a developer's
/// eyes and may decrypt or print freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` code of a library crate — the protocol trust boundary.
    Library,
    /// Integration tests (`tests/` directories).
    Test,
    /// Benchmarks (`benches/` directories).
    Bench,
    /// Examples (`examples/` directories).
    Example,
    /// Binary targets (`src/bin/`, `src/main.rs`).
    Bin,
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scan root, forward slashes.
    pub rel: String,
    /// Target classification (see [`FileKind`]).
    pub kind: FileKind,
    /// Raw file contents.
    pub raw: String,
    /// Comment/literal-stripped contents (same length as `raw`).
    pub code: String,
    /// String-literal content spans in `raw`.
    pub strings: Vec<(usize, usize)>,
    /// Line comments (suppression carriers).
    pub comments: Vec<Comment>,
    /// Byte ranges covered by `#[cfg(test)]`/`#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Inline suppressions: `(line, rule-id)`; a suppression covers its
    /// own line and the next line.
    pub suppressions: Vec<(usize, String)>,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Parses `raw` into the model.
    pub fn parse(rel: String, raw: String) -> SourceFile {
        let kind = classify(&rel);
        let Stripped {
            code,
            comments,
            strings,
        } = lexer::strip(&raw);
        let test_regions = lexer::test_regions(&code);
        let suppressions = parse_suppressions(&comments);
        let line_starts = lexer::line_starts(&code);
        SourceFile {
            rel,
            kind,
            raw,
            code,
            strings,
            comments,
            test_regions,
            suppressions,
            line_starts,
        }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        lexer::line_of(&self.line_starts, offset)
    }

    /// Is `offset` inside test-gated code? Whole files in `tests/`
    /// directories count, as do `#[cfg(test)]`/`#[test]` regions.
    pub fn in_test(&self, offset: usize) -> bool {
        self.kind == FileKind::Test
            || self
                .test_regions
                .iter()
                .any(|&(a, b)| offset >= a && offset < b)
    }

    /// Is a finding of `rule` on `line` covered by an inline
    /// `// sknn-lint: allow(rule, "reason")` on the same or previous line?
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|(l, r)| (*l == line || *l + 1 == line) && (r == rule || r == "all"))
    }
}

fn classify(rel: &str) -> FileKind {
    let in_dir = |d: &str| rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"));
    if in_dir("tests") {
        FileKind::Test
    } else if in_dir("benches") {
        FileKind::Bench
    } else if in_dir("examples") {
        FileKind::Example
    } else if in_dir("bin") || rel.ends_with("/main.rs") || rel == "main.rs" {
        FileKind::Bin
    } else {
        FileKind::Library
    }
}

/// Extracts `sknn-lint: allow(rule, "reason")` directives from line
/// comments. The reason is free text for reviewers; only the rule id is
/// machine-read. `allow(all, ...)` suppresses every rule.
fn parse_suppressions(comments: &[Comment]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for c in comments {
        let Some(marker) = c.text.find("sknn-lint:") else {
            continue;
        };
        let rest = &c.text[marker..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let body = &rest[open + "allow(".len()..];
        let end = body.find([',', ')']).unwrap_or(body.len());
        let rule = body[..end].trim().to_string();
        if !rule.is_empty() {
            out.push((c.line, rule));
        }
    }
    out
}

/// Paths never scanned: build output, VCS metadata, and the linter's own
/// rule fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", ".git"];
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Walks `root` for `.rs` files and parses each. Paths are returned
/// sorted for deterministic output.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = rel_path(root, &path);
        let raw = fs::read_to_string(&path)?;
        files.push(SourceFile::parse(rel, raw));
    }
    Ok(files)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/lib.rs"), FileKind::Library);
        assert_eq!(classify("crates/core/tests/t.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/b.rs"), FileKind::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("src/bin/tool.rs"), FileKind::Bin);
    }

    #[test]
    fn suppression_parsing_and_coverage() {
        let src = "// sknn-lint: allow(panic-free, \"reason here\")\nx.unwrap();\ny.unwrap();\n";
        let f = SourceFile::parse("crates/core/src/x.rs".into(), src.into());
        assert!(f.is_suppressed("panic-free", 1));
        assert!(f.is_suppressed("panic-free", 2));
        assert!(!f.is_suppressed("panic-free", 3));
        assert!(!f.is_suppressed("decrypt-containment", 2));
    }

    #[test]
    fn allow_all_covers_every_rule() {
        let src = "// sknn-lint: allow(all)\nx.unwrap();\n";
        let f = SourceFile::parse("crates/core/src/x.rs".into(), src.into());
        assert!(f.is_suppressed("panic-free", 2));
        assert!(f.is_suppressed("secret-format", 2));
    }
}
