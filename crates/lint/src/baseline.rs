//! The checked-in finding baseline.
//!
//! The panic-free rule starts life with hundreds of pre-existing sites;
//! failing CI on all of them would just get the rule turned off. Instead
//! a baseline file records, per `(rule, file)`, how many findings are
//! tolerated. CI fails as soon as any file *exceeds* its budget — i.e.
//! on every **new** site — while counts below budget merely report
//! burn-down slack. Counts are used instead of `file:line` entries so an
//! unrelated edit that shifts lines cannot invalidate the baseline.
//!
//! The file format is plain text, one entry per line:
//!
//! ```text
//! <rule-id> <count> <path>
//! ```
//!
//! sorted by path, `#` comments allowed — deliberately diff-friendly so
//! a PR that burns down panic sites shows up as shrinking numbers.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Per-`(rule, file)` tolerated finding counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// Result of checking findings against a baseline.
#[derive(Debug)]
pub struct Partitioned {
    /// Findings beyond any baseline budget — these fail the build.
    pub failing: Vec<Finding>,
    /// Findings covered by the baseline.
    pub baselined: Vec<Finding>,
    /// `(rule, file, budget, current)` where the tree now has *fewer*
    /// findings than budgeted: burn-down that should be locked in by
    /// regenerating the baseline.
    pub slack: Vec<(String, String, usize, usize)>,
}

impl Baseline {
    /// Parses the text format; unparseable lines are errors so a corrupt
    /// baseline cannot silently admit findings.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(count), Some(path), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<rule> <count> <path>`",
                    idx + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
            entries.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Serializes back to the text format.
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# sknn-lint baseline: tolerated pre-existing findings, per (rule, file).\n\
             # Budgets may only shrink. Regenerate with `sknn-lint --update-baseline`.\n",
        );
        for ((rule, path), count) in &self.entries {
            out.push_str(&format!("{rule} {count} {path}\n"));
        }
        out
    }

    /// Builds a baseline admitting exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Total budgeted findings.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Splits findings into failing/baselined. A file within budget has
    /// all its findings accepted; a file over budget fails with *all* its
    /// findings listed, because line-level attribution of "which one is
    /// new" is not meaningful under count-based baselining.
    pub fn partition(&self, findings: Vec<Finding>) -> Partitioned {
        let mut by_key: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
        for f in findings {
            by_key
                .entry((f.rule.to_string(), f.file.clone()))
                .or_default()
                .push(f);
        }
        let mut out = Partitioned {
            failing: Vec::new(),
            baselined: Vec::new(),
            slack: Vec::new(),
        };
        for (key, group) in &mut by_key {
            let budget = self.entries.get(key).copied().unwrap_or(0);
            if group.len() <= budget {
                if group.len() < budget {
                    out.slack
                        .push((key.0.clone(), key.1.clone(), budget, group.len()));
                }
                out.baselined.append(group);
            } else {
                out.failing.append(group);
            }
        }
        // Budgeted files that are now completely clean are also slack.
        for ((rule, path), budget) in &self.entries {
            if *budget > 0 && !by_key.contains_key(&(rule.clone(), path.clone())) {
                out.slack.push((rule.clone(), path.clone(), *budget, 0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn round_trip() {
        let fs = vec![
            finding("panic-free", "a.rs", 1),
            finding("panic-free", "a.rs", 9),
            finding("panic-free", "b.rs", 2),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.serialize()).unwrap();
        assert_eq!(b, parsed);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn within_budget_is_baselined_over_budget_fails() {
        let baseline = Baseline::parse("panic-free 2 a.rs\n").unwrap();
        let ok = baseline.partition(vec![
            finding("panic-free", "a.rs", 1),
            finding("panic-free", "a.rs", 2),
        ]);
        assert!(ok.failing.is_empty());
        assert_eq!(ok.baselined.len(), 2);

        let over = baseline.partition(vec![
            finding("panic-free", "a.rs", 1),
            finding("panic-free", "a.rs", 2),
            finding("panic-free", "a.rs", 3),
        ]);
        assert_eq!(over.failing.len(), 3);
    }

    #[test]
    fn shrink_is_reported_as_slack() {
        let baseline = Baseline::parse("panic-free 5 a.rs\npanic-free 2 gone.rs\n").unwrap();
        let p = baseline.partition(vec![finding("panic-free", "a.rs", 1)]);
        assert!(p.failing.is_empty());
        assert_eq!(p.slack.len(), 2);
    }

    #[test]
    fn unknown_rule_file_pairs_have_zero_budget() {
        let baseline = Baseline::default();
        let p = baseline.partition(vec![finding("decrypt-containment", "x.rs", 3)]);
        assert_eq!(p.failing.len(), 1);
    }

    #[test]
    fn corrupt_baseline_is_an_error() {
        assert!(Baseline::parse("panic-free nope a.rs\n").is_err());
        assert!(Baseline::parse("too few\n").is_err());
    }
}
