//! `sknn-lint` — trust-boundary leakage linter and protocol-conformance
//! static analysis for the sknn workspace.
//!
//! The security argument of the underlying paper (Elmehdwi, Samanthula,
//! Jiang — ICDE 2014) is a *static* property of this codebase: only the
//! key-holding cloud C2 may decrypt, C1 must never format or print
//! anything plaintext-derived, interactive rounds must stay inside the
//! typed wire protocol, and C1-side randomness must flow through the
//! derived-seed helpers that batch determinism rests on. This crate
//! machine-checks those properties with a dependency-free lexer and
//! token-level scanners (the build container is offline, so no `syn`).
//!
//! See [`rules`] for the five rules and DESIGN.md for the mapping from
//! each rule to the paper's threat model.
//!
//! # Usage
//!
//! ```bash
//! cargo run -p sknn-lint                     # human-readable diagnostics
//! cargo run -p sknn-lint -- --json out.json  # plus machine-readable report
//! cargo run -p sknn-lint -- --update-baseline
//! ```
//!
//! Findings can be suppressed inline, always with a reason:
//!
//! ```text
//! // sknn-lint: allow(panic-free, "batch of one returns exactly one result")
//! ```
//!
//! A suppression covers its own line and the next line.

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod source;

use rules::Finding;
use std::io;
use std::path::Path;

/// The result of scanning a tree.
#[derive(Debug)]
pub struct Analysis {
    /// Surviving findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Findings silenced by inline `allow(...)` comments.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Scans every `.rs` file under `root` and runs all rules.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let files = source::load_workspace(root)?;
    let (findings, suppressed) = rules::run_all(&files);
    Ok(Analysis {
        findings,
        suppressed,
        files_scanned: files.len(),
    })
}
