//! End-to-end rule tests against the checked-in fixture tree, plus the
//! acceptance gate that the real workspace stays clean modulo baseline.
//!
//! The fixture tree under `tests/fixtures/tree/` is a miniature workspace
//! with one deliberate violation (or deliberate negative) per rule; these
//! tests pin both that each rule fires where it must and that the
//! test-region, suppression, and allowlist escape hatches hold.

use sknn_lint::baseline::Baseline;
use sknn_lint::rules::Finding;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree")
}

fn fixture_findings() -> (Vec<Finding>, usize) {
    let analysis = sknn_lint::analyze(&fixture_root()).expect("fixture tree must scan");
    (analysis.findings, analysis.suppressed)
}

fn of_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn decrypt_in_c1_module_is_caught() {
    let (findings, _) = fixture_findings();
    let hits = of_rule(&findings, "decrypt-containment");
    assert_eq!(
        hits.len(),
        1,
        "exactly the un-suppressed C1 decrypt must fire: {hits:?}"
    );
    assert_eq!(hits[0].file, "crates/core/src/leak.rs");
    assert_eq!(hits[0].line, 6);
    assert!(hits[0].message.contains("try_decrypt_u64"));
}

#[test]
fn decrypt_is_allowed_in_keyholder_and_tests_and_under_suppression() {
    // leak.rs carries a suppressed `decrypt` and a #[cfg(test)] one;
    // paillier/src/decrypt.rs is on the allowlist. None may fire.
    let (findings, suppressed) = fixture_findings();
    let hits = of_rule(&findings, "decrypt-containment");
    assert!(
        !hits.iter().any(|f| f.file.contains("paillier")),
        "allowlisted key-holder file must not be flagged"
    );
    assert!(
        !hits.iter().any(|f| f.line > 6),
        "test/suppressed decrypts fired: {hits:?}"
    );
    assert_eq!(
        suppressed, 1,
        "the inline allow() must be counted as suppressed"
    );
}

#[test]
fn secret_format_catches_print_interpolation_and_derive_debug() {
    let (findings, _) = fixture_findings();
    let hits = of_rule(&findings, "secret-format");
    assert_eq!(
        hits.len(),
        3,
        "println + {{sk:?}} + derive(Debug): {hits:?}"
    );
    assert!(hits.iter().all(|f| f.file == "crates/core/src/fmt.rs"));
    assert!(hits.iter().any(|f| f.message.contains("println")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("secret binding `sk`")));
    assert!(hits.iter().any(|f| f.message.contains("PrivateKey")));
    // The prose mention of `sk` in a plain string and the #[cfg(test)]
    // println must not fire (they would be extra findings above).
}

#[test]
fn panic_free_flags_library_sites_but_not_test_modules() {
    let (findings, _) = fixture_findings();
    let hits = of_rule(&findings, "panic-free");
    assert_eq!(hits.len(), 2, "two non-test unwrap/expect sites: {hits:?}");
    assert!(hits
        .iter()
        .all(|f| f.file == "crates/protocols/src/proto.rs"));
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert_eq!(
        lines,
        vec![5, 9],
        "unwrap_or and the test-mod unwraps must not fire"
    );
}

#[test]
fn wire_conformance_finds_missing_handler_and_ungated_post_v1_tag() {
    let (findings, _) = fixture_findings();
    let hits = of_rule(&findings, "wire-conformance");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(
        hits.iter()
            .any(|f| f.message.contains("Shutdown") && f.message.contains("server-side handler")),
        "server.rs omits Request::Shutdown (comment mentions must not count): {hits:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.message.contains("Drain") && f.message.contains("not gated")),
        "tag 10 is post-v1 and must require a feature gate: {hits:?}"
    );
}

#[test]
fn rng_discipline_flags_direct_seeding_but_not_the_helpers() {
    let (findings, _) = fixture_findings();
    let hits = of_rule(&findings, "rng-discipline");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].file, "crates/core/src/exec/run.rs");
    assert_eq!(hits[0].line, 6);
    assert!(
        !findings.iter().any(|f| f.file.contains("engine/good.rs")),
        "derive_seeds/derived_rng callers are the approved pattern"
    );
}

#[test]
fn baseline_diffing_accepts_budget_and_fails_regressions() {
    let (findings, _) = fixture_findings();
    let panics: Vec<Finding> = findings
        .into_iter()
        .filter(|f| f.rule == "panic-free")
        .collect();
    assert_eq!(panics.len(), 2);

    // Exact budget: both sites ride the baseline.
    let exact = Baseline::parse("panic-free 2 crates/protocols/src/proto.rs").unwrap();
    let part = exact.partition(panics.clone());
    assert!(part.failing.is_empty());
    assert_eq!(part.baselined.len(), 2);
    assert!(part.slack.is_empty());

    // Over budget: count-based attribution fails the whole file.
    let tight = Baseline::parse("panic-free 1 crates/protocols/src/proto.rs").unwrap();
    let part = tight.partition(panics.clone());
    assert_eq!(part.failing.len(), 2, "a new site must fail the file");

    // Under budget: the unused allowance is reported as slack to shrink.
    let loose = Baseline::parse("panic-free 3 crates/protocols/src/proto.rs").unwrap();
    let part = loose.partition(panics);
    assert!(part.failing.is_empty());
    assert_eq!(
        part.slack,
        vec![(
            "panic-free".into(),
            "crates/protocols/src/proto.rs".into(),
            3,
            2
        )]
    );
}

#[test]
fn real_workspace_is_clean_modulo_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = sknn_lint::analyze(&root).expect("workspace must scan");
    let text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("lint-baseline.txt must be checked in");
    let baseline = Baseline::parse(&text).expect("baseline must parse");
    let part = baseline.partition(analysis.findings);
    assert!(
        part.failing.is_empty(),
        "workspace has non-baselined findings:\n{}",
        part.failing
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
