//! Fixture: server dispatch that forgot one variant. The mention of
//! Request::Shutdown in this comment must NOT count — only code does.

pub fn handle(req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Query { k } => run_query(k),
        Request::Shard(s) => accept_shard(s),
        Request::Drain => drain(),
    }
}
