//! Fixture: client session encodes every request variant.

impl Session {
    pub fn ping(&mut self) {
        self.submit(Request::Ping);
    }

    pub fn query(&mut self, k: usize) {
        self.submit(Request::Query { k });
    }

    pub fn shutdown(&mut self) {
        self.submit(Request::Shutdown);
    }

    pub fn shard(&mut self, s: u64) {
        self.submit(Request::Shard(s));
    }

    pub fn drain(&mut self) {
        self.submit(Request::Drain);
    }
}
