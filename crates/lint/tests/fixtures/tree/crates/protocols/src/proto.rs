//! Fixture: panic-free violations for baseline diffing (exactly two
//! non-test sites).

pub fn step_one(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn step_two(r: Result<u64, String>) -> u64 {
    r.expect("fixture")
}

pub fn fine(x: Option<u64>) -> u64 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::step_one(Some(3)), 3);
        let y: Option<u64> = Some(4);
        y.unwrap();
    }
}
