//! Fixture: wire protocol with two deliberate conformance holes —
//! `Shutdown` has no server handler arm, and post-v1 `Drain` (tag 10)
//! is not feature-gated.

pub enum Request {
    Ping,
    Query { k: usize },
    Shutdown,
    Shard(u64),
    Drain,
}

impl Request {
    pub fn wire_tag(&self) -> u8 {
        match self {
            Request::Ping => 1,
            Request::Query { .. } => 2,
            Request::Shutdown => 3,
            Request::Shard(..) => 9,
            Request::Drain => 10,
        }
    }

    pub fn required_features(&self) -> u32 {
        match self {
            Request::Shard(..) => FEATURE_VERSION_PACKED,
            _ => 0,
        }
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(1),
            Request::Query { k } => {
                out.push(2);
                out.extend(k.to_be_bytes());
            }
            Request::Shutdown => out.push(3),
            Request::Shard(s) => {
                out.push(9);
                out.extend(s.to_be_bytes());
            }
            Request::Drain => out.push(10),
        }
    }

    pub fn decode(tag: u8, _body: &[u8]) -> Result<Request, String> {
        match tag {
            1 => Ok(Request::Ping),
            2 => Ok(Request::Query { k: 0 }),
            3 => Ok(Request::Shutdown),
            9 => Ok(Request::Shard(0)),
            10 => Ok(Request::Drain),
            other => Err(format!("unknown tag {other}")),
        }
    }
}
