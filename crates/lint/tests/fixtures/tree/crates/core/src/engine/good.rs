//! Fixture: the approved derived-seed pattern passes rng-discipline.

pub fn scatter<R: RngCore + ?Sized>(rng: &mut R, n: usize) {
    let seeds = crate::seed::derive_seeds(rng, n);
    for &s in &seeds {
        let _rng = crate::seed::derived_rng(s);
    }
}
