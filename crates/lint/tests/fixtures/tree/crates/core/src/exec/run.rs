//! Fixture: rng-discipline violation in executor code.

pub fn scatter(seeds: &[u64]) {
    for &s in seeds {
        // VIOLATION(rng-discipline): direct RNG construction.
        let _rng = StdRng::seed_from_u64(s);
    }
}
