//! Fixture: a C1-side module that wrongly decrypts — the exact failure
//! mode the decrypt-containment rule exists to catch.

pub fn c1_peeks_at_plaintext(sk: &PrivateKey, c: &Ciphertext) -> u64 {
    // VIOLATION(decrypt-containment): C1 must never decrypt.
    sk.try_decrypt_u64(c).unwrap_or(0)
}

pub fn audited_escape_hatch(sk: &PrivateKey, c: &Ciphertext) -> BigUint {
    // sknn-lint: allow(decrypt-containment, "fixture: suppression must be honored")
    sk.decrypt(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_code_may_decrypt(sk: &PrivateKey, c: &Ciphertext) -> BigUint {
        sk.decrypt(c)
    }
}
