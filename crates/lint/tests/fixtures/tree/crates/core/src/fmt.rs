//! Fixture: secret-format violations.

pub fn chatty(blinded: u64) {
    // VIOLATION(secret-format): print macro in library code.
    println!("value = {blinded}");
}

pub fn leaky_message(sk: &PrivateKey) -> String {
    // VIOLATION(secret-format): interpolates a secret binding.
    format!("debugging with key {sk:?}")
}

// VIOLATION(secret-format): key material must not derive Debug.
#[derive(Debug, Clone)]
pub struct PrivateKey {
    lambda: BigUint,
}

pub fn harmless() -> String {
    // Not a violation: `sk` only appears in prose, not as `{sk}`.
    "the sk never leaves C2".to_string()
}

#[cfg(test)]
mod tests {
    pub fn test_may_print(sk: &super::PrivateKey) {
        println!("{sk:?}");
    }
}
