//! Fixture: the defining crate's own decrypt implementation is allowed.

impl PrivateKey {
    pub fn try_decrypt_u64(&self, c: &Ciphertext) -> Result<u64, Error> {
        let m = self.decrypt(c);
        m.to_u64().ok_or(Error::TooLarge)
    }
}
