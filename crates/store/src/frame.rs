//! The on-disk entry format of a shard log: checksummed, length-prefixed
//! frames, following the same codec discipline as the transport's wire
//! format (`sknn_protocols::transport::wire`) — explicit big-endian
//! integers, length-prefixed `BigUint`s, a hard payload bound, and typed
//! decode outcomes so no byte sequence read back from disk can panic the
//! reader.
//!
//! ```text
//! entry := kind:u8 | index:u64 | len:u32 | payload[len] | crc:u32
//! ```
//!
//! `crc` is CRC-32 (IEEE) over everything before it (`kind` through
//! `payload`). An `Append` payload is the record's ciphertexts:
//! `count:u32 | (len:u32 | be_bytes)*count`; a `Tombstone` payload is
//! empty (the index in the header *is* the tombstone).

use crate::crc::{crc32, Crc32};
use sknn_bigint::BigUint;

/// Hard bound on one entry's payload, mirroring the wire codec's frame
/// bound: a length field beyond this can only be garbage, so the reader
/// never allocates gigabytes on the say-so of a flipped bit.
pub const MAX_ENTRY_PAYLOAD: usize = 64 * 1024 * 1024;

/// Fixed bytes around every payload: kind (1) + index (8) + len (4) + crc (4).
pub const ENTRY_OVERHEAD: usize = 17;

const KIND_APPEND: u8 = 1;
const KIND_TOMBSTONE: u8 = 2;

/// One durable event in a shard's history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogEntry {
    /// Record `index` (global physical index) was appended with these
    /// attribute ciphertexts (raw Paillier residues).
    Append {
        /// The record's global physical index.
        index: u64,
        /// The record's attribute ciphertexts, in attribute order.
        attrs: Vec<BigUint>,
    },
    /// Record `index` was tombstoned.
    Tombstone {
        /// The tombstoned record's global physical index.
        index: u64,
    },
}

impl LogEntry {
    /// The global physical index this entry is about.
    pub fn index(&self) -> u64 {
        match self {
            LogEntry::Append { index, .. } | LogEntry::Tombstone { index } => *index,
        }
    }

    /// Serializes the entry (frame header, payload, checksum) into `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        let (kind, index) = match self {
            LogEntry::Append { index, .. } => (KIND_APPEND, *index),
            LogEntry::Tombstone { index } => (KIND_TOMBSTONE, *index),
        };
        buf.push(kind);
        buf.extend_from_slice(&index.to_be_bytes());
        let len_at = buf.len();
        buf.extend_from_slice(&0u32.to_be_bytes());
        if let LogEntry::Append { attrs, .. } = self {
            buf.extend_from_slice(&(attrs.len() as u32).to_be_bytes());
            for attr in attrs {
                let bytes = attr.to_bytes_be();
                buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                buf.extend_from_slice(&bytes);
            }
        }
        let payload_len = buf.len() - len_at - 4;
        buf[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_be_bytes());
        let mut crc = Crc32::new();
        crc.update(&buf[start..]);
        buf.extend_from_slice(&crc.finish().to_be_bytes());
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        let payload = match self {
            LogEntry::Append { attrs, .. } => {
                4 + attrs
                    .iter()
                    .map(|a| 4 + a.to_bytes_be().len())
                    .sum::<usize>()
            }
            LogEntry::Tombstone { .. } => 0,
        };
        ENTRY_OVERHEAD + payload
    }
}

/// The outcome of decoding one entry from the bytes at a log position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryDecode {
    /// A complete, checksummed, well-formed entry occupying `consumed`
    /// bytes.
    Entry {
        /// The decoded entry.
        entry: LogEntry,
        /// Bytes the frame occupied.
        consumed: usize,
    },
    /// The remaining bytes cannot hold the frame they claim (mid-frame
    /// end-of-file, or a length field pointing past it): the signature of
    /// a write torn by a crash. Recovery truncates here.
    Torn,
    /// A complete frame whose checksum does not match its bytes
    /// (`consumed` is the frame's full size). The caller decides: at the
    /// very tail of the file this is a torn write (page-granular I/O can
    /// persist a frame's length before its body) and is truncated; earlier
    /// it means the durable prefix is corrupt.
    BadCrc {
        /// Bytes the frame occupies.
        consumed: usize,
    },
    /// The checksum matches but the content is structurally impossible
    /// (unknown kind, payload shape inconsistent with its length). This is
    /// writer corruption, not a torn write — always fatal.
    Malformed {
        /// Bytes the frame occupies.
        consumed: usize,
        /// What was wrong.
        reason: String,
    },
}

/// Decodes the entry starting at `bytes[0]`.
pub fn decode_entry(bytes: &[u8]) -> EntryDecode {
    if bytes.len() < ENTRY_OVERHEAD {
        return EntryDecode::Torn;
    }
    let kind = bytes[0];
    let index = u64::from_be_bytes(bytes[1..9].try_into().expect("slice of 8"));
    let payload_len = u32::from_be_bytes(bytes[9..13].try_into().expect("slice of 4")) as usize;
    if payload_len > MAX_ENTRY_PAYLOAD || bytes.len() < ENTRY_OVERHEAD + payload_len {
        // Either the tail of the file ends mid-frame, or the length field
        // itself is garbage pointing past everything we have. Both read as
        // an incomplete frame from here on.
        return EntryDecode::Torn;
    }
    let consumed = ENTRY_OVERHEAD + payload_len;
    let stored_crc = u32::from_be_bytes(
        bytes[consumed - 4..consumed]
            .try_into()
            .expect("slice of 4"),
    );
    if crc32(&bytes[..consumed - 4]) != stored_crc {
        return EntryDecode::BadCrc { consumed };
    }
    let payload = &bytes[13..13 + payload_len];
    match kind {
        KIND_TOMBSTONE => {
            if !payload.is_empty() {
                return EntryDecode::Malformed {
                    consumed,
                    reason: format!("tombstone entry carries {} payload bytes", payload.len()),
                };
            }
            EntryDecode::Entry {
                entry: LogEntry::Tombstone { index },
                consumed,
            }
        }
        KIND_APPEND => match decode_append_payload(payload) {
            Ok(attrs) => EntryDecode::Entry {
                entry: LogEntry::Append { index, attrs },
                consumed,
            },
            Err(reason) => EntryDecode::Malformed { consumed, reason },
        },
        other => EntryDecode::Malformed {
            consumed,
            reason: format!("unknown entry kind {other}"),
        },
    }
}

fn decode_append_payload(payload: &[u8]) -> Result<Vec<BigUint>, String> {
    if payload.len() < 4 {
        return Err("append payload shorter than its attribute count".to_string());
    }
    let count = u32::from_be_bytes(payload[..4].try_into().expect("slice of 4")) as usize;
    let mut cursor = 4usize;
    let mut attrs = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        let Some(len_bytes) = payload.get(cursor..cursor + 4) else {
            return Err(format!("attribute {i} length field runs past the payload"));
        };
        let len = u32::from_be_bytes(len_bytes.try_into().expect("slice of 4")) as usize;
        cursor += 4;
        let Some(value) = payload.get(cursor..cursor + len) else {
            return Err(format!("attribute {i} value runs past the payload"));
        };
        attrs.push(BigUint::from_bytes_be(value));
        cursor += len;
    }
    if cursor != payload.len() {
        return Err(format!(
            "{} trailing bytes after the last attribute",
            payload.len() - cursor
        ));
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_append() -> LogEntry {
        LogEntry::Append {
            index: 42,
            attrs: vec![
                BigUint::from_u64(0xDEAD_BEEF),
                BigUint::zero(),
                BigUint::from_u64(7),
            ],
        }
    }

    #[test]
    fn append_round_trips() {
        let entry = sample_append();
        let mut buf = Vec::new();
        entry.encode_into(&mut buf);
        assert_eq!(buf.len(), entry.encoded_len());
        match decode_entry(&buf) {
            EntryDecode::Entry {
                entry: decoded,
                consumed,
            } => {
                assert_eq!(decoded, entry);
                assert_eq!(consumed, buf.len());
            }
            other => panic!("expected entry, got {other:?}"),
        }
    }

    #[test]
    fn tombstone_round_trips() {
        let entry = LogEntry::Tombstone { index: 9 };
        let mut buf = Vec::new();
        entry.encode_into(&mut buf);
        assert_eq!(buf.len(), ENTRY_OVERHEAD);
        assert_eq!(
            decode_entry(&buf),
            EntryDecode::Entry {
                entry,
                consumed: ENTRY_OVERHEAD
            }
        );
    }

    #[test]
    fn truncated_frames_read_as_torn() {
        let mut buf = Vec::new();
        sample_append().encode_into(&mut buf);
        for cut in [0, 1, ENTRY_OVERHEAD - 1, buf.len() - 1] {
            assert_eq!(decode_entry(&buf[..cut]), EntryDecode::Torn, "cut {cut}");
        }
    }

    #[test]
    fn absurd_length_field_reads_as_torn() {
        let mut buf = Vec::new();
        sample_append().encode_into(&mut buf);
        buf[9..13].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_entry(&buf), EntryDecode::Torn);
    }

    #[test]
    fn bit_flips_are_bad_crc() {
        let mut reference = Vec::new();
        sample_append().encode_into(&mut reference);
        // Flip one bit everywhere except the length field (which changes
        // the frame's claimed extent rather than its checksum).
        for byte in (0..reference.len()).filter(|b| !(9..13).contains(b)) {
            let mut buf = reference.clone();
            buf[byte] ^= 0x01;
            match decode_entry(&buf) {
                EntryDecode::BadCrc { consumed } => assert_eq!(consumed, reference.len()),
                other => panic!("flip at {byte}: expected BadCrc, got {other:?}"),
            }
        }
    }

    #[test]
    fn semantically_impossible_frames_are_malformed() {
        // A tombstone with payload bytes, correctly checksummed.
        let mut buf = vec![2u8];
        buf.extend_from_slice(&3u64.to_be_bytes());
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        assert!(matches!(decode_entry(&buf), EntryDecode::Malformed { .. }));

        // An unknown kind, correctly checksummed.
        let mut buf = vec![9u8];
        buf.extend_from_slice(&3u64.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        assert!(matches!(
            decode_entry(&buf),
            EntryDecode::Malformed { reason, .. } if reason.contains("kind 9")
        ));

        // An append whose payload is internally inconsistent.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&3u64.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&500u32.to_be_bytes()); // claims 500 attrs, none present
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        assert!(matches!(decode_entry(&buf), EntryDecode::Malformed { .. }));
    }

    #[test]
    fn consecutive_entries_decode_in_sequence() {
        let entries = vec![
            LogEntry::Append {
                index: 0,
                attrs: vec![BigUint::from_u64(1)],
            },
            LogEntry::Tombstone { index: 0 },
            LogEntry::Append {
                index: 3,
                attrs: vec![BigUint::from_u64(2)],
            },
        ];
        let mut buf = Vec::new();
        for e in &entries {
            e.encode_into(&mut buf);
        }
        let mut cursor = 0;
        let mut decoded = Vec::new();
        while cursor < buf.len() {
            match decode_entry(&buf[cursor..]) {
                EntryDecode::Entry { entry, consumed } => {
                    decoded.push(entry);
                    cursor += consumed;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(decoded, entries);
    }
}
