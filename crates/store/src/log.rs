//! One shard's append-only log file.
//!
//! ```text
//! file := magic[8] | shard:u32 | crc:u32 | entry*
//! ```
//!
//! The fixed header pins the format revision (in the magic) and the shard
//! id, checksummed so a log can never be silently attached to the wrong
//! shard slot. Everything after it is a sequence of [`LogEntry`] frames.
//!
//! # Recovery policy
//!
//! Reading back distinguishes two failure classes, mirroring the
//! transport's "malformed input is a typed error, never a panic" rule:
//!
//! * **Torn tail** — the file ends mid-frame, or the final complete frame
//!   fails its checksum (page-granular I/O can persist a frame's length
//!   before its body). This is the expected signature of a crash during an
//!   unacknowledged write; the clean prefix before it is returned and the
//!   tail is reported as dropped.
//! * **Corruption** — a frame *before* the tail fails its checksum, or a
//!   checksummed frame decodes to something structurally impossible. The
//!   durable prefix itself cannot be trusted, so the log refuses to load
//!   with [`StoreError::Corrupt`].

use crate::crc::crc32;
use crate::error::StoreError;
use crate::frame::{decode_entry, EntryDecode, LogEntry};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic + format revision of the shard-log container.
const LOG_MAGIC: &[u8; 8] = b"SKNNLOG1";

/// Header bytes before the first entry: magic (8) + shard (4) + crc (4).
pub const LOG_HEADER_LEN: u64 = 16;

/// An open shard log, positioned for appends.
#[derive(Debug)]
pub struct ShardLog {
    path: PathBuf,
    file: File,
    /// Current file length in bytes (header included).
    len: u64,
}

/// What [`ShardLog::open`] salvaged from disk.
#[derive(Debug)]
pub struct LoadedLog {
    /// The open log, truncated to its clean prefix.
    pub log: ShardLog,
    /// The entries of the clean prefix, in file order.
    pub entries: Vec<LogEntry>,
    /// Bytes dropped from the tail by torn-write recovery (0 on a clean
    /// shutdown).
    pub dropped_tail_bytes: u64,
}

fn header_bytes(shard: u32) -> [u8; LOG_HEADER_LEN as usize] {
    let mut header = [0u8; LOG_HEADER_LEN as usize];
    header[..8].copy_from_slice(LOG_MAGIC);
    header[8..12].copy_from_slice(&shard.to_be_bytes());
    let crc = crc32(&header[..12]);
    header[12..16].copy_from_slice(&crc.to_be_bytes());
    header
}

impl ShardLog {
    /// Creates a fresh log for `shard` at `path` (truncating any previous
    /// file), writes the header and syncs it to disk.
    pub fn create(path: &Path, shard: u32) -> Result<ShardLog, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "create", &e))?;
        file.write_all(&header_bytes(shard))
            .map_err(|e| StoreError::io(path, "write header", &e))?;
        file.sync_all()
            .map_err(|e| StoreError::io(path, "sync", &e))?;
        Ok(ShardLog {
            path: path.to_path_buf(),
            file,
            len: LOG_HEADER_LEN,
        })
    }

    /// Opens an existing log for `shard`, salvaging its clean prefix per
    /// the module-level recovery policy. The file is truncated to that
    /// prefix so subsequent appends extend a consistent log.
    pub fn open(path: &Path, shard: u32) -> Result<LoadedLog, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "open", &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError::io(path, "read", &e))?;

        if bytes.len() < LOG_HEADER_LEN as usize {
            // A crash during creation can leave a partial header; there can
            // be no acknowledged data in such a file, so start it over.
            let log = ShardLog::create(path, shard)?;
            let dropped = bytes.len() as u64;
            return Ok(LoadedLog {
                log,
                entries: Vec::new(),
                dropped_tail_bytes: dropped,
            });
        }
        let expected = header_bytes(shard);
        if bytes[..LOG_HEADER_LEN as usize] != expected {
            return Err(StoreError::corrupt(
                path,
                0,
                "log header does not match this shard (wrong magic, shard id or header checksum)",
            ));
        }

        let mut entries = Vec::new();
        let mut cursor = LOG_HEADER_LEN as usize;
        let mut clean_end = cursor;
        let mut dropped_tail_bytes = 0u64;
        while cursor < bytes.len() {
            match decode_entry(&bytes[cursor..]) {
                EntryDecode::Entry { entry, consumed } => {
                    entries.push(entry);
                    cursor += consumed;
                    clean_end = cursor;
                }
                EntryDecode::Torn => {
                    dropped_tail_bytes = (bytes.len() - clean_end) as u64;
                    break;
                }
                EntryDecode::BadCrc { consumed } => {
                    if cursor + consumed >= bytes.len() {
                        // Final frame: a torn write, not corruption.
                        dropped_tail_bytes = (bytes.len() - clean_end) as u64;
                        break;
                    }
                    return Err(StoreError::corrupt(
                        path,
                        cursor as u64,
                        "entry checksum mismatch in the durable prefix",
                    ));
                }
                EntryDecode::Malformed { reason, .. } => {
                    return Err(StoreError::corrupt(path, cursor as u64, reason));
                }
            }
        }

        if dropped_tail_bytes > 0 {
            file.set_len(clean_end as u64)
                .map_err(|e| StoreError::io(path, "truncate", &e))?;
            file.sync_all()
                .map_err(|e| StoreError::io(path, "sync", &e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(path, "seek", &e))?;
        Ok(LoadedLog {
            log: ShardLog {
                path: path.to_path_buf(),
                file,
                len: clean_end as u64,
            },
            entries,
            dropped_tail_bytes,
        })
    }

    /// Current file length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == LOG_HEADER_LEN
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends already-encoded entry bytes (no sync — see
    /// [`ShardLog::sync`]).
    pub fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file
            .write_all(bytes)
            .map_err(|e| StoreError::io(&self.path, "append", &e))?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Forces everything written so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(&self.path, "sync", &e))
    }

    /// Rolls the file back to `len` bytes — the write-ahead batch rollback
    /// path: a batch that failed partway is erased so it was never visible
    /// and never durable.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), StoreError> {
        self.file
            .set_len(len)
            .map_err(|e| StoreError::io(&self.path, "truncate", &e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(&self.path, "seek", &e))?;
        self.len = len;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(&self.path, "sync", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sknn_bigint::BigUint;

    fn tmp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "sknn-store-log-{}-{}-{}.log",
            std::process::id(),
            tag,
            n
        ))
    }

    fn entry(i: u64) -> LogEntry {
        LogEntry::Append {
            index: i,
            attrs: vec![BigUint::from_u64(1000 + i)],
        }
    }

    fn write_entries(log: &mut ShardLog, entries: &[LogEntry]) {
        let mut buf = Vec::new();
        for e in entries {
            e.encode_into(&mut buf);
        }
        log.append_bytes(&buf).unwrap();
        log.sync().unwrap();
    }

    #[test]
    fn create_write_reopen_round_trip() {
        let path = tmp_path("roundtrip");
        let mut log = ShardLog::create(&path, 3).unwrap();
        let entries = vec![entry(3), LogEntry::Tombstone { index: 3 }, entry(7)];
        write_entries(&mut log, &entries);
        drop(log);

        let loaded = ShardLog::open(&path, 3).unwrap();
        assert_eq!(loaded.entries, entries);
        assert_eq!(loaded.dropped_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_shard_id_refuses_to_open() {
        let path = tmp_path("wrongshard");
        drop(ShardLog::create(&path, 1).unwrap());
        assert!(matches!(
            ShardLog::open(&path, 2),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_clean_prefix() {
        let path = tmp_path("torn");
        let mut log = ShardLog::create(&path, 0).unwrap();
        write_entries(&mut log, &[entry(0), entry(1)]);
        let full = log.len();
        drop(log);

        // Cut the file mid-way through the final entry.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let loaded = ShardLog::open(&path, 0).unwrap();
        assert_eq!(loaded.entries, vec![entry(0)]);
        assert!(loaded.dropped_tail_bytes > 0);
        // The file itself was truncated: a second open is clean.
        let again = ShardLog::open(&path, 0).unwrap();
        assert_eq!(again.entries, vec![entry(0)]);
        assert_eq!(again.dropped_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_bit_flip_is_a_typed_corruption_error() {
        let path = tmp_path("flip");
        let mut log = ShardLog::create(&path, 0).unwrap();
        write_entries(&mut log, &[entry(0), entry(1), entry(2)]);
        drop(log);

        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit inside the first entry (safely past its
        // length field).
        let target = LOG_HEADER_LEN as usize + 15;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        assert!(matches!(
            ShardLog::open(&path, 0),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_header_restarts_the_log() {
        let path = tmp_path("partialheader");
        std::fs::write(&path, [0x53, 0x4B]).unwrap();
        let loaded = ShardLog::open(&path, 5).unwrap();
        assert!(loaded.entries.is_empty());
        assert_eq!(loaded.dropped_tail_bytes, 2);
        assert!(loaded.log.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_to_rolls_back_unsynced_batches() {
        let path = tmp_path("rollback");
        let mut log = ShardLog::create(&path, 0).unwrap();
        write_entries(&mut log, &[entry(0)]);
        let checkpoint = log.len();
        let mut buf = Vec::new();
        entry(1).encode_into(&mut buf);
        log.append_bytes(&buf).unwrap();
        log.truncate_to(checkpoint).unwrap();
        assert_eq!(log.len(), checkpoint);
        drop(log);
        let loaded = ShardLog::open(&path, 0).unwrap();
        assert_eq!(loaded.entries, vec![entry(0)]);
        std::fs::remove_file(&path).unwrap();
    }
}
