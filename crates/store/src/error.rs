//! Typed errors for the durable shard store.
//!
//! The store follows the workspace's error philosophy (DESIGN.md): nothing
//! read back from disk is trusted, and every malformed byte surfaces as a
//! typed [`StoreError`] — never a panic, and never silently-wrong records.

use core::fmt;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, sync, rename).
    Io {
        /// The file or directory the operation targeted.
        path: String,
        /// The failing operation, e.g. `"sync"` or `"rename"`.
        operation: &'static str,
        /// The OS error message.
        message: String,
    },
    /// A log or manifest file contains bytes that decode to something
    /// structurally impossible *before* the recoverable tail region: a
    /// checksum mismatch mid-file, an entry index out of sequence, a record
    /// with the wrong attribute count, a duplicate tombstone. Unlike a torn
    /// tail (which recovery silently truncates), corruption in the durable
    /// prefix means acknowledged data cannot be trusted, so the dataset
    /// refuses to open.
    Corrupt {
        /// The offending file.
        path: String,
        /// Byte offset of the corrupt frame or field.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The manifest disagrees with the deployment trying to open it
    /// (wrong shard count, wrong attribute count, unsupported format
    /// version, …). Field-by-field so operators can see which knob moved.
    ManifestMismatch {
        /// The manifest field that disagrees.
        field: &'static str,
        /// The value the opener expected.
        expected: u64,
        /// The value persisted in the manifest.
        found: u64,
    },
    /// The manifest was written under a different Paillier key pair than
    /// the one trying to open the dataset. Serving ciphertexts under the
    /// wrong key would decrypt to garbage downstream, so this is fatal.
    KeyMismatch {
        /// Fingerprint of the key the opener holds.
        expected: u64,
        /// Fingerprint persisted in the manifest.
        found: u64,
    },
    /// A dataset name is not usable as a directory name. Only
    /// `[A-Za-z0-9_-]` names up to 64 bytes are accepted, so a dataset
    /// name can never escape the store root or collide with the store's
    /// own files.
    InvalidDatasetName {
        /// The rejected name.
        name: String,
    },
    /// An internal consistency check failed (e.g. the caller's record count
    /// disagrees with the log's). Indicates a wiring bug, not bad media.
    Invariant {
        /// What was violated.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                path,
                operation,
                message,
            } => write!(f, "i/o error during {operation} on {path}: {message}"),
            StoreError::Corrupt {
                path,
                offset,
                reason,
            } => write!(f, "corrupt store file {path} at byte {offset}: {reason}"),
            StoreError::ManifestMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "manifest mismatch: {field} is {found} on disk but {expected} was expected"
            ),
            StoreError::KeyMismatch { expected, found } => write!(
                f,
                "dataset was persisted under key fingerprint {found:#018x}, \
                 refusing to open under {expected:#018x}"
            ),
            StoreError::InvalidDatasetName { name } => write!(
                f,
                "dataset name {name:?} is not a valid store directory name \
                 (use [A-Za-z0-9_-], at most 64 bytes)"
            ),
            StoreError::Invariant { message } => write!(f, "store invariant violated: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    pub(crate) fn io(path: &std::path::Path, operation: &'static str, e: &std::io::Error) -> Self {
        StoreError::Io {
            path: path.display().to_string(),
            operation,
            message: e.to_string(),
        }
    }

    pub(crate) fn corrupt(path: &std::path::Path, offset: u64, reason: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.display().to_string(),
            offset,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn display_names_the_failure() {
        let e = StoreError::io(
            Path::new("/tmp/x"),
            "sync",
            &std::io::Error::other("disk gone"),
        );
        assert!(e.to_string().contains("sync"));
        assert!(e.to_string().contains("/tmp/x"));

        let e = StoreError::corrupt(Path::new("shard-0.log"), 17, "bad checksum");
        assert!(e.to_string().contains("byte 17"));

        let e = StoreError::KeyMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("refusing"));

        let e = StoreError::ManifestMismatch {
            field: "shards",
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("shards"));

        let e = StoreError::InvalidDatasetName {
            name: "../x".into(),
        };
        assert!(e.to_string().contains("../x"));

        let e = StoreError::Invariant {
            message: "count drift".into(),
        };
        assert!(e.to_string().contains("count drift"));
    }
}
