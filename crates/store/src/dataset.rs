//! A dataset's durable state: one directory holding a manifest and one
//! append-only log per shard.
//!
//! ```text
//! <dir>/manifest.bin      — identity + generation + stable-index map
//! <dir>/shard-<s>.g<G>.log — shard s's log for generation G
//! ```
//!
//! # Consistency model
//!
//! Appends are written in global physical-index order, record `i` to shard
//! `i mod S`, and synced before the caller sees success ("durable before
//! visible"). A crash can therefore leave the shards unevenly long, but
//! only in one shape: some shards carry a few *unacknowledged* records
//! beyond the longest prefix every shard agrees on. Recovery computes that
//! consistent prefix `n = min_s(s + c_s·S)` (where `c_s` is shard `s`'s
//! salvaged append count), drops everything beyond it, and — because the
//! dropped entries are still physically present in the logs — rewrites the
//! dataset to a fresh generation so the next open starts from a clean
//! history. Records below `n` were all individually synced, so nothing
//! acknowledged is ever lost.
//!
//! # Generations
//!
//! Log files are named by generation and only ever referenced through the
//! generation recorded in the manifest. Any multi-file rewrite (recovery,
//! compaction) writes generation `G+1` completely, syncs it, then commits
//! by atomically replacing the manifest; a crash anywhere in between
//! leaves the old generation fully intact.

use crate::error::StoreError;
use crate::frame::{LogEntry, MAX_ENTRY_PAYLOAD};
use crate::log::{ShardLog, LOG_HEADER_LEN};
use crate::manifest::{DatasetMeta, Manifest, DROPPED};
use sknn_bigint::BigUint;
use std::path::{Path, PathBuf};

/// File name of the per-dataset manifest inside its directory.
pub const MANIFEST_FILE: &str = "manifest.bin";

fn log_path(dir: &Path, shard: u32, generation: u64) -> PathBuf {
    dir.join(format!("shard-{shard}.g{generation}.log"))
}

/// Checks that `name` is usable as a store directory name: 1–64 bytes of
/// `[A-Za-z0-9_-]`, so a dataset name can never traverse out of the store
/// root or collide with the store's own files.
pub fn validate_dataset_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidDatasetName { name: name.into() })
    }
}

/// What recovery had to do to bring a dataset back to a consistent state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Torn-tail bytes truncated across all shard logs.
    pub dropped_tail_bytes: u64,
    /// Unacknowledged records beyond the consistent prefix that were
    /// discarded.
    pub dropped_records: u64,
    /// Tombstones referring to discarded records, discarded with them.
    pub dropped_tombstones: u64,
    /// Whether recovery rewrote the dataset to a fresh generation.
    pub rewrote_generation: bool,
}

impl RecoveryReport {
    /// True when the dataset loaded without salvage of any kind.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryReport::default()
    }
}

/// What a compaction accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records that survived (all live).
    pub live_records: u64,
    /// Tombstoned records whose bytes were reclaimed.
    pub reclaimed_records: u64,
    /// Shard logs rewritten (compaction rewrites every shard: live
    /// records are renumbered densely, which also rebalances skewed
    /// per-shard live counts back to round-robin-even).
    pub shards_rewritten: u32,
    /// Total log bytes before compaction.
    pub bytes_before: u64,
    /// Total log bytes after compaction.
    pub bytes_after: u64,
    /// The generation the dataset now lives at.
    pub generation: u64,
}

/// The durable backing of one dataset: its manifest, its shard logs, and
/// an in-memory mirror of the record table they encode.
#[derive(Debug)]
pub struct DatasetStore {
    dir: PathBuf,
    manifest: Manifest,
    logs: Vec<ShardLog>,
    /// Records by physical index; tombstoned records keep their slot until
    /// compaction.
    records: Vec<Vec<BigUint>>,
    live: Vec<bool>,
    /// Set when a failed batch could not be rolled back: disk and memory
    /// may disagree, so every further mutation is refused.
    poisoned: bool,
}

impl DatasetStore {
    /// Creates a fresh dataset at `dir` (the directory is created if
    /// needed; it must not already contain a dataset).
    pub fn create(dir: &Path, meta: DatasetMeta) -> Result<DatasetStore, StoreError> {
        if meta.shards == 0 {
            return Err(StoreError::Invariant {
                message: "a dataset needs at least one shard".into(),
            });
        }
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, "create dir", &e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(StoreError::Invariant {
                message: format!("{} already holds a dataset", dir.display()),
            });
        }
        let manifest = Manifest::new(meta);
        let mut logs = Vec::with_capacity(meta.shards as usize);
        for s in 0..meta.shards {
            logs.push(ShardLog::create(&log_path(dir, s, 0), s)?);
        }
        manifest.store(&manifest_path)?;
        Ok(DatasetStore {
            dir: dir.to_path_buf(),
            manifest,
            logs,
            records: Vec::new(),
            live: Vec::new(),
            poisoned: false,
        })
    }

    /// Opens the dataset at `dir`, refusing if its manifest disagrees with
    /// `expected` (wrong key pair, shard count, attribute count, value
    /// bound or distance bits), and recovering per the module-level
    /// policy.
    pub fn open(
        dir: &Path,
        expected: &DatasetMeta,
    ) -> Result<(DatasetStore, RecoveryReport), StoreError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = Manifest::load(&manifest_path)?;
        let found = &manifest.meta;
        if found.key_fingerprint != expected.key_fingerprint {
            return Err(StoreError::KeyMismatch {
                expected: expected.key_fingerprint,
                found: found.key_fingerprint,
            });
        }
        for (field, exp, got) in [
            (
                "shards",
                u64::from(expected.shards),
                u64::from(found.shards),
            ),
            (
                "attributes",
                u64::from(expected.attributes),
                u64::from(found.attributes),
            ),
            ("value_bound", expected.value_bound, found.value_bound),
            (
                "distance_bits",
                u64::from(expected.distance_bits),
                u64::from(found.distance_bits),
            ),
        ] {
            if exp != got {
                return Err(StoreError::ManifestMismatch {
                    field,
                    expected: exp,
                    found: got,
                });
            }
        }
        Self::open_with_manifest(dir, manifest)
    }

    fn open_with_manifest(
        dir: &Path,
        manifest: Manifest,
    ) -> Result<(DatasetStore, RecoveryReport), StoreError> {
        let shards = manifest.meta.shards;
        let stride = u64::from(shards);
        let mut report = RecoveryReport::default();

        // Salvage each shard log's clean prefix and validate its local
        // entry sequence.
        let mut logs = Vec::with_capacity(shards as usize);
        let mut shard_appends: Vec<Vec<Vec<BigUint>>> = Vec::with_capacity(shards as usize);
        let mut shard_tombstones: Vec<Vec<u64>> = Vec::with_capacity(shards as usize);
        for s in 0..shards {
            let path = log_path(dir, s, manifest.generation);
            let loaded = ShardLog::open(&path, s)?;
            report.dropped_tail_bytes += loaded.dropped_tail_bytes;
            let mut appends = Vec::new();
            let mut tombstones = Vec::new();
            for (ordinal, entry) in loaded.entries.into_iter().enumerate() {
                match entry {
                    LogEntry::Append { index, attrs } => {
                        let expected_index = u64::from(s) + appends.len() as u64 * stride;
                        if index != expected_index {
                            return Err(StoreError::corrupt(
                                &path,
                                0,
                                format!(
                                    "entry {ordinal}: append for index {index} where \
                                     {expected_index} was expected (out-of-sequence log)"
                                ),
                            ));
                        }
                        if attrs.len() as u64 != u64::from(manifest.meta.attributes) {
                            return Err(StoreError::corrupt(
                                &path,
                                0,
                                format!(
                                    "entry {ordinal}: record {index} has {} attributes, \
                                     manifest says {}",
                                    attrs.len(),
                                    manifest.meta.attributes
                                ),
                            ));
                        }
                        appends.push(attrs);
                    }
                    LogEntry::Tombstone { index } => {
                        if index % stride != u64::from(s) {
                            return Err(StoreError::corrupt(
                                &path,
                                0,
                                format!(
                                    "entry {ordinal}: tombstone for index {index} does not \
                                     belong to shard {s}"
                                ),
                            ));
                        }
                        if (index - u64::from(s)) / stride >= appends.len() as u64 {
                            return Err(StoreError::corrupt(
                                &path,
                                0,
                                format!(
                                    "entry {ordinal}: tombstone for index {index} precedes \
                                     its append"
                                ),
                            ));
                        }
                        tombstones.push(index);
                    }
                }
            }
            shard_appends.push(appends);
            shard_tombstones.push(tombstones);
            logs.push(loaded.log);
        }

        // The consistent prefix: the largest n such that every index
        // below n survived in its shard. Anything beyond n was never
        // acknowledged (appends sync shard by shard before success).
        let n = (0..shards)
            .map(|s| u64::from(s) + shard_appends[s as usize].len() as u64 * stride)
            .min()
            .unwrap_or(0);
        for (s, appends) in shard_appends.iter_mut().enumerate() {
            while !appends.is_empty() && s as u64 + (appends.len() as u64 - 1) * stride >= n {
                appends.pop();
                report.dropped_records += 1;
            }
        }

        // Assemble the physical record table and apply tombstones.
        let mut records: Vec<Vec<BigUint>> = vec![Vec::new(); n as usize];
        for (s, appends) in shard_appends.into_iter().enumerate() {
            for (k, attrs) in appends.into_iter().enumerate() {
                records[s + k * stride as usize] = attrs;
            }
        }
        let mut live = vec![true; n as usize];
        for (s, tombstones) in shard_tombstones.into_iter().enumerate() {
            for index in tombstones {
                if index >= n {
                    report.dropped_tombstones += 1;
                    continue;
                }
                if !live[index as usize] {
                    return Err(StoreError::corrupt(
                        &log_path(dir, s as u32, manifest.generation),
                        0,
                        format!("duplicate tombstone for index {index}"),
                    ));
                }
                live[index as usize] = false;
            }
        }

        let mut store = DatasetStore {
            dir: dir.to_path_buf(),
            manifest,
            logs,
            records,
            live,
            poisoned: false,
        };

        // Dropped entries are still physically present in the logs; left
        // alone they would collide with re-appended indices on the next
        // open. Rewriting to a fresh generation makes recovery idempotent.
        if report.dropped_records > 0 || report.dropped_tombstones > 0 {
            let mut manifest = store.manifest.clone();
            manifest.generation += 1;
            store.commit_generation(manifest)?;
            report.rewrote_generation = true;
        }
        Ok((store, report))
    }

    /// Writes the current in-memory state as `manifest.generation`'s log
    /// files, commits the manifest atomically, then removes the previous
    /// generation. The manifest rename is the single commit point: a crash
    /// before it leaves the old generation authoritative and intact.
    fn commit_generation(&mut self, manifest: Manifest) -> Result<(), StoreError> {
        let old_generation = self.manifest.generation;
        let generation = manifest.generation;
        let shards = manifest.meta.shards;
        let stride = shards as usize;
        let mut logs = Vec::with_capacity(stride);
        let mut buffers: Vec<Vec<u8>> = vec![Vec::new(); stride];
        for (index, attrs) in self.records.iter().enumerate() {
            LogEntry::Append {
                index: index as u64,
                attrs: attrs.clone(),
            }
            .encode_into(&mut buffers[index % stride]);
        }
        for (index, live) in self.live.iter().enumerate() {
            if !live {
                LogEntry::Tombstone {
                    index: index as u64,
                }
                .encode_into(&mut buffers[index % stride]);
            }
        }
        for (s, buffer) in buffers.iter().enumerate() {
            let mut log = ShardLog::create(&log_path(&self.dir, s as u32, generation), s as u32)?;
            log.append_bytes(buffer)?;
            log.sync()?;
            logs.push(log);
        }
        manifest.store(&self.dir.join(MANIFEST_FILE))?;
        // Committed: the old generation is garbage now. Removal is
        // best-effort — a leftover file is ignored by every future open.
        if old_generation != generation {
            for s in 0..shards {
                let _ = std::fs::remove_file(log_path(&self.dir, s, old_generation));
            }
        }
        self.manifest = manifest;
        self.logs = logs;
        Ok(())
    }

    fn check_poisoned(&self) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Invariant {
                message: "store is poisoned: a failed batch could not be rolled back; \
                          reopen the dataset to recover"
                    .into(),
            });
        }
        Ok(())
    }

    /// The dataset's identity parameters.
    pub fn meta(&self) -> &DatasetMeta {
        &self.manifest.meta
    }

    /// The dataset's manifest (generation, compaction count, index map).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The dataset's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records by physical index (tombstoned slots included).
    pub fn records(&self) -> &[Vec<BigUint>] {
        &self.records
    }

    /// Liveness by physical index.
    pub fn live(&self) -> &[bool] {
        &self.live
    }

    /// Total physical records (live + tombstoned).
    pub fn record_count(&self) -> u64 {
        self.records.len() as u64
    }

    /// Live records.
    pub fn live_count(&self) -> u64 {
        self.live.iter().filter(|&&l| l).count() as u64
    }

    /// Owner-visible stable indices allocated so far.
    pub fn stable_count(&self) -> u64 {
        self.manifest.stable_count(self.record_count())
    }

    /// Resolves an owner-stable index to its current physical index
    /// (`None` once compaction has reclaimed the record).
    pub fn stable_to_physical(&self, stable: u64) -> Result<Option<u64>, StoreError> {
        self.manifest
            .stable_to_physical(stable, self.record_count())
    }

    /// The stable index of physical record `p` appended after the last
    /// compaction.
    pub fn stable_of_new_physical(&self, p: u64) -> u64 {
        self.manifest.stable_of_new_physical(p)
    }

    /// Sum of all shard-log file sizes in bytes.
    pub fn total_log_bytes(&self) -> u64 {
        self.logs.iter().map(|l| l.len()).sum()
    }

    /// Durably appends a batch of records starting at physical index
    /// `base` (which must equal the current record count — a staleness
    /// guard for write-ahead callers). All-or-nothing: on any failure the
    /// touched logs are rolled back to their pre-batch lengths and the
    /// in-memory table is untouched.
    pub fn append_batch(&mut self, base: u64, batch: &[Vec<BigUint>]) -> Result<(), StoreError> {
        self.check_poisoned()?;
        if base != self.record_count() {
            return Err(StoreError::Invariant {
                message: format!(
                    "append batch bases at {base} but the store holds {} records",
                    self.record_count()
                ),
            });
        }
        let stride = self.logs.len();
        let mut buffers: Vec<Vec<u8>> = vec![Vec::new(); stride];
        for (offset, attrs) in batch.iter().enumerate() {
            if attrs.len() as u64 != u64::from(self.manifest.meta.attributes) {
                return Err(StoreError::Invariant {
                    message: format!(
                        "record {offset} of the batch has {} attributes, dataset has {}",
                        attrs.len(),
                        self.manifest.meta.attributes
                    ),
                });
            }
            let index = base + offset as u64;
            let entry = LogEntry::Append {
                index,
                attrs: attrs.clone(),
            };
            if entry.encoded_len() > MAX_ENTRY_PAYLOAD {
                return Err(StoreError::Invariant {
                    message: format!("record {offset} of the batch exceeds the entry size bound"),
                });
            }
            entry.encode_into(&mut buffers[(index as usize) % stride]);
        }

        let checkpoints: Vec<u64> = self.logs.iter().map(ShardLog::len).collect();
        let mut failure = None;
        'write: {
            for (s, buffer) in buffers.iter().enumerate() {
                if buffer.is_empty() {
                    continue;
                }
                if let Err(e) = self.logs[s].append_bytes(buffer) {
                    failure = Some(e);
                    break 'write;
                }
            }
            for (s, buffer) in buffers.iter().enumerate() {
                if buffer.is_empty() {
                    continue;
                }
                if let Err(e) = self.logs[s].sync() {
                    failure = Some(e);
                    break 'write;
                }
            }
        }
        if let Some(error) = failure {
            for (s, &checkpoint) in checkpoints.iter().enumerate() {
                if self.logs[s].len() != checkpoint && self.logs[s].truncate_to(checkpoint).is_err()
                {
                    // Disk now disagrees with memory in a way we cannot
                    // see through; refuse further writes until a reopen
                    // re-derives the truth from the logs.
                    self.poisoned = true;
                }
            }
            return Err(error);
        }

        // Durable on every shard — now it may become visible.
        for attrs in batch {
            self.records.push(attrs.clone());
            self.live.push(true);
        }
        Ok(())
    }

    /// Durably tombstones the record at physical index `physical`.
    pub fn tombstone(&mut self, physical: u64) -> Result<(), StoreError> {
        self.check_poisoned()?;
        if physical >= self.record_count() {
            return Err(StoreError::Invariant {
                message: format!(
                    "tombstone for physical index {physical} but the store holds {} records",
                    self.record_count()
                ),
            });
        }
        if !self.live[physical as usize] {
            return Err(StoreError::Invariant {
                message: format!("physical index {physical} is already tombstoned"),
            });
        }
        let s = (physical as usize) % self.logs.len();
        let checkpoint = self.logs[s].len();
        let mut buffer = Vec::new();
        LogEntry::Tombstone { index: physical }.encode_into(&mut buffer);
        let written = self.logs[s]
            .append_bytes(&buffer)
            .and_then(|()| self.logs[s].sync());
        if let Err(error) = written {
            if self.logs[s].len() != checkpoint && self.logs[s].truncate_to(checkpoint).is_err() {
                self.poisoned = true;
            }
            return Err(error);
        }
        self.live[physical as usize] = false;
        Ok(())
    }

    /// Forces all shard logs onto stable storage. Appends and tombstones
    /// already sync individually, so this is a belt-and-braces barrier for
    /// callers about to report durability externally.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.check_poisoned()?;
        for log in &mut self.logs {
            log.sync()?;
        }
        Ok(())
    }

    /// Rewrites the dataset without its tombstoned records: live records
    /// are renumbered densely in physical order (preserving relative
    /// order, so query results are unchanged), per-shard live counts
    /// rebalance to round-robin-even, and the owner's stable indices keep
    /// resolving through the composed index map committed in the new
    /// manifest.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        self.check_poisoned()?;
        let bytes_before = self.total_log_bytes();
        let old_count = self.record_count();
        let old_stable_count = self.stable_count();

        // Dense renumbering of the survivors, in physical order.
        let mut new_of_physical = vec![DROPPED; old_count as usize];
        let mut next = 0u64;
        for (p, &live) in self.live.iter().enumerate() {
            if live {
                new_of_physical[p] = next;
                next += 1;
            }
        }
        // Compose the stable map: every stable index ever issued resolves
        // through the old mapping, then through the renumbering.
        let mut index_map = Vec::with_capacity(old_stable_count as usize);
        for stable in 0..old_stable_count {
            let physical = self.manifest.stable_to_physical(stable, old_count)?;
            index_map.push(match physical {
                Some(p) if self.live[p as usize] => new_of_physical[p as usize],
                _ => DROPPED,
            });
        }

        let mut manifest = self.manifest.clone();
        manifest.generation += 1;
        manifest.compactions += 1;
        manifest.stable_base = old_stable_count;
        manifest.physical_base = next;
        manifest.index_map = index_map;

        let mut survivors = Vec::with_capacity(next as usize);
        for (p, attrs) in self.records.iter().enumerate() {
            if self.live[p] {
                survivors.push(attrs.clone());
            }
        }
        self.records = survivors;
        self.live = vec![true; next as usize];
        self.commit_generation(manifest)?;

        Ok(CompactionReport {
            live_records: next,
            reclaimed_records: old_count - next,
            shards_rewritten: self.manifest.meta.shards,
            bytes_before,
            bytes_after: self.total_log_bytes(),
            generation: self.manifest.generation,
        })
    }

    /// Whether the logs carry no entries at all.
    pub fn is_empty(&self) -> bool {
        self.logs.iter().all(ShardLog::is_empty) && self.records.is_empty()
    }
}

/// Bytes of header overhead per shard log (exposed for sizing estimates in
/// benches).
pub const PER_SHARD_OVERHEAD: u64 = LOG_HEADER_LEN;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sknn-store-ds-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(shards: u32) -> DatasetMeta {
        DatasetMeta {
            key_fingerprint: 0x1234_5678_9ABC_DEF0,
            shards,
            attributes: 2,
            value_bound: 100,
            distance_bits: 16,
        }
    }

    fn record(seed: u64) -> Vec<BigUint> {
        vec![
            BigUint::from_u64(seed.wrapping_mul(0x9E37_79B9) | 1),
            BigUint::from_u64(seed + 7),
        ]
    }

    fn records(range: std::ops::Range<u64>) -> Vec<Vec<BigUint>> {
        range.map(record).collect()
    }

    #[test]
    fn create_append_tombstone_reopen_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut store = DatasetStore::create(&dir, meta(3)).unwrap();
        store.append_batch(0, &records(0..7)).unwrap();
        store.tombstone(2).unwrap();
        store.tombstone(5).unwrap();
        store.flush().unwrap();
        let expected_records = store.records().to_vec();
        let expected_live = store.live().to_vec();
        drop(store);

        let (reloaded, report) = DatasetStore::open(&dir, &meta(3)).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(reloaded.records(), expected_records.as_slice());
        assert_eq!(reloaded.live(), expected_live.as_slice());
        assert_eq!(reloaded.record_count(), 7);
        assert_eq!(reloaded.live_count(), 5);
        assert_eq!(reloaded.stable_count(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_key_and_wrong_meta_refuse_to_open() {
        let dir = tmp_dir("identity");
        drop(DatasetStore::create(&dir, meta(2)).unwrap());

        let mut wrong_key = meta(2);
        wrong_key.key_fingerprint ^= 1;
        assert!(matches!(
            DatasetStore::open(&dir, &wrong_key),
            Err(StoreError::KeyMismatch { .. })
        ));

        let wrong_shards = meta(3);
        assert!(matches!(
            DatasetStore::open(&dir, &wrong_shards),
            Err(StoreError::ManifestMismatch {
                field: "shards",
                ..
            })
        ));

        let mut wrong_bits = meta(2);
        wrong_bits.distance_bits = 40;
        assert!(matches!(
            DatasetStore::open(&dir, &wrong_bits),
            Err(StoreError::ManifestMismatch {
                field: "distance_bits",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_shard_tail_drops_the_overhang_and_rewrites() {
        let dir = tmp_dir("overhang");
        let mut store = DatasetStore::create(&dir, meta(2)).unwrap();
        store.append_batch(0, &records(0..6)).unwrap();
        drop(store);

        // Cut shard 1's log back to one complete append (index 1) plus a
        // few torn bytes of the next: indices 3 and 5 are lost, so the
        // consistent prefix is 3 records and shard 0's surviving append
        // for index 4 becomes unacknowledged overhang.
        let first = LogEntry::Append {
            index: 1,
            attrs: record(1),
        };
        let shard1 = log_path(&dir, 1, 0);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&shard1)
            .unwrap();
        f.set_len(LOG_HEADER_LEN + first.encoded_len() as u64 + 3)
            .unwrap();
        drop(f);

        let (reloaded, report) = DatasetStore::open(&dir, &meta(2)).unwrap();
        assert_eq!(reloaded.record_count(), 3);
        assert!(report.dropped_tail_bytes > 0);
        assert_eq!(report.dropped_records, 1, "{report:?}");
        assert!(report.rewrote_generation);
        assert_eq!(reloaded.manifest().generation, 1);
        assert_eq!(reloaded.records()[..3], records(0..3)[..]);
        drop(reloaded);

        // Recovery is idempotent: the rewritten dataset opens cleanly and
        // indices 3.. can be reused without colliding with stale entries.
        let (mut again, report) = DatasetStore::open(&dir, &meta(2)).unwrap();
        assert!(report.is_clean(), "{report:?}");
        again.append_batch(3, &records(40..42)).unwrap();
        drop(again);
        let (final_store, report) = DatasetStore::open(&dir, &meta(2)).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(final_store.record_count(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tombstone_beyond_the_prefix_is_dropped() {
        let dir = tmp_dir("staletomb");
        let mut store = DatasetStore::create(&dir, meta(2)).unwrap();
        store.append_batch(0, &records(0..4)).unwrap();
        store.tombstone(3).unwrap();
        drop(store);

        // Tear index 2 (shard 0's second append): the consistent prefix
        // shrinks to 2 records, so shard 1's append for index 3 — and the
        // tombstone referring to it — sit beyond the prefix.
        let shard0 = log_path(&dir, 0, 0);
        let len = std::fs::metadata(&shard0).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&shard0)
            .unwrap();
        f.set_len(len - 1).unwrap();
        drop(f);

        let (reloaded, report) = DatasetStore::open(&dir, &meta(2)).unwrap();
        assert_eq!(reloaded.record_count(), 2);
        assert_eq!(report.dropped_records, 1, "{report:?}");
        assert_eq!(report.dropped_tombstones, 1);
        assert!(report.rewrote_generation);
        assert_eq!(reloaded.live_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_batch_rejects_stale_base_and_bad_arity() {
        let dir = tmp_dir("batchguards");
        let mut store = DatasetStore::create(&dir, meta(2)).unwrap();
        store.append_batch(0, &records(0..2)).unwrap();
        assert!(matches!(
            store.append_batch(1, &records(2..3)),
            Err(StoreError::Invariant { .. })
        ));
        assert!(matches!(
            store.append_batch(2, &[vec![BigUint::from_u64(1)]]),
            Err(StoreError::Invariant { .. })
        ));
        // Neither rejected batch changed anything.
        assert_eq!(store.record_count(), 2);
        drop(store);
        let (reloaded, report) = DatasetStore::open(&dir, &meta(2)).unwrap();
        assert!(report.is_clean());
        assert_eq!(reloaded.record_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reclaims_renumbers_and_keeps_stable_indices() {
        let dir = tmp_dir("compact");
        let mut store = DatasetStore::create(&dir, meta(2)).unwrap();
        store.append_batch(0, &records(0..6)).unwrap();
        // Skew the shards: kill three of shard 0's records (0, 2, 4).
        for p in [0, 2, 4] {
            store.tombstone(p).unwrap();
        }
        let report = store.compact().unwrap();
        assert_eq!(report.live_records, 3);
        assert_eq!(report.reclaimed_records, 3);
        assert_eq!(report.shards_rewritten, 2);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(report.generation, 1);

        // Survivors 1, 3, 5 renumbered densely to 0, 1, 2 — order kept.
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.records()[0], record(1));
        assert_eq!(store.records()[1], record(3));
        assert_eq!(store.records()[2], record(5));

        // The owner's stable indices still resolve.
        assert_eq!(store.stable_to_physical(0).unwrap(), None);
        assert_eq!(store.stable_to_physical(1).unwrap(), Some(0));
        assert_eq!(store.stable_to_physical(3).unwrap(), Some(1));
        assert_eq!(store.stable_to_physical(5).unwrap(), Some(2));

        // New appends allocate fresh stable indices past everything old.
        store.append_batch(3, &records(10..11)).unwrap();
        assert_eq!(store.stable_of_new_physical(3), 6);
        assert_eq!(store.stable_to_physical(6).unwrap(), Some(3));
        drop(store);

        // All of it survives a reload — including the composed map.
        let (reloaded, report) = DatasetStore::open(&dir, &meta(2)).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(reloaded.record_count(), 4);
        assert_eq!(reloaded.manifest().compactions, 1);
        assert_eq!(reloaded.stable_to_physical(1).unwrap(), Some(0));
        assert_eq!(reloaded.stable_to_physical(0).unwrap(), None);
        assert_eq!(reloaded.stable_to_physical(6).unwrap(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_compaction_composes_the_index_map() {
        let dir = tmp_dir("compact2");
        let mut store = DatasetStore::create(&dir, meta(2)).unwrap();
        store.append_batch(0, &records(0..4)).unwrap();
        store.tombstone(1).unwrap();
        store.compact().unwrap(); // stable 0,2,3 -> physical 0,1,2
        store.append_batch(3, &records(100..102)).unwrap(); // stable 4,5
        store.tombstone(0).unwrap(); // kills stable 0
        store.compact().unwrap(); // stable 2,3,4,5 -> physical 0,1,2,3
        assert_eq!(store.stable_to_physical(0).unwrap(), None);
        assert_eq!(store.stable_to_physical(1).unwrap(), None);
        assert_eq!(store.stable_to_physical(2).unwrap(), Some(0));
        assert_eq!(store.stable_to_physical(3).unwrap(), Some(1));
        assert_eq!(store.stable_to_physical(4).unwrap(), Some(2));
        assert_eq!(store.stable_to_physical(5).unwrap(), Some(3));
        assert_eq!(store.records()[0], record(2));
        assert_eq!(store.records()[3], record(101));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dataset_name_validation() {
        assert!(validate_dataset_name("hospital-beds_2024").is_ok());
        for bad in ["", "../escape", "a b", "naïve", &"x".repeat(65)] {
            assert!(
                matches!(
                    validate_dataset_name(bad),
                    Err(StoreError::InvalidDatasetName { .. })
                ),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn compaction_crash_before_manifest_commit_is_invisible() {
        let dir = tmp_dir("crashwindow");
        let mut store = DatasetStore::create(&dir, meta(2)).unwrap();
        store.append_batch(0, &records(0..4)).unwrap();
        store.tombstone(0).unwrap();
        drop(store);

        // Simulate a crash mid-compaction: generation-1 logs exist but the
        // manifest still points at generation 0.
        drop(ShardLog::create(&log_path(&dir, 0, 1), 0).unwrap());
        drop(ShardLog::create(&log_path(&dir, 1, 1), 1).unwrap());

        let (reloaded, report) = DatasetStore::open(&dir, &meta(2)).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(reloaded.record_count(), 4);
        assert_eq!(reloaded.manifest().generation, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
