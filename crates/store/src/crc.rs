//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the frame
//! checksum of the on-disk log format.
//!
//! The workspace builds offline, so the checksum is implemented here the
//! same way the bigint layer is: from scratch, with the standard test
//! vectors pinned. A table-driven byte-at-a-time implementation is ample —
//! log I/O is dominated by ciphertext bytes, not by checksumming.

/// The 256-entry lookup table for the reflected IEEE polynomial, built once
/// at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// A streaming CRC-32 computation.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            let index = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[index];
        }
    }

    /// Finishes the computation.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_test_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"split across several updates";
        let mut crc = Crc32::new();
        for chunk in data.chunks(5) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0u8..=255).collect();
        let reference = crc32(&data);
        for byte in [0usize, 17, 255] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
