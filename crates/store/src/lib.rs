//! # sknn-store — the durable encrypted shard store
//!
//! C1's disk layer: per-shard append-only ciphertext logs with
//! checksummed, length-prefixed frames, a per-dataset manifest that pins
//! the deployment identity (Paillier key fingerprint, shard count,
//! attribute count, value bound, distance bits), crash-safe recovery with
//! torn-tail truncation, and compaction that reclaims tombstoned records
//! while keeping the data owner's record indices stable.
//!
//! The crate deliberately knows nothing about Paillier or the SkNN
//! protocols: records are opaque `Vec<BigUint>` ciphertext residues. The
//! core crate converts to and from its `Ciphertext` wrapper at the
//! boundary, and the manifest's key fingerprint (a 64-bit FNV-1a of the
//! modulus bytes, [`key_fingerprint`]) is how a reload refuses to marry
//! logs to the wrong key pair.
//!
//! ## Leakage
//!
//! Everything this crate persists — ciphertexts, record order, shard
//! placement, tombstone positions, compaction history — is exactly the
//! state C1 already holds in memory in the two-cloud model. Durability
//! adds no new leakage beyond timing: the logs additionally reveal *when*
//! records were appended or tombstoned relative to each other, which the
//! in-memory protocol already reveals to C1 as it executes the updates.
//!
//! See `DESIGN.md` ("Durable storage & compaction") for the full on-disk
//! format and the recovery invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod dataset;
mod error;
mod frame;
mod log;
mod manifest;

pub use crc::{crc32, Crc32};
pub use dataset::{
    validate_dataset_name, CompactionReport, DatasetStore, RecoveryReport, MANIFEST_FILE,
    PER_SHARD_OVERHEAD,
};
pub use error::StoreError;
pub use frame::{decode_entry, EntryDecode, LogEntry, ENTRY_OVERHEAD, MAX_ENTRY_PAYLOAD};
pub use log::{LoadedLog, ShardLog, LOG_HEADER_LEN};
pub use manifest::{DatasetMeta, Manifest, DROPPED, MANIFEST_VERSION};

/// 64-bit FNV-1a over a Paillier modulus's big-endian bytes — the
/// fingerprint a dataset manifest pins so a reload under a different key
/// pair fails fast with [`StoreError::KeyMismatch`] instead of serving
/// ciphertexts that would decrypt to garbage.
pub fn key_fingerprint(modulus_be: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in modulus_be {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_matches_the_fnv1a_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(key_fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_fingerprint(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(key_fingerprint(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_distinguishes_nearby_moduli() {
        let a = key_fingerprint(&[0x80, 0x00, 0x01]);
        let b = key_fingerprint(&[0x80, 0x00, 0x02]);
        assert_ne!(a, b);
    }
}
