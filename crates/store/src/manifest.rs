//! The per-dataset manifest: the small, atomically-replaced file that says
//! what the shard logs *mean*.
//!
//! ```text
//! file := magic[8] | body | crc:u32
//! body := version:u32 | key_fingerprint:u64 | shards:u32 | attributes:u32
//!       | value_bound:u64 | distance_bits:u32 | generation:u64
//!       | compactions:u64 | stable_base:u64 | physical_base:u64
//!       | index_map[stable_base]:u64
//! ```
//!
//! Everything is big-endian, matching the wire codec. The manifest is the
//! **commit point** for every multi-file transition (creation, compaction):
//! it is written to a temporary file, synced, then renamed over the old
//! manifest — readers see either the old state or the new state, never a
//! mix, because log files are only referenced through the `generation`
//! recorded here and a new generation's logs are fully written and synced
//! *before* the rename.
//!
//! The owner-facing **stable index map** also lives here: `index_map[s]`
//! is the physical index of stable record `s` for `s < stable_base`
//! (`u64::MAX` once the record has been tombstoned and compacted away);
//! stable indices at or past `stable_base` were allocated after the last
//! compaction and map linearly onto physical indices at or past
//! `physical_base`, so ordinary appends never rewrite the manifest.

use crate::crc::crc32;
use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MANIFEST_MAGIC: &[u8; 8] = b"SKNNMAN1";

/// The manifest format revision this crate reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Physical-index sentinel for "tombstoned and reclaimed by compaction".
pub const DROPPED: u64 = u64::MAX;

/// The deployment-identity half of the manifest: the parameters a dataset
/// was persisted under, all of which must match before a reload is allowed
/// to serve records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetMeta {
    /// FNV-1a fingerprint of the Paillier modulus `N` (see
    /// [`crate::key_fingerprint`]).
    pub key_fingerprint: u64,
    /// Number of round-robin shards the records are partitioned into.
    pub shards: u32,
    /// Attributes per record (`m`).
    pub attributes: u32,
    /// The per-attribute value bound registration derived `l` from.
    pub value_bound: u64,
    /// The distance-domain bit length (`l`) secure queries default to.
    pub distance_bits: u32,
}

/// The full persisted manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Deployment identity (key fingerprint, sharding, query domain).
    pub meta: DatasetMeta,
    /// Log-file generation the manifest commits to (bumped by compaction).
    pub generation: u64,
    /// How many compactions this dataset has been through.
    pub compactions: u64,
    /// Stable indices below this are resolved through
    /// [`Manifest::index_map`]; at or above it they map linearly onto
    /// physicals starting at [`Manifest::physical_base`].
    pub stable_base: u64,
    /// Physical index the linear region starts at (the live record count
    /// at the last compaction; 0 before any compaction).
    pub physical_base: u64,
    /// `index_map[s]` = physical index of stable record `s < stable_base`,
    /// or [`DROPPED`].
    pub index_map: Vec<u64>,
}

impl Manifest {
    /// A fresh manifest for a newly created dataset: generation 0, an
    /// empty map (every stable index is linear).
    pub fn new(meta: DatasetMeta) -> Self {
        Manifest {
            meta,
            generation: 0,
            compactions: 0,
            stable_base: 0,
            physical_base: 0,
            index_map: Vec::new(),
        }
    }

    /// The number of stable (owner-visible) indices ever allocated, given
    /// the current physical record count.
    pub fn stable_count(&self, physical_records: u64) -> u64 {
        self.stable_base + physical_records.saturating_sub(self.physical_base)
    }

    /// Resolves the owner's stable index `s` to the current physical
    /// index: `Ok(Some(p))` for a present record, `Ok(None)` for one
    /// reclaimed by compaction, `Err` for an index never allocated.
    pub fn stable_to_physical(
        &self,
        s: u64,
        physical_records: u64,
    ) -> Result<Option<u64>, StoreError> {
        if s < self.stable_base {
            let p = self.index_map[s as usize];
            return Ok(if p == DROPPED { None } else { Some(p) });
        }
        if s < self.stable_count(physical_records) {
            return Ok(Some(self.physical_base + (s - self.stable_base)));
        }
        Err(StoreError::Invariant {
            message: format!(
                "stable index {s} was never allocated (only {} exist)",
                self.stable_count(physical_records)
            ),
        })
    }

    /// The stable index of a physical record appended after the last
    /// compaction (physical indices below `physical_base` are only
    /// reachable through the map).
    pub fn stable_of_new_physical(&self, p: u64) -> u64 {
        debug_assert!(p >= self.physical_base);
        self.stable_base + (p - self.physical_base)
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.index_map.len() * 8 + 12);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.extend_from_slice(&MANIFEST_VERSION.to_be_bytes());
        buf.extend_from_slice(&self.meta.key_fingerprint.to_be_bytes());
        buf.extend_from_slice(&self.meta.shards.to_be_bytes());
        buf.extend_from_slice(&self.meta.attributes.to_be_bytes());
        buf.extend_from_slice(&self.meta.value_bound.to_be_bytes());
        buf.extend_from_slice(&self.meta.distance_bits.to_be_bytes());
        buf.extend_from_slice(&self.generation.to_be_bytes());
        buf.extend_from_slice(&self.compactions.to_be_bytes());
        buf.extend_from_slice(&self.stable_base.to_be_bytes());
        buf.extend_from_slice(&self.physical_base.to_be_bytes());
        debug_assert_eq!(self.index_map.len() as u64, self.stable_base);
        for &p in &self.index_map {
            buf.extend_from_slice(&p.to_be_bytes());
        }
        let crc = crc32(&buf[8..]);
        buf.extend_from_slice(&crc.to_be_bytes());
        buf
    }

    fn decode(path: &Path, bytes: &[u8]) -> Result<Manifest, StoreError> {
        if bytes.len() < 8 || &bytes[..8] != MANIFEST_MAGIC {
            return Err(StoreError::corrupt(path, 0, "not a manifest (bad magic)"));
        }
        if bytes.len() < 8 + 4 {
            return Err(StoreError::corrupt(path, 8, "manifest truncated"));
        }
        let stored_crc =
            u32::from_be_bytes(bytes[bytes.len() - 4..].try_into().expect("slice of 4"));
        if crc32(&bytes[8..bytes.len() - 4]) != stored_crc {
            return Err(StoreError::corrupt(path, 8, "manifest checksum mismatch"));
        }
        let mut cursor = Cursor {
            bytes: &bytes[..bytes.len() - 4],
            at: 8,
            path,
        };
        let version = cursor.u32()?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::ManifestMismatch {
                field: "format version",
                expected: u64::from(MANIFEST_VERSION),
                found: u64::from(version),
            });
        }
        let key_fingerprint = cursor.u64()?;
        let shards = cursor.u32()?;
        let attributes = cursor.u32()?;
        let value_bound = cursor.u64()?;
        let distance_bits = cursor.u32()?;
        let generation = cursor.u64()?;
        let compactions = cursor.u64()?;
        let stable_base = cursor.u64()?;
        let physical_base = cursor.u64()?;
        let remaining = cursor.bytes.len() - cursor.at;
        if remaining as u64 != stable_base.saturating_mul(8) {
            return Err(StoreError::corrupt(
                path,
                cursor.at as u64,
                format!(
                    "index map holds {} bytes but stable_base {stable_base} needs {}",
                    remaining,
                    stable_base.saturating_mul(8)
                ),
            ));
        }
        let mut index_map = Vec::with_capacity(stable_base as usize);
        for _ in 0..stable_base {
            index_map.push(cursor.u64()?);
        }
        if shards == 0 {
            return Err(StoreError::corrupt(path, 0, "manifest claims zero shards"));
        }
        Ok(Manifest {
            meta: DatasetMeta {
                key_fingerprint,
                shards,
                attributes,
                value_bound,
                distance_bits,
            },
            generation,
            compactions,
            stable_base,
            physical_base,
            index_map,
        })
    }

    /// Loads and verifies the manifest at `path`.
    pub fn load(path: &Path) -> Result<Manifest, StoreError> {
        let mut file = File::open(path).map_err(|e| StoreError::io(path, "open", &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError::io(path, "read", &e))?;
        Manifest::decode(path, &bytes)
    }

    /// Atomically replaces the manifest at `path`: writes to
    /// `<path>.tmp`, syncs, renames over `path`, then syncs the parent
    /// directory so the rename itself is durable.
    pub fn store(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| StoreError::io(&tmp, "create", &e))?;
            file.write_all(&self.encode())
                .map_err(|e| StoreError::io(&tmp, "write", &e))?;
            file.sync_all()
                .map_err(|e| StoreError::io(&tmp, "sync", &e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| StoreError::io(path, "rename", &e))?;
        if let Some(dir) = path.parent() {
            // Persist the rename in the directory itself; best-effort on
            // platforms where directories cannot be opened as files.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
    path: &'a Path,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        let Some(slice) = self.bytes.get(self.at..self.at + n) else {
            return Err(StoreError::corrupt(
                self.path,
                self.at as u64,
                "manifest field runs past the file",
            ));
        };
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("slice of 4"),
        ))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("slice of 8"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "sknn-store-manifest-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    fn meta() -> DatasetMeta {
        DatasetMeta {
            key_fingerprint: 0xFEED_FACE_CAFE_BEEF,
            shards: 4,
            attributes: 6,
            value_bound: 200,
            distance_bits: 17,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp_path("roundtrip");
        let manifest = Manifest {
            meta: meta(),
            generation: 3,
            compactions: 2,
            stable_base: 5,
            physical_base: 3,
            index_map: vec![0, DROPPED, 1, DROPPED, 2],
        };
        manifest.store(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), manifest);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_a_typed_error() {
        let path = tmp_path("flip");
        Manifest::new(meta()).store(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Manifest::load(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_version_is_a_manifest_mismatch() {
        let path = tmp_path("version");
        Manifest::new(meta()).store(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Bump the version field and re-checksum so only the version is
        // "wrong".
        bytes[8..12].copy_from_slice(&99u32.to_be_bytes());
        let body_end = bytes.len() - 4;
        let crc = crate::crc::crc32(&bytes[8..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_be_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Manifest::load(&path),
            Err(StoreError::ManifestMismatch {
                field: "format version",
                ..
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stable_index_resolution() {
        let manifest = Manifest {
            meta: meta(),
            generation: 1,
            compactions: 1,
            stable_base: 4,
            physical_base: 2,
            index_map: vec![0, DROPPED, 1, DROPPED],
        };
        // 6 physical records: 2 survivors + 4 appended after compaction.
        assert_eq!(manifest.stable_count(6), 8);
        assert_eq!(manifest.stable_to_physical(0, 6).unwrap(), Some(0));
        assert_eq!(manifest.stable_to_physical(1, 6).unwrap(), None);
        assert_eq!(manifest.stable_to_physical(2, 6).unwrap(), Some(1));
        assert_eq!(manifest.stable_to_physical(4, 6).unwrap(), Some(2));
        assert_eq!(manifest.stable_to_physical(7, 6).unwrap(), Some(5));
        assert!(manifest.stable_to_physical(8, 6).is_err());
        assert_eq!(manifest.stable_of_new_physical(2), 4);
        assert_eq!(manifest.stable_of_new_physical(5), 7);
    }
}
