//! Plaintext k-nearest-neighbor baseline.
//!
//! Used as (a) the ground truth every secure protocol's output is checked
//! against, and (b) the "no cryptography" performance baseline in the
//! benchmark harness.

use crate::Table;

/// Squared Euclidean distance between two equal-length attribute vectors.
///
/// # Panics
/// Panics when the vectors have different lengths.
pub fn squared_euclidean_distance(a: &[u64], b: &[u64]) -> u128 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x.abs_diff(y) as u128;
            d * d
        })
        .sum()
}

/// Returns the indices of the `k` records of `table` closest to `query` in
/// squared Euclidean distance, ties broken by record index (the same
/// tie-breaking rule the basic protocol's key holder uses).
pub fn plain_knn(table: &Table, query: &[u64], k: usize) -> Vec<usize> {
    let mut scored: Vec<(u128, usize)> = table
        .records()
        .iter()
        .enumerate()
        .map(|(i, r)| (squared_euclidean_distance(r, query), i))
        .collect();
    scored.sort();
    scored.into_iter().take(k).map(|(_, i)| i).collect()
}

/// Like [`plain_knn`] but returns the records themselves.
pub fn plain_knn_records(table: &Table, query: &[u64], k: usize) -> Vec<Vec<u64>> {
    plain_knn(table, query, k)
        .into_iter()
        .map(|i| table.record(i).to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heart_disease_table() -> Table {
        // Table 1 of the paper (without the record-id column).
        Table::new(vec![
            vec![63, 1, 1, 145, 233, 1, 3, 0, 6, 0],
            vec![56, 1, 3, 130, 256, 1, 2, 1, 6, 2],
            vec![57, 0, 3, 140, 241, 0, 2, 0, 7, 1],
            vec![59, 1, 4, 144, 200, 1, 2, 2, 6, 3],
            vec![55, 0, 4, 128, 205, 0, 2, 1, 7, 3],
            vec![77, 1, 4, 125, 304, 0, 1, 3, 3, 4],
        ])
        .unwrap()
    }

    #[test]
    fn distance_basics() {
        assert_eq!(squared_euclidean_distance(&[0, 0], &[3, 4]), 25);
        assert_eq!(squared_euclidean_distance(&[7, 7], &[7, 7]), 0);
        // Order does not matter.
        assert_eq!(
            squared_euclidean_distance(&[1, 200], &[100, 2]),
            squared_euclidean_distance(&[100, 2], &[1, 200])
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_panic() {
        squared_euclidean_distance(&[1], &[1, 2]);
    }

    #[test]
    fn paper_example_1_two_nearest_neighbors() {
        // Example 1: for Q = ⟨58, 1, 4, 133, 196, 1, 2, 1, 6⟩ (plus the num
        // attribute treated as unknown → the paper works on the first 9
        // attributes plus a padding), the two nearest records are t4 and t5.
        // We reproduce it on all 10 attributes with num = 0 for the query,
        // which preserves the result set reported in the paper (t5 is in fact
        // slightly closer than t4: 127 vs 148).
        let table = heart_disease_table();
        let query = [58, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let knn = plain_knn(&table, &query, 2);
        assert_eq!(knn, vec![4, 3], "t4 and t5 are the two nearest neighbors");
    }

    #[test]
    fn example_3_distance_value() {
        // |t1 − t2|² = 813 as computed in Example 3.
        let table = heart_disease_table();
        assert_eq!(
            squared_euclidean_distance(table.record(0), table.record(1)),
            813
        );
    }

    #[test]
    fn k_equal_n_returns_everything() {
        let table = heart_disease_table();
        let query = [58, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let all = plain_knn(&table, &query, 6);
        assert_eq!(all.len(), 6);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_by_index() {
        // Distances are 9, 1, 9, 1: the two ties are ordered by record index.
        let table = Table::new(vec![vec![5], vec![1], vec![5], vec![1]]).unwrap();
        assert_eq!(plain_knn(&table, &[2], 4), vec![1, 3, 0, 2]);
    }

    #[test]
    fn records_variant_returns_rows() {
        let table = heart_disease_table();
        let query = [58, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let recs = plain_knn_records(&table, &query, 1);
        assert_eq!(recs, vec![table.record(4).to_vec()]);
    }
}
