//! Record-parallel execution.
//!
//! Section 5.3 of the paper observes that "the computations involved on each
//! data record are independent of others" and demonstrates a ~6× speedup of
//! SkNN_b with a 6-thread OpenMP build (Figure 3). This module provides the
//! equivalent building block: a deterministic, ordered parallel map over
//! records using scoped OS threads. Both protocols use it for their per-record
//! stages (SSED, and SBD in SkNN_m).

/// How many worker threads the per-record stages may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Number of worker threads; `1` means fully serial execution.
    pub threads: usize,
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        ParallelismConfig { threads: 1 }
    }
}

impl ParallelismConfig {
    /// A serial configuration (the paper's baseline measurements).
    pub fn serial() -> Self {
        ParallelismConfig { threads: 1 }
    }

    /// A configuration matching the paper's 6-thread OpenMP experiments.
    pub fn paper_parallel() -> Self {
        ParallelismConfig { threads: 6 }
    }

    /// Uses every logical CPU reported by the operating system.
    pub fn all_cores() -> Self {
        ParallelismConfig {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// A counting admission gate bounding how many queries run concurrently
/// per engine (see [`crate::FederationConfig::admission`]).
///
/// The async transports already shed *per-connection* overload through the
/// backpressure ladder (window → queue → typed `Overloaded`); this gate
/// bounds the *aggregate* work entering the reactor, so a steady-state
/// workload queues at the front door instead of tripping the per-session
/// ladder. Callers block in [`Admission::acquire`] until a permit frees —
/// admission is flow control, not failure, so there is no typed-error
/// timeout here: a parked query is making scheduling progress, unlike a
/// request wedged behind a dead peer.
///
/// Built on `std::sync` because the workspace `parking_lot` shim carries no
/// `Condvar`; poisoning is ignored with the repo-wide
/// `unwrap_or_else(|e| e.into_inner())` idiom.
pub(crate) struct Admission {
    permits: std::sync::Mutex<usize>,
    freed: std::sync::Condvar,
}

impl Admission {
    /// A gate with `limit` concurrent permits (clamped to ≥ 1; a limit of
    /// zero is expressed by not constructing a gate at all).
    pub(crate) fn new(limit: usize) -> Admission {
        Admission {
            permits: std::sync::Mutex::new(limit.max(1)),
            freed: std::sync::Condvar::new(),
        }
    }

    /// Blocks until a permit is available and takes it. The permit returns
    /// to the gate when the guard drops, panic or not.
    pub(crate) fn acquire(&self) -> AdmissionPermit<'_> {
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        while *permits == 0 {
            permits = self.freed.wait(permits).unwrap_or_else(|e| e.into_inner());
        }
        *permits -= 1;
        AdmissionPermit { gate: self }
    }
}

/// RAII permit from [`Admission::acquire`].
pub(crate) struct AdmissionPermit<'a> {
    gate: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut permits = self.gate.permits.lock().unwrap_or_else(|e| e.into_inner());
        *permits += 1;
        self.gate.freed.notify_one();
    }
}

/// Maps `f` over `items`, preserving order, using up to `threads` scoped
/// worker threads. With `threads <= 1` the map runs on the calling thread.
///
/// `f` receives the item index so callers can derive deterministic per-item
/// randomness regardless of which thread executes the item.
pub(crate) fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let threads = threads.min(items.len());
    let chunk_size = items.len().div_ceil(threads);

    let mut chunk_outputs: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (chunk_index, chunk) in items.chunks(chunk_size).enumerate() {
            let f = &f;
            let base = chunk_index * chunk_size;
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(offset, item)| f(base + offset, item))
                    .collect::<Vec<R>>()
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(chunk) => chunk_outputs.push(chunk),
                // Re-raise the worker's own payload rather than wrapping it:
                // typed panics (the session layer's `SessionFailure`) must
                // stay downcastable at the containment boundary in
                // `crate::exec::run_contained`.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    chunk_outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(1, &items, |i, &x| x * x + i as u64);
        for threads in [2usize, 3, 6, 16, 200] {
            let parallel = parallel_map(threads, &items, |i, &x| x * x + i as u64);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn order_is_preserved() {
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let items: Vec<u64> = (0..32).collect();
        let distinct_threads = AtomicUsize::new(0);
        let ids = parking_lot::Mutex::new(std::collections::HashSet::new());
        parallel_map(4, &items, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            if ids.lock().insert(std::thread::current().id()) {
                distinct_threads.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(distinct_threads.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn admission_bounds_concurrency_and_releases_on_drop() {
        let gate = std::sync::Arc::new(Admission::new(2));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let live = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (gate, peak, live) = (gate.clone(), peak.clone(), live.clone());
            handles.push(std::thread::spawn(move || {
                let _permit = gate.acquire();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate admitted too many");
        // All permits returned: two more acquires succeed without blocking.
        let _a = gate.acquire();
        let _b = gate.acquire();
    }

    #[test]
    fn admission_zero_limit_clamps_to_one() {
        let gate = Admission::new(0);
        let _permit = gate.acquire();
    }

    #[test]
    fn config_constructors() {
        assert_eq!(ParallelismConfig::default().threads, 1);
        assert_eq!(ParallelismConfig::serial().threads, 1);
        assert_eq!(ParallelismConfig::paper_parallel().threads, 6);
        assert!(ParallelismConfig::all_cores().threads >= 1);
    }
}
