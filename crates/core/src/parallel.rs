//! Record-parallel execution.
//!
//! Section 5.3 of the paper observes that "the computations involved on each
//! data record are independent of others" and demonstrates a ~6× speedup of
//! SkNN_b with a 6-thread OpenMP build (Figure 3). This module provides the
//! equivalent building block: a deterministic, ordered parallel map over
//! records using scoped OS threads. Both protocols use it for their per-record
//! stages (SSED, and SBD in SkNN_m).

/// How many worker threads the per-record stages may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Number of worker threads; `1` means fully serial execution.
    pub threads: usize,
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        ParallelismConfig { threads: 1 }
    }
}

impl ParallelismConfig {
    /// A serial configuration (the paper's baseline measurements).
    pub fn serial() -> Self {
        ParallelismConfig { threads: 1 }
    }

    /// A configuration matching the paper's 6-thread OpenMP experiments.
    pub fn paper_parallel() -> Self {
        ParallelismConfig { threads: 6 }
    }

    /// Uses every logical CPU reported by the operating system.
    pub fn all_cores() -> Self {
        ParallelismConfig {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// Maps `f` over `items`, preserving order, using up to `threads` scoped
/// worker threads. With `threads <= 1` the map runs on the calling thread.
///
/// `f` receives the item index so callers can derive deterministic per-item
/// randomness regardless of which thread executes the item.
pub(crate) fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let threads = threads.min(items.len());
    let chunk_size = items.len().div_ceil(threads);

    let mut chunk_outputs: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (chunk_index, chunk) in items.chunks(chunk_size).enumerate() {
            let f = &f;
            let base = chunk_index * chunk_size;
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(offset, item)| f(base + offset, item))
                    .collect::<Vec<R>>()
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(chunk) => chunk_outputs.push(chunk),
                // Re-raise the worker's own payload rather than wrapping it:
                // typed panics (the session layer's `SessionFailure`) must
                // stay downcastable at the containment boundary in
                // `crate::exec::run_contained`.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    chunk_outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(1, &items, |i, &x| x * x + i as u64);
        for threads in [2usize, 3, 6, 16, 200] {
            let parallel = parallel_map(threads, &items, |i, &x| x * x + i as u64);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn order_is_preserved() {
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let items: Vec<u64> = (0..32).collect();
        let distinct_threads = AtomicUsize::new(0);
        let ids = parking_lot::Mutex::new(std::collections::HashSet::new());
        parallel_map(4, &items, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            if ids.lock().insert(std::thread::current().id()) {
                distinct_threads.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(distinct_threads.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn config_constructors() {
        assert_eq!(ParallelismConfig::default().threads, 1);
        assert_eq!(ParallelismConfig::serial().threads, 1);
        assert_eq!(ParallelismConfig::paper_parallel().threads, 6);
        assert!(ParallelismConfig::all_cores().threads >= 1);
    }
}
