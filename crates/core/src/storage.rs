//! The pluggable durable backing of an [`crate::EncryptedDatabase`].
//!
//! By default a database is purely in-memory — the paper's model, and
//! zero-cost. Attaching a [`BackingStore`]
//! ([`crate::EncryptedDatabase::with_backing`]) makes every update
//! **write-ahead**: the store must acknowledge durability before the
//! update becomes visible to queries, so anything a query can return has
//! already survived a crash.
//!
//! [`DatasetStoreHandle`] is the one provided implementation, wrapping the
//! `sknn-store` crate's [`DatasetStore`] (per-shard append-only ciphertext
//! logs with crash-safe recovery and compaction). The trait exists so
//! embedders can substitute their own durability layer — a remote blob
//! store, a database — without the engine caring.

use sknn_bigint::BigUint;
use sknn_store::{DatasetStore, StoreError};
use std::sync::Mutex;

/// A durability sink for one dataset's updates. Implementations must make
/// each call durable before returning `Ok` — the caller applies the update
/// to the queryable in-memory state only afterwards.
///
/// Records cross this boundary as raw Paillier ciphertext residues
/// (`Vec<BigUint>`, one per attribute), so the storage layer needs no
/// knowledge of keys or protocols.
pub trait BackingStore: std::fmt::Debug + Send + Sync {
    /// Durably appends `records` starting at physical index `base` (which
    /// the store should verify against its own record count to catch
    /// divergence). All-or-nothing: a failed batch must leave the store as
    /// if the call never happened.
    fn append(&self, base: u64, records: &[Vec<BigUint>]) -> Result<(), StoreError>;

    /// Durably tombstones the record at physical index `physical`.
    fn tombstone(&self, physical: u64) -> Result<(), StoreError>;

    /// Forces everything acknowledged so far onto stable storage.
    fn flush(&self) -> Result<(), StoreError>;
}

/// [`BackingStore`] over the `sknn-store` durable shard store, shareable
/// between an [`crate::EncryptedDatabase`] (which writes through the trait)
/// and the engine (which reaches the full [`DatasetStore`] API — stable
/// index resolution, compaction — through [`DatasetStoreHandle::with`]).
#[derive(Debug)]
pub struct DatasetStoreHandle {
    inner: Mutex<DatasetStore>,
}

impl DatasetStoreHandle {
    /// Wraps an open dataset store.
    pub fn new(store: DatasetStore) -> Self {
        DatasetStoreHandle {
            inner: Mutex::new(store),
        }
    }

    /// Runs `f` with exclusive access to the underlying store.
    pub fn with<T>(&self, f: impl FnOnce(&mut DatasetStore) -> T) -> T {
        let mut guard = self.inner.lock().unwrap_or_else(|poisoned| {
            // A panic while holding the lock cannot leave the store
            // half-written (every mutation is applied to memory only after
            // disk acknowledged), so the data is safe to keep using.
            poisoned.into_inner()
        });
        f(&mut guard)
    }
}

impl BackingStore for DatasetStoreHandle {
    fn append(&self, base: u64, records: &[Vec<BigUint>]) -> Result<(), StoreError> {
        self.with(|store| store.append_batch(base, records))
    }

    fn tombstone(&self, physical: u64) -> Result<(), StoreError> {
        self.with(|store| store.tombstone(physical))
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.with(DatasetStore::flush)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sknn_store::DatasetMeta;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "sknn-core-storage-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    #[test]
    fn handle_routes_the_trait_calls_through_the_store() {
        let dir = tmp_dir("route");
        let meta = DatasetMeta {
            key_fingerprint: 7,
            shards: 2,
            attributes: 1,
            value_bound: 9,
            distance_bits: 8,
        };
        let handle = DatasetStoreHandle::new(DatasetStore::create(&dir, meta).unwrap());
        let store: &dyn BackingStore = &handle;
        store
            .append(0, &[vec![BigUint::from_u64(5)], vec![BigUint::from_u64(6)]])
            .unwrap();
        store.tombstone(1).unwrap();
        store.flush().unwrap();
        assert_eq!(handle.with(|s| s.record_count()), 2);
        assert_eq!(handle.with(|s| s.live_count()), 1);
        // Stale base is a typed error through the trait, too.
        assert!(store.append(0, &[vec![BigUint::from_u64(8)]]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
