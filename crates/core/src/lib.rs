//! # sknn-core
//!
//! The two secure k-nearest-neighbor query protocols of
//! *Elmehdwi, Samanthula, Jiang — "Secure k-Nearest Neighbor Query over
//! Encrypted Data in Outsourced Environments"* (ICDE 2014), together with the
//! roles that run them:
//!
//! * **Alice** — the [`DataOwner`]: encrypts her table attribute-wise and
//!   outsources the ciphertexts to cloud `C1` and the secret key to cloud `C2`.
//! * **Bob** — the [`QueryUser`]: encrypts his query record, sends it to `C1`,
//!   and later combines the masks from `C1` with the masked plaintexts
//!   decrypted by `C2` to learn exactly the k nearest records and nothing else.
//! * **C1** — [`CloudC1`]: stores the encrypted database and drives the query
//!   protocols, interacting with `C2` only through the
//!   [`sknn_protocols::KeyHolder`] interface.
//! * **C2** — any [`sknn_protocols::KeyHolder`] implementation
//!   (in-process or channel-based with traffic accounting).
//!
//! Two protocols are provided:
//!
//! * [`CloudC1::process_basic`] — **SkNN_b** (Algorithm 5): fast, but reveals
//!   the plaintext distances to `C2` and the data-access pattern to both
//!   clouds.
//! * [`CloudC1::process_secure`] — **SkNN_m** (Algorithm 6): reveals nothing
//!   beyond ciphertexts and protocol-mandated random values; distances stay
//!   encrypted, the winning records are selected obliviously, and access
//!   patterns are hidden.
//!
//! The [`SknnEngine`] façade ([`engine`]) wires all four roles together for
//! a deployment: it hosts many named encrypted datasets behind one pair of
//! clouds, validates queries up front through a typed [`QueryBuilder`],
//! runs [batches](SknnEngine::run_batch) of them over one shared key-holder
//! session, and accepts dynamic appends and tombstones. The single-table
//! [`Federation`] façade is kept as a thin shim over a one-dataset engine
//! for existing embedders.
//!
//! ```
//! use rand::SeedableRng;
//! use sknn_core::{SknnEngine, FederationConfig, Table};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let table = Table::new(vec![
//!     vec![63, 1, 145],
//!     vec![56, 1, 130],
//!     vec![57, 0, 140],
//!     vec![55, 0, 128],
//! ]).unwrap();
//!
//! let config = FederationConfig { key_bits: 128, ..Default::default() };
//! let mut engine = SknnEngine::setup(config, &mut rng).unwrap();
//! engine.register_dataset("heart", &table, &mut rng).unwrap();
//! let outcome = engine
//!     .query("heart")
//!     .k(2)
//!     .point(&[58, 1, 133])
//!     .run(&mut rng)
//!     .unwrap();
//! assert_eq!(outcome.result.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod config;
mod encdb;
pub mod engine;
mod error;
pub mod exec;
mod federation;
mod meter;
mod parallel;
mod plain;
mod profile;
mod retry;
mod roles;
mod seed;
mod sknn_basic;
mod sknn_secure;
pub mod storage;
mod table;

pub use audit::AccessPatternAudit;
pub use config::{FederationConfig, PackingKind, SecureQueryParams, ShardingConfig, TransportKind};
pub use encdb::{EncryptedDatabase, EncryptedQuery, EncryptedRecord, MaskedResult, ShardView};
pub use engine::{
    Dataset, DatasetOptions, PreparedQuery, Protocol, QueryBuilder, QueryOutcome, SknnEngine,
};
pub use error::{DurableUpdateError, InvalidQueryReason, SknnError, UpdateRejected};
pub use exec::SessionSet;
pub use federation::{Federation, QueryResult};
pub use parallel::ParallelismConfig;
pub use plain::{plain_knn, plain_knn_records, squared_euclidean_distance};
pub use profile::{OpCounters, PoolActivity, QueryProfile, Stage};
pub use retry::{RetryPolicy, RetryReport, ShardRetry};
pub use roles::{CloudC1, DataOwner, QueryUser};
pub use storage::{BackingStore, DatasetStoreHandle};
pub use table::Table;

// Re-export the lower layers so downstream users need a single dependency.
pub use sknn_paillier::{
    Ciphertext, Keypair, PackingError, PoolConfig, PoolStats, PooledEncryptor, PrivateKey,
    PublicKey, RandomnessPool, SlotLayout,
};
pub use sknn_protocols::transport::{CoalesceConfig, SessionKeyHolder, Transport, TransportError};
pub use sknn_protocols::{KeyHolder, LocalKeyHolder, PackedParams, ProtocolError};
pub use sknn_store::{CompactionReport, DatasetMeta, DatasetStore, RecoveryReport, StoreError};
