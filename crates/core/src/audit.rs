//! Access-pattern and leakage auditing.
//!
//! The difference between the two protocols is *what the clouds get to see*:
//! SkNN_b reveals every plaintext distance to C2 and the identities of the k
//! returned records to both clouds; SkNN_m reveals neither. The audit types in
//! this module are filled in by the protocol drivers with exactly the
//! information the respective protocol discloses by design, so examples and
//! tests can assert the leakage difference instead of taking it on faith.

/// What the two clouds learn about one query's execution, beyond ciphertexts
/// and protocol-mandated random values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessPatternAudit {
    /// Record indices whose role as query results became known to cloud C1.
    /// Empty for SkNN_m (C1 only ever handles encrypted indicator vectors).
    pub record_indices_revealed_to_c1: Vec<usize>,
    /// Record indices whose role as query results became known to cloud C2.
    /// Empty for SkNN_m.
    pub record_indices_revealed_to_c2: Vec<usize>,
    /// Whether C2 observed the plaintext distance of every record to the
    /// query (true for SkNN_b, false for SkNN_m).
    pub distances_revealed_to_c2: bool,
    /// Whether either cloud could link the returned result set to specific
    /// stored records. Equivalent to "access pattern leaked".
    pub access_pattern_revealed: bool,
}

impl AccessPatternAudit {
    /// The audit of a protocol run that revealed nothing (SkNN_m's goal).
    pub fn nothing_revealed() -> Self {
        Self::default()
    }

    /// The audit of an SkNN_b run that revealed the top-k identities and the
    /// plaintext distances.
    pub fn basic_protocol(top_k_indices: &[usize]) -> Self {
        AccessPatternAudit {
            record_indices_revealed_to_c1: top_k_indices.to_vec(),
            record_indices_revealed_to_c2: top_k_indices.to_vec(),
            distances_revealed_to_c2: true,
            access_pattern_revealed: !top_k_indices.is_empty(),
        }
    }

    /// `true` when neither cloud learned anything about which records were
    /// returned or how far they are from the query.
    pub fn is_oblivious(&self) -> bool {
        self.record_indices_revealed_to_c1.is_empty()
            && self.record_indices_revealed_to_c2.is_empty()
            && !self.distances_revealed_to_c2
            && !self.access_pattern_revealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_revealed_is_oblivious() {
        assert!(AccessPatternAudit::nothing_revealed().is_oblivious());
    }

    #[test]
    fn basic_protocol_leaks() {
        let audit = AccessPatternAudit::basic_protocol(&[3, 4]);
        assert!(!audit.is_oblivious());
        assert!(audit.access_pattern_revealed);
        assert!(audit.distances_revealed_to_c2);
        assert_eq!(audit.record_indices_revealed_to_c1, vec![3, 4]);
        assert_eq!(audit.record_indices_revealed_to_c2, vec![3, 4]);
    }

    #[test]
    fn basic_protocol_with_no_results_reveals_no_pattern() {
        let audit = AccessPatternAudit::basic_protocol(&[]);
        assert!(!audit.access_pattern_revealed);
        // Distances are still decrypted by C2 even when k = 0.
        assert!(audit.distances_revealed_to_c2);
    }
}
