//! SkNN_b — the basic secure k-nearest-neighbor protocol (Algorithm 5).
//!
//! Cloud C1 computes every encrypted squared distance with SSED, ships them to
//! cloud C2, which decrypts them, picks the `k` smallest and returns their
//! indices. C1 then masks the corresponding records and the usual two-share
//! reveal delivers them to Bob.
//!
//! This protocol is efficient — its cost is dominated by the `n·m` secure
//! multiplications inside SSED and is essentially independent of `k`
//! (Figure 2(c)) — but it deliberately trades security for that speed: C2
//! learns every plaintext distance, and both clouds learn which records were
//! returned (the data-access pattern).
//!
//! The implementation lives in the staged executor ([`crate::exec`]): a
//! single-shard database runs the monolithic scan above, a sharded one runs
//! the scatter–gather plan (per-shard SSED + top-k candidates, then a merge
//! over the ≤ k·S survivors) with bit-identical results.

use crate::exec::{execute_basic, DynKeyHolder, SessionSet};
use crate::parallel::ParallelismConfig;
use crate::profile::QueryProfile;
use crate::retry::{RetryPolicy, RetryReport};
use crate::roles::CloudC1;
use crate::{AccessPatternAudit, EncryptedQuery, MaskedResult, SknnError};
use rand::RngCore;
use sknn_protocols::KeyHolder;

impl CloudC1 {
    /// Runs SkNN_b for the given encrypted query over a single C2 session.
    ///
    /// Returns the two-share [`MaskedResult`] destined for Bob, the per-stage
    /// timing profile (including per-stage ciphertext and C2-decryption
    /// counts), and an audit of what the clouds learned (for SkNN_b: the
    /// distances and the top-k identities).
    ///
    /// With packing configured (and a key holder that supports it) the SSED
    /// stage and the distance shipment of the selection step run σ values
    /// per ciphertext; results are identical to the scalar path.
    ///
    /// # Errors
    /// Returns an error when the query dimensionality does not match the
    /// database or `k` is out of range.
    pub fn process_basic<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c2: &K,
        query: &EncryptedQuery,
        k: usize,
        parallelism: ParallelismConfig,
        rng: &mut R,
    ) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit), SknnError> {
        let adapter = DynKeyHolder(c2);
        let (masked, profile, audit, _report) = execute_basic(
            self,
            &SessionSet::single(&adapter),
            query,
            k,
            parallelism,
            &RetryPolicy::none(),
            rng,
        )?;
        Ok((masked, profile, audit))
    }

    /// [`CloudC1::process_basic`] over an explicit session set: shards are
    /// pinned to sessions round-robin, so a sharded database's scatter
    /// stages overlap on the wire when the set holds more than one
    /// session. The extra `retry` policy and [`RetryReport`] return value
    /// are the failure-handling surface: failed scatter stages re-run per
    /// the policy (re-pinned onto surviving sessions when theirs died),
    /// and the report says what recovery actually happened.
    ///
    /// # Errors
    /// See [`CloudC1::process_basic`].
    pub fn process_basic_sharded<R: RngCore + ?Sized>(
        &self,
        sessions: &SessionSet<'_>,
        query: &EncryptedQuery,
        k: usize,
        parallelism: ParallelismConfig,
        retry: &RetryPolicy,
        rng: &mut R,
    ) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit, RetryReport), SknnError> {
        execute_basic(self, sessions, query, k, parallelism, retry, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Stage;
    use crate::{plain_knn_records, DataOwner, QueryUser, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_protocols::LocalKeyHolder;

    fn setup(table: &Table) -> (CloudC1, LocalKeyHolder, QueryUser, StdRng) {
        let mut rng = StdRng::seed_from_u64(201);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(table, &mut rng).unwrap();
        let c1 = CloudC1::new(db);
        let c2 = LocalKeyHolder::new(owner.private_key().clone(), 202);
        let user = QueryUser::new(owner.public_key().clone());
        (c1, c2, user, rng)
    }

    fn heart_disease_table() -> Table {
        Table::new(vec![
            vec![63, 1, 1, 145, 233, 1, 3, 0, 6, 0],
            vec![56, 1, 3, 130, 256, 1, 2, 1, 6, 2],
            vec![57, 0, 3, 140, 241, 0, 2, 0, 7, 1],
            vec![59, 1, 4, 144, 200, 1, 2, 2, 6, 3],
            vec![55, 0, 4, 128, 205, 0, 2, 1, 7, 3],
            vec![77, 1, 4, 125, 304, 0, 1, 3, 3, 4],
        ])
        .unwrap()
    }

    #[test]
    fn paper_example_1_returns_t4_and_t5() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [58u64, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let (masked, _profile, audit) = c1
            .process_basic(&c2, &enc_q, 2, ParallelismConfig::serial(), &mut rng)
            .unwrap();
        let records = user.recover_records(&masked);
        assert_eq!(records, plain_knn_records(&table, &query, 2));
        // t5 (index 4, distance 127) is nearest, then t4 (index 3, distance 148).
        assert_eq!(records[0], table.record(4).to_vec());
        assert_eq!(records[1], table.record(3).to_vec());
        // The basic protocol leaks the access pattern by design.
        assert!(!audit.is_oblivious());
        assert_eq!(audit.record_indices_revealed_to_c2, vec![4, 3]);
    }

    #[test]
    fn matches_plaintext_knn_for_various_k() {
        let table = Table::new(vec![
            vec![10, 0],
            vec![0, 10],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap();
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [2u64, 2];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        for k in 1..=5 {
            let (masked, _, _) = c1
                .process_basic(&c2, &enc_q, k, ParallelismConfig::serial(), &mut rng)
                .unwrap();
            let records = user.recover_records(&masked);
            assert_eq!(records, plain_knn_records(&table, &query, k), "k = {k}");
        }
    }

    #[test]
    fn sharded_plan_matches_the_monolithic_scan() {
        let table = heart_disease_table();
        let query = [58u64, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let (mono_c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let (mono, _, mono_audit) = mono_c1
            .process_basic(&c2, &enc_q, 3, ParallelismConfig::serial(), &mut rng)
            .unwrap();

        for shards in [2usize, 3, 6] {
            let sharded_c1 = mono_c1.clone().with_shards(shards);
            let (masked, profile, audit) = sharded_c1
                .process_basic(&c2, &enc_q, 3, ParallelismConfig::serial(), &mut rng)
                .unwrap();
            assert_eq!(
                user.recover_records(&masked),
                user.recover_records(&mono),
                "shards = {shards}"
            );
            // Same physical winners in the same order, so the leaked
            // access pattern is unchanged too.
            assert_eq!(
                audit.record_indices_revealed_to_c2,
                mono_audit.record_indices_revealed_to_c2
            );
            // The scatter half is attributed per shard.
            assert_eq!(profile.shards().len(), shards.min(6));
            assert!(profile.ops(Stage::ShardCandidates).ciphertexts_to_c2 > 0);
        }
    }

    #[test]
    fn parallel_execution_gives_identical_results() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [58u64, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let (serial, _, _) = c1
            .process_basic(&c2, &enc_q, 3, ParallelismConfig::serial(), &mut rng)
            .unwrap();
        let (parallel, _, _) = c1
            .process_basic(&c2, &enc_q, 3, ParallelismConfig { threads: 4 }, &mut rng)
            .unwrap();
        assert_eq!(
            user.recover_records(&serial),
            user.recover_records(&parallel)
        );
    }

    #[test]
    fn profile_covers_the_expected_stages() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user
            .encrypt_query(&[58, 1, 4, 133, 196, 1, 2, 1, 6, 0], &mut rng)
            .unwrap();
        let (_, profile, _) = c1
            .process_basic(&c2, &enc_q, 2, ParallelismConfig::serial(), &mut rng)
            .unwrap();
        assert!(profile.stage(Stage::DistanceComputation) > std::time::Duration::ZERO);
        assert!(profile.stage(Stage::Finalization) > std::time::Duration::ZERO);
        assert_eq!(
            profile.stage(Stage::BitDecomposition),
            std::time::Duration::ZERO
        );
        // SSED dominates SkNN_b.
        assert!(profile.fraction(Stage::DistanceComputation) > 0.5);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[1, 2, 3], &mut rng).unwrap();
        assert!(matches!(
            c1.process_basic(&c2, &enc_q, 1, ParallelismConfig::serial(), &mut rng),
            Err(SknnError::QueryDimensionMismatch { .. })
        ));
        let ok_q = user
            .encrypt_query(&[58, 1, 4, 133, 196, 1, 2, 1, 6, 0], &mut rng)
            .unwrap();
        assert!(matches!(
            c1.process_basic(&c2, &ok_q, 0, ParallelismConfig::serial(), &mut rng),
            Err(SknnError::InvalidK { .. })
        ));
        assert!(matches!(
            c1.process_basic(&c2, &ok_q, 7, ParallelismConfig::serial(), &mut rng),
            Err(SknnError::InvalidK { .. })
        ));
    }
}
