//! SkNN_b — the basic secure k-nearest-neighbor protocol (Algorithm 5).
//!
//! Cloud C1 computes every encrypted squared distance with SSED, ships them to
//! cloud C2, which decrypts them, picks the `k` smallest and returns their
//! indices. C1 then masks the corresponding records and the usual two-share
//! reveal delivers them to Bob.
//!
//! This protocol is efficient — its cost is dominated by the `n·m` secure
//! multiplications inside SSED and is essentially independent of `k`
//! (Figure 2(c)) — but it deliberately trades security for that speed: C2
//! learns every plaintext distance, and both clouds learn which records were
//! returned (the data-access pattern).

use crate::meter::OpMeter;
use crate::parallel::{parallel_map, ParallelismConfig};
use crate::profile::{QueryProfile, Stage};
use crate::roles::CloudC1;
use crate::{AccessPatternAudit, EncryptedQuery, MaskedResult, SknnError};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use sknn_paillier::Ciphertext;
use sknn_protocols::{packed_squared_distances, secure_squared_distance, KeyHolder, PackedParams};

/// The encrypted distances of all records, in the representation the
/// configured path produced: one ciphertext per record (scalar) or one per
/// σ-record group (packed).
pub(crate) enum Distances {
    /// `distances[i] = E(dᵢ)`.
    Scalar(Vec<Ciphertext>),
    /// `groups[g]` packs the distances of records `g·σ .. g·σ + counts[g]`.
    Packed {
        /// One packed ciphertext per record group.
        groups: Vec<Ciphertext>,
        /// Used slots per group (all σ except possibly the last).
        counts: Vec<usize>,
    },
}

/// Computes the encrypted squared distance of every *live* record (`live`
/// holds their physical indices), routing through the packed SSED when
/// `packing` is set. Record groups (packed) or records (scalar) are
/// independent, so both paths are parallel (Figure 3). Distance `i` of the
/// output corresponds to the record at physical index `live[i]`.
pub(crate) fn compute_distances<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
    c1: &CloudC1,
    c2: &K,
    query: &EncryptedQuery,
    packing: Option<&PackedParams>,
    parallelism: ParallelismConfig,
    live: &[usize],
    rng: &mut R,
) -> Result<Distances, SknnError> {
    let pk = c1.public_key();
    let n = live.len();
    match packing {
        Some(params) => {
            let sigma = params.slots();
            let group_ranges: Vec<(usize, usize)> = (0..n.div_ceil(sigma))
                .map(|g| (g * sigma, n.min((g + 1) * sigma)))
                .collect();
            let seeds: Vec<u64> = (0..group_ranges.len()).map(|_| rng.gen()).collect();
            let groups = parallel_map(parallelism.threads, &group_ranges, |g, &(lo, hi)| {
                let mut thread_rng = StdRng::seed_from_u64(seeds[g]);
                let records: Vec<&[Ciphertext]> = live[lo..hi]
                    .iter()
                    .map(|&i| c1.database().record(i).as_slice())
                    .collect();
                packed_squared_distances(
                    pk,
                    c2,
                    query.attributes(),
                    &records,
                    params,
                    &mut thread_rng,
                    c1.encryptor(),
                )
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            Ok(Distances::Packed {
                groups,
                counts: group_ranges.iter().map(|&(lo, hi)| hi - lo).collect(),
            })
        }
        None => {
            let seeds: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            Ok(Distances::Scalar(parallel_map(
                parallelism.threads,
                live,
                |i, &physical| {
                    let mut thread_rng = StdRng::seed_from_u64(seeds[i]);
                    let record = c1.database().record(physical);
                    secure_squared_distance(pk, c2, query.attributes(), record, &mut thread_rng)
                        .expect("database and query dimensions were validated")
                },
            )))
        }
    }
}

impl CloudC1 {
    /// Runs SkNN_b for the given encrypted query.
    ///
    /// Returns the two-share [`MaskedResult`] destined for Bob, the per-stage
    /// timing profile (including per-stage ciphertext and C2-decryption
    /// counts), and an audit of what the clouds learned (for SkNN_b: the
    /// distances and the top-k identities).
    ///
    /// With packing configured (and a key holder that supports it) the SSED
    /// stage and the distance shipment of the selection step run σ values
    /// per ciphertext; results are identical to the scalar path.
    ///
    /// # Errors
    /// Returns an error when the query dimensionality does not match the
    /// database or `k` is out of range.
    pub fn process_basic<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c2: &K,
        query: &EncryptedQuery,
        k: usize,
        parallelism: ParallelismConfig,
        rng: &mut R,
    ) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit), SknnError> {
        self.validate_query(query, k)?;
        let mut profile = QueryProfile::new();
        let packing = self.effective_packing(c2, None);
        let meter = OpMeter::new(c2);
        // Tombstoned records are excluded before any protocol message is
        // formed: the protocol run is indistinguishable from one over a
        // database that never contained them.
        let live = self.database().live_indices();

        // Step 2: E(d_i) ← SSED(E(Q), E(t_i)) for every live record.
        let distances = profile.time(Stage::DistanceComputation, || {
            compute_distances(self, &meter, query, packing, parallelism, &live, rng)
        })?;
        profile.record_ops(Stage::DistanceComputation, meter.take());

        // Step 3: C2 decrypts the distances and returns the top-k index list δ.
        let top_k = profile.time(Stage::RecordSelection, || match &distances {
            Distances::Scalar(cts) => Ok(meter.top_k_indices(cts, k)),
            Distances::Packed { groups, counts } => {
                let params = packing.expect("packed distances imply packing parameters");
                let count: usize = counts.iter().sum();
                meter.top_k_indices_packed(&params.layout, groups, count, k)
            }
        })?;
        profile.record_ops(Stage::RecordSelection, meter.take());

        // Steps 4–6: mask the chosen records and produce Bob's two shares.
        // `top_k` indexes the live view; map back to physical indices.
        let top_k_physical: Vec<usize> = top_k.iter().map(|&i| live[i]).collect();
        let chosen: Vec<_> = top_k_physical
            .iter()
            .map(|&i| self.database().record(i).clone())
            .collect();
        let masked = profile.time(Stage::Finalization, || {
            self.mask_and_reveal(&meter, &chosen, rng)
        });
        profile.record_ops(Stage::Finalization, meter.take());

        let audit = AccessPatternAudit::basic_protocol(&top_k_physical);
        Ok((masked, profile, audit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plain_knn_records, DataOwner, QueryUser, Table};
    use sknn_protocols::LocalKeyHolder;

    fn setup(table: &Table) -> (CloudC1, LocalKeyHolder, QueryUser, StdRng) {
        let mut rng = StdRng::seed_from_u64(201);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(table, &mut rng).unwrap();
        let c1 = CloudC1::new(db);
        let c2 = LocalKeyHolder::new(owner.private_key().clone(), 202);
        let user = QueryUser::new(owner.public_key().clone());
        (c1, c2, user, rng)
    }

    fn heart_disease_table() -> Table {
        Table::new(vec![
            vec![63, 1, 1, 145, 233, 1, 3, 0, 6, 0],
            vec![56, 1, 3, 130, 256, 1, 2, 1, 6, 2],
            vec![57, 0, 3, 140, 241, 0, 2, 0, 7, 1],
            vec![59, 1, 4, 144, 200, 1, 2, 2, 6, 3],
            vec![55, 0, 4, 128, 205, 0, 2, 1, 7, 3],
            vec![77, 1, 4, 125, 304, 0, 1, 3, 3, 4],
        ])
        .unwrap()
    }

    #[test]
    fn paper_example_1_returns_t4_and_t5() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [58u64, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let (masked, _profile, audit) = c1
            .process_basic(&c2, &enc_q, 2, ParallelismConfig::serial(), &mut rng)
            .unwrap();
        let records = user.recover_records(&masked);
        assert_eq!(records, plain_knn_records(&table, &query, 2));
        // t5 (index 4, distance 127) is nearest, then t4 (index 3, distance 148).
        assert_eq!(records[0], table.record(4).to_vec());
        assert_eq!(records[1], table.record(3).to_vec());
        // The basic protocol leaks the access pattern by design.
        assert!(!audit.is_oblivious());
        assert_eq!(audit.record_indices_revealed_to_c2, vec![4, 3]);
    }

    #[test]
    fn matches_plaintext_knn_for_various_k() {
        let table = Table::new(vec![
            vec![10, 0],
            vec![0, 10],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap();
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [2u64, 2];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        for k in 1..=5 {
            let (masked, _, _) = c1
                .process_basic(&c2, &enc_q, k, ParallelismConfig::serial(), &mut rng)
                .unwrap();
            let records = user.recover_records(&masked);
            assert_eq!(records, plain_knn_records(&table, &query, k), "k = {k}");
        }
    }

    #[test]
    fn parallel_execution_gives_identical_results() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [58u64, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let (serial, _, _) = c1
            .process_basic(&c2, &enc_q, 3, ParallelismConfig::serial(), &mut rng)
            .unwrap();
        let (parallel, _, _) = c1
            .process_basic(&c2, &enc_q, 3, ParallelismConfig { threads: 4 }, &mut rng)
            .unwrap();
        assert_eq!(
            user.recover_records(&serial),
            user.recover_records(&parallel)
        );
    }

    #[test]
    fn profile_covers_the_expected_stages() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user
            .encrypt_query(&[58, 1, 4, 133, 196, 1, 2, 1, 6, 0], &mut rng)
            .unwrap();
        let (_, profile, _) = c1
            .process_basic(&c2, &enc_q, 2, ParallelismConfig::serial(), &mut rng)
            .unwrap();
        assert!(profile.stage(Stage::DistanceComputation) > std::time::Duration::ZERO);
        assert!(profile.stage(Stage::Finalization) > std::time::Duration::ZERO);
        assert_eq!(
            profile.stage(Stage::BitDecomposition),
            std::time::Duration::ZERO
        );
        // SSED dominates SkNN_b.
        assert!(profile.fraction(Stage::DistanceComputation) > 0.5);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let table = heart_disease_table();
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[1, 2, 3], &mut rng).unwrap();
        assert!(matches!(
            c1.process_basic(&c2, &enc_q, 1, ParallelismConfig::serial(), &mut rng),
            Err(SknnError::QueryDimensionMismatch { .. })
        ));
        let ok_q = user
            .encrypt_query(&[58, 1, 4, 133, 196, 1, 2, 1, 6, 0], &mut rng)
            .unwrap();
        assert!(matches!(
            c1.process_basic(&c2, &ok_q, 0, ParallelismConfig::serial(), &mut rng),
            Err(SknnError::InvalidK { .. })
        ));
        assert!(matches!(
            c1.process_basic(&c2, &ok_q, 7, ParallelismConfig::serial(), &mut rng),
            Err(SknnError::InvalidK { .. })
        ));
    }
}
