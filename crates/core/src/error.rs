//! Error type for the query-protocol layer.

use core::fmt;
use sknn_paillier::PaillierError;
use sknn_protocols::ProtocolError;

/// Errors surfaced while outsourcing a database or answering a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SknnError {
    /// The plaintext table is empty or has rows of differing widths.
    MalformedTable {
        /// Human-readable description of the defect.
        reason: &'static str,
    },
    /// The query record's dimensionality differs from the table's.
    QueryDimensionMismatch {
        /// Number of attributes in the outsourced table.
        table: usize,
        /// Number of attributes in the query.
        query: usize,
    },
    /// `k` must satisfy `1 ≤ k ≤ n`.
    InvalidK {
        /// The requested number of neighbors.
        k: usize,
        /// The number of records in the database.
        n: usize,
    },
    /// The configured distance-domain bit length cannot hold the largest
    /// possible squared distance for this table.
    InsufficientDistanceBits {
        /// The configured `l`.
        l: usize,
        /// The minimum `l` that would be safe.
        required: usize,
    },
    /// `FederationConfig.packing` demanded a fixed packing factor the key
    /// size and distance domain cannot hold.
    PackingInfeasible {
        /// The requested slots-per-ciphertext σ.
        requested: usize,
        /// The largest σ the key's plaintext space supports (0 when not
        /// even one slot fits).
        supported: usize,
    },
    /// An error bubbled up from the underlying two-party protocols.
    Protocol(ProtocolError),
    /// An error bubbled up from the Paillier layer — typically a plaintext
    /// outside `[0, N)`, reachable when a table or query value is too large
    /// for the configured key size.
    Paillier(PaillierError),
}

impl fmt::Display for SknnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SknnError::MalformedTable { reason } => write!(f, "malformed table: {reason}"),
            SknnError::QueryDimensionMismatch { table, query } => write!(
                f,
                "query has {query} attributes but the outsourced table has {table}"
            ),
            SknnError::InvalidK { k, n } => {
                write!(f, "k = {k} is outside the valid range 1..={n}")
            }
            SknnError::InsufficientDistanceBits { l, required } => write!(
                f,
                "distance domain of {l} bits cannot hold the worst-case squared distance ({required} bits required)"
            ),
            SknnError::PackingInfeasible {
                requested,
                supported,
            } => write!(
                f,
                "fixed packing factor {requested} is infeasible for this key and distance \
                 domain (at most {supported} slots fit)"
            ),
            SknnError::Protocol(e) => write!(f, "protocol error: {e}"),
            SknnError::Paillier(e) => write!(f, "encryption error: {e}"),
        }
    }
}

impl std::error::Error for SknnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SknnError::Protocol(e) => Some(e),
            SknnError::Paillier(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for SknnError {
    fn from(e: ProtocolError) -> Self {
        SknnError::Protocol(e)
    }
}

impl From<PaillierError> for SknnError {
    fn from(e: PaillierError) -> Self {
        SknnError::Paillier(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SknnError::InvalidK { k: 10, n: 5 };
        assert!(e.to_string().contains("k = 10"));
        let p: SknnError = ProtocolError::TransportClosed.into();
        assert!(matches!(p, SknnError::Protocol(_)));
        assert!(p.to_string().contains("protocol error"));
        assert!(SknnError::MalformedTable { reason: "empty" }
            .to_string()
            .contains("empty"));
        assert!(SknnError::QueryDimensionMismatch { table: 3, query: 2 }
            .to_string()
            .contains("2 attributes"));
        assert!(SknnError::InsufficientDistanceBits { l: 6, required: 9 }
            .to_string()
            .contains("9 bits"));
    }

    #[test]
    fn protocol_source_is_preserved() {
        use std::error::Error;
        let e = SknnError::Protocol(ProtocolError::TransportClosed);
        assert!(e.source().is_some());
        assert!(SknnError::InvalidK { k: 1, n: 1 }.source().is_none());
    }

    #[test]
    fn paillier_errors_convert_and_display() {
        use std::error::Error;
        let e: SknnError = PaillierError::PlaintextOutOfRange.into();
        assert!(matches!(e, SknnError::Paillier(_)));
        assert!(e.to_string().contains("encryption error"));
        assert!(e.source().is_some());
    }
}
