//! Error type for the query-protocol layer.

use core::fmt;
use sknn_paillier::PaillierError;
use sknn_protocols::ProtocolError;
use sknn_store::StoreError;

/// Errors surfaced while outsourcing a database or answering a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SknnError {
    /// The plaintext table is empty or has rows of differing widths.
    MalformedTable {
        /// Human-readable description of the defect.
        reason: &'static str,
    },
    /// The query record's dimensionality differs from the table's.
    QueryDimensionMismatch {
        /// Number of attributes in the outsourced table.
        table: usize,
        /// Number of attributes in the query.
        query: usize,
    },
    /// `k` must satisfy `1 ≤ k ≤ n`.
    InvalidK {
        /// The requested number of neighbors.
        k: usize,
        /// The number of records in the database.
        n: usize,
    },
    /// The configured distance-domain bit length cannot hold the largest
    /// possible squared distance for this table.
    InsufficientDistanceBits {
        /// The configured `l`.
        l: usize,
        /// The minimum `l` that would be safe.
        required: usize,
    },
    /// `FederationConfig.packing` demanded a fixed packing factor the key
    /// size and distance domain cannot hold.
    PackingInfeasible {
        /// The requested slots-per-ciphertext σ.
        requested: usize,
        /// The largest σ the key's plaintext space supports (0 when not
        /// even one slot fits).
        supported: usize,
    },
    /// A query or update named a dataset the engine does not host.
    UnknownDataset {
        /// The dataset name as given.
        name: String,
    },
    /// `SknnEngine::register_dataset` was called with a name that is already
    /// registered. Remove the old dataset first (or pick a new name) — silent
    /// replacement of an encrypted table is exactly the kind of operational
    /// surprise a multi-dataset deployment cannot afford.
    DatasetAlreadyRegistered {
        /// The conflicting dataset name.
        name: String,
    },
    /// A query failed up-front validation against the dataset it targets
    /// (produced by `QueryBuilder::build`, never mid-protocol).
    InvalidQuery {
        /// The dataset the query was aimed at.
        dataset: String,
        /// Why the query was rejected.
        reason: InvalidQueryReason,
    },
    /// A dynamic update (append / tombstone) was rejected.
    InvalidUpdate {
        /// The dataset the update was aimed at.
        dataset: String,
        /// Why the update was rejected.
        rejected: UpdateRejected,
    },
    /// An error bubbled up from the durable shard store: an I/O failure, a
    /// corrupt log or manifest, or a dataset directory persisted under a
    /// different key pair or sharding configuration.
    Storage(StoreError),
    /// An error bubbled up from the underlying two-party protocols.
    Protocol(ProtocolError),
    /// An error bubbled up from the Paillier layer — typically a plaintext
    /// outside `[0, N)`, reachable when a table or query value is too large
    /// for the configured key size.
    Paillier(PaillierError),
}

/// Why `QueryBuilder::build` rejected a query before any protocol message
/// was sent. Every variant corresponds to a condition that previously
/// surfaced mid-protocol (or not at all); the builder turns them into
/// up-front, typed rejections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidQueryReason {
    /// No query point was supplied before `build()`.
    MissingPoint,
    /// `k` must satisfy `1 ≤ k ≤ n` over the dataset's *live* records.
    KOutOfRange {
        /// The requested number of neighbors.
        k: usize,
        /// The number of live records in the dataset.
        n: usize,
    },
    /// The query point's dimensionality differs from the dataset's.
    WrongArity {
        /// Attributes per record in the dataset.
        expected: usize,
        /// Attributes in the query point.
        got: usize,
    },
    /// A query attribute exceeds the value bound the dataset's
    /// distance-bit sizing was derived from; running it could overflow the
    /// `l`-bit distance domain and silently corrupt the ranking.
    ValueOutOfRange {
        /// Index of the offending attribute.
        attribute: usize,
        /// The offending value.
        value: u64,
        /// The dataset's registered per-attribute bound.
        bound: u64,
    },
    /// `distance_bits` was set on a basic-protocol query. SkNN_b never
    /// bit-decomposes distances, so the knob would be silently ignored —
    /// rejected instead, per the builder's validate-up-front contract.
    DistanceBitsWithBasicProtocol {
        /// The requested distance-bit length.
        l: usize,
    },
}

impl fmt::Display for InvalidQueryReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidQueryReason::MissingPoint => write!(f, "no query point was provided"),
            InvalidQueryReason::KOutOfRange { k, n } => {
                write!(f, "k = {k} is outside the valid range 1..={n}")
            }
            InvalidQueryReason::WrongArity { expected, got } => {
                write!(
                    f,
                    "query has {got} attributes but the dataset has {expected}"
                )
            }
            InvalidQueryReason::ValueOutOfRange {
                attribute,
                value,
                bound,
            } => write!(
                f,
                "attribute {attribute} is {value}, above the dataset's value bound {bound}"
            ),
            InvalidQueryReason::DistanceBitsWithBasicProtocol { l } => write!(
                f,
                "distance_bits({l}) only applies to the secure protocol; SkNN_b never \
                 bit-decomposes distances"
            ),
        }
    }
}

/// Why a dynamic update (append / tombstone) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateRejected {
    /// An appended record's width differs from the dataset's.
    WrongArity {
        /// Attributes per record in the dataset.
        expected: usize,
        /// Attributes in the appended record.
        got: usize,
    },
    /// The record index does not exist in the dataset.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The number of records (live or tombstoned) in the dataset.
        records: usize,
    },
    /// The record at this index is already tombstoned.
    AlreadyTombstoned {
        /// The requested index.
        index: usize,
    },
}

/// Why a durable (write-ahead) update on an
/// [`crate::EncryptedDatabase`] failed: either up-front validation, or the
/// backing store refusing to make the update durable. In the latter case
/// nothing became visible — "durable before visible" means a storage
/// failure leaves the queryable state exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableUpdateError {
    /// The update failed validation (wrong arity, bad index).
    Rejected(UpdateRejected),
    /// The backing store could not make the update durable.
    Storage(StoreError),
}

impl fmt::Display for DurableUpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableUpdateError::Rejected(r) => write!(f, "{r}"),
            DurableUpdateError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableUpdateError {}

impl fmt::Display for UpdateRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateRejected::WrongArity { expected, got } => {
                write!(
                    f,
                    "record has {got} attributes but the dataset has {expected}"
                )
            }
            UpdateRejected::IndexOutOfRange { index, records } => {
                write!(
                    f,
                    "record index {index} is out of range for {records} records"
                )
            }
            UpdateRejected::AlreadyTombstoned { index } => {
                write!(f, "record {index} is already tombstoned")
            }
        }
    }
}

impl fmt::Display for SknnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SknnError::MalformedTable { reason } => write!(f, "malformed table: {reason}"),
            SknnError::QueryDimensionMismatch { table, query } => write!(
                f,
                "query has {query} attributes but the outsourced table has {table}"
            ),
            SknnError::InvalidK { k, n } => {
                write!(f, "k = {k} is outside the valid range 1..={n}")
            }
            SknnError::InsufficientDistanceBits { l, required } => write!(
                f,
                "distance domain of {l} bits cannot hold the worst-case squared distance ({required} bits required)"
            ),
            SknnError::PackingInfeasible {
                requested,
                supported,
            } => write!(
                f,
                "fixed packing factor {requested} is infeasible for this key and distance \
                 domain (at most {supported} slots fit)"
            ),
            SknnError::UnknownDataset { name } => {
                write!(f, "no dataset named {name:?} is registered")
            }
            SknnError::DatasetAlreadyRegistered { name } => {
                write!(f, "a dataset named {name:?} is already registered")
            }
            SknnError::InvalidQuery { dataset, reason } => {
                write!(f, "invalid query against dataset {dataset:?}: {reason}")
            }
            SknnError::InvalidUpdate { dataset, rejected } => {
                write!(f, "invalid update to dataset {dataset:?}: {rejected}")
            }
            SknnError::Storage(e) => write!(f, "storage error: {e}"),
            SknnError::Protocol(e) => write!(f, "protocol error: {e}"),
            SknnError::Paillier(e) => write!(f, "encryption error: {e}"),
        }
    }
}

impl std::error::Error for SknnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SknnError::Protocol(e) => Some(e),
            SknnError::Paillier(e) => Some(e),
            SknnError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for SknnError {
    fn from(e: ProtocolError) -> Self {
        SknnError::Protocol(e)
    }
}

impl From<PaillierError> for SknnError {
    fn from(e: PaillierError) -> Self {
        SknnError::Paillier(e)
    }
}

impl From<StoreError> for SknnError {
    fn from(e: StoreError) -> Self {
        SknnError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SknnError::InvalidK { k: 10, n: 5 };
        assert!(e.to_string().contains("k = 10"));
        let p: SknnError = ProtocolError::TransportClosed.into();
        assert!(matches!(p, SknnError::Protocol(_)));
        assert!(p.to_string().contains("protocol error"));
        assert!(SknnError::MalformedTable { reason: "empty" }
            .to_string()
            .contains("empty"));
        assert!(SknnError::QueryDimensionMismatch { table: 3, query: 2 }
            .to_string()
            .contains("2 attributes"));
        assert!(SknnError::InsufficientDistanceBits { l: 6, required: 9 }
            .to_string()
            .contains("9 bits"));
    }

    #[test]
    fn protocol_source_is_preserved() {
        use std::error::Error;
        let e = SknnError::Protocol(ProtocolError::TransportClosed);
        assert!(e.source().is_some());
        assert!(SknnError::InvalidK { k: 1, n: 1 }.source().is_none());
    }

    #[test]
    fn engine_error_variants_display() {
        let e = SknnError::UnknownDataset {
            name: "heart".into(),
        };
        assert!(e.to_string().contains("heart"));
        let e = SknnError::DatasetAlreadyRegistered {
            name: "heart".into(),
        };
        assert!(e.to_string().contains("already registered"));
        let e = SknnError::InvalidQuery {
            dataset: "heart".into(),
            reason: InvalidQueryReason::KOutOfRange { k: 9, n: 4 },
        };
        assert!(e.to_string().contains("k = 9"));
        assert!(InvalidQueryReason::MissingPoint
            .to_string()
            .contains("no query point"));
        assert!(InvalidQueryReason::WrongArity {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("2 attributes"));
        assert!(InvalidQueryReason::ValueOutOfRange {
            attribute: 1,
            value: 900,
            bound: 564
        }
        .to_string()
        .contains("900"));
        let e = SknnError::InvalidUpdate {
            dataset: "heart".into(),
            rejected: UpdateRejected::AlreadyTombstoned { index: 2 },
        };
        assert!(e.to_string().contains("already tombstoned"));
        assert!(UpdateRejected::WrongArity {
            expected: 3,
            got: 1
        }
        .to_string()
        .contains("1 attributes"));
        assert!(UpdateRejected::IndexOutOfRange {
            index: 7,
            records: 4
        }
        .to_string()
        .contains("index 7"));
    }

    #[test]
    fn storage_errors_convert_and_display() {
        use std::error::Error;
        let e: SknnError = StoreError::KeyMismatch {
            expected: 1,
            found: 2,
        }
        .into();
        assert!(matches!(e, SknnError::Storage(_)));
        assert!(e.to_string().contains("storage error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn paillier_errors_convert_and_display() {
        use std::error::Error;
        let e: SknnError = PaillierError::PlaintextOutOfRange.into();
        assert!(matches!(e, SknnError::Paillier(_)));
        assert!(e.to_string().contains("encryption error"));
        assert!(e.source().is_some());
    }
}
