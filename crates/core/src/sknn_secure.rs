//! SkNN_m — the fully secure k-nearest-neighbor protocol (Algorithm 6).
//!
//! Unlike SkNN_b, distances are never decrypted: each encrypted squared
//! distance is bit-decomposed (SBD), the global minimum is computed over the
//! encrypted bit vectors (SMIN_n), the matching record is located with a
//! randomized, permuted equality test that C2 answers without learning which
//! record it refers to, the record is extracted through an encrypted
//! indicator-vector dot product, and its distance is obliviously saturated to
//! the all-ones maximum (SBOR) so the next iteration finds the next-nearest
//! record. After `k` iterations the masked records are revealed to Bob exactly
//! as in the basic protocol.
//!
//! Neither cloud learns plaintext distances, which records were returned, or
//! how the returned set maps to stored records — the hidden-access-pattern
//! guarantee the paper's Section 4.3 argues for.

use crate::config::SecureQueryParams;
use crate::meter::OpMeter;
use crate::parallel::{parallel_map, ParallelismConfig};
use crate::profile::{QueryProfile, Stage};
use crate::roles::CloudC1;
use crate::sknn_basic::{compute_distances, Distances};
use crate::{AccessPatternAudit, EncryptedQuery, MaskedResult, SknnError};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use sknn_bigint::{random_range, BigUint};
use sknn_paillier::Ciphertext;
use sknn_protocols::{
    packed_bit_decompose, recompose_bits, secure_bit_decompose_with, secure_multiply_batch,
    KeyHolder, Permutation,
};

impl CloudC1 {
    /// Runs SkNN_m for the given encrypted query.
    ///
    /// `params.l` is the bit length of the squared-distance domain: every
    /// genuine squared distance must be strictly smaller than `2^l − 1`
    /// (the all-ones value is reserved for marking already-selected records).
    ///
    /// # Errors
    /// Returns an error when the query dimensionality does not match the
    /// database, `k` is out of range, or `l` is invalid for the key in use.
    pub fn process_secure<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c2: &K,
        query: &EncryptedQuery,
        params: SecureQueryParams,
        parallelism: ParallelismConfig,
        rng: &mut R,
    ) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit), SknnError> {
        self.validate_query(query, params.k)?;
        let pk = self.public_key();
        // Tombstoned records are excluded up front; every protocol stage
        // below operates on the live view only.
        let live = self.database().live_indices();
        let n = live.len();
        let m = self.database().num_attributes();
        let l = params.l;
        let mut profile = QueryProfile::new();
        let packing = self.effective_packing(c2, Some(l));
        let meter = OpMeter::new(c2);

        // ── Step 2a: E(d_i) ← SSED(E(Q), E(t_i)) ───────────────────────────
        let distances = profile.time(Stage::DistanceComputation, || {
            compute_distances(self, &meter, query, packing, parallelism, &live, rng)
        })?;
        profile.record_ops(Stage::DistanceComputation, meter.take());

        // ── Step 2a (cont.): [d_i] ← SBD(E(d_i)) ───────────────────────────
        let mut distance_bits: Vec<Vec<Ciphertext>> =
            profile.time(Stage::BitDecomposition, || match &distances {
                // Packed state: all groups advance in lockstep, one packed
                // request per group per round.
                Distances::Packed { groups, counts } => {
                    let p = packing.expect("packed distances imply packing parameters");
                    packed_bit_decompose(pk, &meter, groups, counts, l, p, rng, self.encryptor())
                        .map_err(SknnError::from)
                }
                Distances::Scalar(distances) => {
                    let seeds: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
                    let decomposed = parallel_map(parallelism.threads, distances, |i, dist| {
                        let mut thread_rng = StdRng::seed_from_u64(seeds[i]);
                        // The per-round mask encryptions draw from C1's
                        // offline randomness pool when one is attached.
                        secure_bit_decompose_with(
                            pk,
                            &meter,
                            dist,
                            l,
                            &mut thread_rng,
                            self.encryptor(),
                        )
                    });
                    decomposed
                        .into_iter()
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(SknnError::from)
                }
            })?;
        profile.record_ops(Stage::BitDecomposition, meter.take());

        // ── Step 3: k oblivious selection rounds ───────────────────────────
        let one = BigUint::one();
        let mut results: Vec<Vec<Ciphertext>> = Vec::with_capacity(params.k);
        for _s in 0..params.k {
            // 3(a): [d_min] over all records.
            let dmin_bits = profile.time(Stage::SecureMinimum, || {
                sknn_protocols::secure_min_n(pk, &meter, &distance_bits, rng)
            })?;
            profile.record_ops(Stage::SecureMinimum, meter.take());

            let selection = profile.time(Stage::RecordSelection, || {
                // 3(b): recompose E(d_min) and every E(d_i) from their bits
                // (the bits are the authoritative state — they get overwritten
                // by the freezing step below).
                let e_dmin = recompose_bits(pk, &dmin_bits);
                let e_dist: Vec<Ciphertext> = distance_bits
                    .iter()
                    .map(|bits| recompose_bits(pk, bits))
                    .collect();

                // τ_i = E(d_min − d_i), randomized and permuted before C2 sees it.
                let tau_prime: Vec<Ciphertext> = e_dist
                    .iter()
                    .map(|e_di| {
                        let tau = pk.sub(&e_dmin, e_di);
                        let r_i = random_range(rng, &one, pk.n());
                        pk.mul_plain(&tau, &r_i)
                    })
                    .collect();
                let pi = Permutation::random(rng, n);
                let beta = pi.apply(&tau_prime);

                // 3(c): C2 marks exactly one zero position — obliviously,
                // because of the permutation and randomization. A missing
                // zero violates the protocol invariant and surfaces as a
                // typed error instead of a silent all-zero indicator.
                let u = meter.min_selection(&beta)?;
                // 3(d): undo the permutation; V has E(1) at the winning record.
                let v = pi.apply_inverse(&u);

                // V′_{i,j} = SM(V_i, E(t_{i,j})); E(t′_{s,j}) = Π_i V′_{i,j}.
                let pairs: Vec<(Ciphertext, Ciphertext)> = (0..n)
                    .flat_map(|i| {
                        let v_i = v[i].clone();
                        self.database()
                            .record(live[i])
                            .iter()
                            .map(move |attr| (v_i.clone(), attr.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let products = secure_multiply_batch(pk, &meter, &pairs, rng);
                let record: Vec<Ciphertext> = (0..m)
                    .map(|j| pk.sum((0..n).map(|i| &products[i * m + j])))
                    .collect();
                Ok::<_, SknnError>((record, v))
            });
            profile.record_ops(Stage::RecordSelection, meter.take());
            let (selected_record, indicator) = selection?;
            results.push(selected_record);

            // 3(e): freeze the winner's distance at the all-ones maximum via
            // SBOR so it can never win again. One batched SM round covers all
            // n·l bit positions.
            profile.time(Stage::DistanceFreezing, || {
                let pairs: Vec<(Ciphertext, Ciphertext)> = (0..n)
                    .flat_map(|i| {
                        let v_i = indicator[i].clone();
                        distance_bits[i]
                            .iter()
                            .map(move |bit| (v_i.clone(), bit.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let products = secure_multiply_batch(pk, &meter, &pairs, rng);
                for i in 0..n {
                    for gamma in 0..l {
                        // o₁ ∨ o₂ = o₁ + o₂ − o₁·o₂ with o₁ = V_i, o₂ = d_{i,γ}.
                        let sum = pk.add(&indicator[i], &distance_bits[i][gamma]);
                        distance_bits[i][gamma] = pk.sub(&sum, &products[i * l + gamma]);
                    }
                }
            });
            profile.record_ops(Stage::DistanceFreezing, meter.take());
        }

        // ── Steps 4–6: the same two-share reveal as the basic protocol ─────
        let masked = profile.time(Stage::Finalization, || {
            self.mask_and_reveal(&meter, &results, rng)
        });
        profile.record_ops(Stage::Finalization, meter.take());

        Ok((masked, profile, AccessPatternAudit::nothing_revealed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plain_knn_records, DataOwner, QueryUser, Table};
    use sknn_protocols::LocalKeyHolder;

    fn setup(table: &Table) -> (CloudC1, LocalKeyHolder, QueryUser, StdRng) {
        let mut rng = StdRng::seed_from_u64(301);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(table, &mut rng).unwrap();
        let c1 = CloudC1::new(db);
        let c2 = LocalKeyHolder::new(owner.private_key().clone(), 302);
        let user = QueryUser::new(owner.public_key().clone());
        (c1, c2, user, rng)
    }

    #[test]
    fn matches_plaintext_knn_on_small_table() {
        // Distances from the query (2, 2) are 68, 29, 18, 98, 2 — all distinct,
        // so the expected result set is unambiguous.
        let table = Table::new(vec![
            vec![10, 0],
            vec![0, 7],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap();
        let l = table.required_distance_bits(10);
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [2u64, 2];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        for k in [1usize, 2, 3, 5] {
            let (masked, _, audit) = c1
                .process_secure(
                    &c2,
                    &enc_q,
                    SecureQueryParams { k, l },
                    ParallelismConfig::serial(),
                    &mut rng,
                )
                .unwrap();
            let mut records = user.recover_records(&masked);
            let mut expected = plain_knn_records(&table, &query, k);
            // SkNN_m hides which stored record each result corresponds to, so
            // ties may legitimately come back in either order; compare as sets.
            records.sort();
            expected.sort();
            assert_eq!(records, expected, "k = {k}");
            assert!(audit.is_oblivious());
        }
    }

    #[test]
    fn paper_example_1_returns_t4_and_t5() {
        let table = Table::new(vec![
            vec![63, 1, 1, 145, 233, 1, 3, 0, 6, 0],
            vec![56, 1, 3, 130, 256, 1, 2, 1, 6, 2],
            vec![57, 0, 3, 140, 241, 0, 2, 0, 7, 1],
            vec![59, 1, 4, 144, 200, 1, 2, 2, 6, 3],
            vec![55, 0, 4, 128, 205, 0, 2, 1, 7, 3],
            vec![77, 1, 4, 125, 304, 0, 1, 3, 3, 4],
        ])
        .unwrap();
        let query = [58u64, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let l = table.required_distance_bits(564);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let (masked, profile, audit) = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 2, l },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap();
        let mut records = user.recover_records(&masked);
        records.sort();
        let mut expected = vec![table.record(3).to_vec(), table.record(4).to_vec()];
        expected.sort();
        assert_eq!(records, expected);
        assert!(audit.is_oblivious());
        // SMIN_n dominates the secure protocol, as Section 5.2 reports.
        assert!(profile.fraction(Stage::SecureMinimum) > 0.3);
    }

    #[test]
    fn duplicate_records_and_ties() {
        let table = Table::new(vec![vec![4, 4], vec![4, 4], vec![0, 0], vec![7, 7]]).unwrap();
        let l = table.required_distance_bits(7);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[4, 4], &mut rng).unwrap();
        let (masked, _, _) = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 2, l },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap();
        let records = user.recover_records(&masked);
        // Both returned records must be the duplicate (4, 4) rows.
        assert_eq!(records, vec![vec![4, 4], vec![4, 4]]);
    }

    #[test]
    fn parallel_execution_gives_identical_result_set() {
        let table = Table::new(vec![
            vec![1, 2],
            vec![8, 3],
            vec![4, 4],
            vec![0, 9],
            vec![6, 6],
            vec![2, 2],
        ])
        .unwrap();
        let l = table.required_distance_bits(9);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[3, 3], &mut rng).unwrap();
        let run = |threads: usize, rng: &mut StdRng| {
            let (masked, _, _) = c1
                .process_secure(
                    &c2,
                    &enc_q,
                    SecureQueryParams { k: 3, l },
                    ParallelismConfig { threads },
                    rng,
                )
                .unwrap();
            let mut r = user.recover_records(&masked);
            r.sort();
            r
        };
        assert_eq!(run(1, &mut rng), run(4, &mut rng));
    }

    #[test]
    fn k_equals_n_returns_whole_table() {
        let table = Table::new(vec![vec![1], vec![5], vec![3]]).unwrap();
        let l = table.required_distance_bits(5);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[2], &mut rng).unwrap();
        let (masked, _, _) = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 3, l },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap();
        let mut records = user.recover_records(&masked);
        records.sort();
        assert_eq!(records, vec![vec![1], vec![3], vec![5]]);
    }

    #[test]
    fn invalid_l_is_reported() {
        let table = Table::new(vec![vec![1], vec![2]]).unwrap();
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[1], &mut rng).unwrap();
        let err = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 1, l: 0 },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, SknnError::Protocol(_)));
    }
}
