//! SkNN_m — the fully secure k-nearest-neighbor protocol (Algorithm 6).
//!
//! Unlike SkNN_b, distances are never decrypted: each encrypted squared
//! distance is bit-decomposed (SBD), the global minimum is computed over the
//! encrypted bit vectors (SMIN_n), the matching record is located with a
//! randomized, permuted equality test that C2 answers without learning which
//! record it refers to, the record is extracted through an encrypted
//! indicator-vector dot product, and its distance is obliviously saturated to
//! the all-ones maximum (SBOR) so the next iteration finds the next-nearest
//! record. After `k` iterations the masked records are revealed to Bob exactly
//! as in the basic protocol.
//!
//! Neither cloud learns plaintext distances, which records were returned, or
//! how the returned set maps to stored records — the hidden-access-pattern
//! guarantee the paper's Section 4.3 argues for.
//!
//! The implementation lives in the staged executor ([`crate::exec`]): a
//! single-shard database runs the paper's loop unchanged, a sharded one
//! runs the scatter–gather plan — per-shard SSED + SBD + oblivious
//! candidate extraction, then the same SMIN_n/selection rounds over only
//! the ≤ k·S surviving candidates (leakage analysis in `DESIGN.md`).

use crate::config::SecureQueryParams;
use crate::exec::{execute_secure, DynKeyHolder, SessionSet};
use crate::parallel::ParallelismConfig;
use crate::profile::QueryProfile;
use crate::retry::{RetryPolicy, RetryReport};
use crate::roles::CloudC1;
use crate::{AccessPatternAudit, EncryptedQuery, MaskedResult, SknnError};
use rand::RngCore;
use sknn_protocols::KeyHolder;

impl CloudC1 {
    /// Runs SkNN_m for the given encrypted query over a single C2 session.
    ///
    /// `params.l` is the bit length of the squared-distance domain: every
    /// genuine squared distance must be strictly smaller than `2^l − 1`
    /// (the all-ones value is reserved for marking already-selected records).
    ///
    /// # Errors
    /// Returns an error when the query dimensionality does not match the
    /// database, `k` is out of range, or `l` is invalid for the key in use.
    pub fn process_secure<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c2: &K,
        query: &EncryptedQuery,
        params: SecureQueryParams,
        parallelism: ParallelismConfig,
        rng: &mut R,
    ) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit), SknnError> {
        let adapter = DynKeyHolder(c2);
        let (masked, profile, audit, _report) = execute_secure(
            self,
            &SessionSet::single(&adapter),
            query,
            params,
            parallelism,
            &RetryPolicy::none(),
            rng,
        )?;
        Ok((masked, profile, audit))
    }

    /// [`CloudC1::process_secure`] over an explicit session set: shards
    /// are pinned to sessions round-robin, so a sharded database's scatter
    /// stages overlap on the wire when the set holds more than one
    /// session. The extra `retry` policy and [`RetryReport`] return value
    /// are the failure-handling surface: failed scatter stages re-run per
    /// the policy (re-pinned onto surviving sessions when theirs died),
    /// and the report says what recovery actually happened.
    ///
    /// # Errors
    /// See [`CloudC1::process_secure`].
    pub fn process_secure_sharded<R: RngCore + ?Sized>(
        &self,
        sessions: &SessionSet<'_>,
        query: &EncryptedQuery,
        params: SecureQueryParams,
        parallelism: ParallelismConfig,
        retry: &RetryPolicy,
        rng: &mut R,
    ) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit, RetryReport), SknnError> {
        execute_secure(self, sessions, query, params, parallelism, retry, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Stage;
    use crate::{plain_knn_records, DataOwner, QueryUser, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_protocols::LocalKeyHolder;

    fn setup(table: &Table) -> (CloudC1, LocalKeyHolder, QueryUser, StdRng) {
        let mut rng = StdRng::seed_from_u64(301);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(table, &mut rng).unwrap();
        let c1 = CloudC1::new(db);
        let c2 = LocalKeyHolder::new(owner.private_key().clone(), 302);
        let user = QueryUser::new(owner.public_key().clone());
        (c1, c2, user, rng)
    }

    #[test]
    fn matches_plaintext_knn_on_small_table() {
        // Distances from the query (2, 2) are 68, 29, 18, 98, 2 — all distinct,
        // so the expected result set is unambiguous.
        let table = Table::new(vec![
            vec![10, 0],
            vec![0, 7],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap();
        let l = table.required_distance_bits(10);
        let (c1, c2, user, mut rng) = setup(&table);
        let query = [2u64, 2];
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        for k in [1usize, 2, 3, 5] {
            let (masked, _, audit) = c1
                .process_secure(
                    &c2,
                    &enc_q,
                    SecureQueryParams { k, l },
                    ParallelismConfig::serial(),
                    &mut rng,
                )
                .unwrap();
            let mut records = user.recover_records(&masked);
            let mut expected = plain_knn_records(&table, &query, k);
            // SkNN_m hides which stored record each result corresponds to, so
            // ties may legitimately come back in either order; compare as sets.
            records.sort();
            expected.sort();
            assert_eq!(records, expected, "k = {k}");
            assert!(audit.is_oblivious());
        }
    }

    #[test]
    fn paper_example_1_returns_t4_and_t5() {
        let table = Table::new(vec![
            vec![63, 1, 1, 145, 233, 1, 3, 0, 6, 0],
            vec![56, 1, 3, 130, 256, 1, 2, 1, 6, 2],
            vec![57, 0, 3, 140, 241, 0, 2, 0, 7, 1],
            vec![59, 1, 4, 144, 200, 1, 2, 2, 6, 3],
            vec![55, 0, 4, 128, 205, 0, 2, 1, 7, 3],
            vec![77, 1, 4, 125, 304, 0, 1, 3, 3, 4],
        ])
        .unwrap();
        let query = [58u64, 1, 4, 133, 196, 1, 2, 1, 6, 0];
        let l = table.required_distance_bits(564);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let (masked, profile, audit) = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 2, l },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap();
        let mut records = user.recover_records(&masked);
        records.sort();
        let mut expected = vec![table.record(3).to_vec(), table.record(4).to_vec()];
        expected.sort();
        assert_eq!(records, expected);
        assert!(audit.is_oblivious());
        // SMIN_n dominates the secure protocol, as Section 5.2 reports.
        assert!(profile.fraction(Stage::SecureMinimum) > 0.3);
    }

    #[test]
    fn sharded_plan_matches_the_monolithic_scan() {
        // Distinct distances, so the expected set and its nearest-first
        // order are unique for every shard count.
        let table = Table::new(vec![
            vec![10, 0],
            vec![0, 7],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
            vec![7, 2],
        ])
        .unwrap();
        let l = table.required_distance_bits(10);
        let query = [2u64, 2];
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&query, &mut rng).unwrap();
        let expected = plain_knn_records(&table, &query, 2);

        for shards in [2usize, 3] {
            let sharded = c1.clone().with_shards(shards);
            let (masked, profile, audit) = sharded
                .process_secure(
                    &c2,
                    &enc_q,
                    SecureQueryParams { k: 2, l },
                    ParallelismConfig::serial(),
                    &mut rng,
                )
                .unwrap();
            assert_eq!(user.recover_records(&masked), expected, "shards = {shards}");
            assert!(audit.is_oblivious());
            // Scatter work is attributed per shard; the gather SMIN_n runs
            // over the k·S candidates only.
            assert_eq!(profile.shards().len(), shards);
            assert!(profile.ops(Stage::ShardCandidates).ciphertexts_to_c2 > 0);
            assert!(profile.ops(Stage::SecureMinimum).ciphertexts_to_c2 > 0);
        }
    }

    #[test]
    fn duplicate_records_and_ties() {
        let table = Table::new(vec![vec![4, 4], vec![4, 4], vec![0, 0], vec![7, 7]]).unwrap();
        let l = table.required_distance_bits(7);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[4, 4], &mut rng).unwrap();
        let (masked, _, _) = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 2, l },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap();
        let records = user.recover_records(&masked);
        // Both returned records must be the duplicate (4, 4) rows.
        assert_eq!(records, vec![vec![4, 4], vec![4, 4]]);
    }

    #[test]
    fn parallel_execution_gives_identical_result_set() {
        let table = Table::new(vec![
            vec![1, 2],
            vec![8, 3],
            vec![4, 4],
            vec![0, 9],
            vec![6, 6],
            vec![2, 2],
        ])
        .unwrap();
        let l = table.required_distance_bits(9);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[3, 3], &mut rng).unwrap();
        let run = |threads: usize, rng: &mut StdRng| {
            let (masked, _, _) = c1
                .process_secure(
                    &c2,
                    &enc_q,
                    SecureQueryParams { k: 3, l },
                    ParallelismConfig { threads },
                    rng,
                )
                .unwrap();
            let mut r = user.recover_records(&masked);
            r.sort();
            r
        };
        assert_eq!(run(1, &mut rng), run(4, &mut rng));
    }

    #[test]
    fn k_equals_n_returns_whole_table() {
        let table = Table::new(vec![vec![1], vec![5], vec![3]]).unwrap();
        let l = table.required_distance_bits(5);
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[2], &mut rng).unwrap();
        let (masked, _, _) = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 3, l },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap();
        let mut records = user.recover_records(&masked);
        records.sort();
        assert_eq!(records, vec![vec![1], vec![3], vec![5]]);
    }

    #[test]
    fn sharded_k_equals_n_returns_whole_table() {
        // k = n with more shards than surviving candidates per shard:
        // every record is a candidate and the gather must drain them all.
        let table = Table::new(vec![vec![1], vec![5], vec![3], vec![9]]).unwrap();
        let l = table.required_distance_bits(9);
        let (c1, c2, user, mut rng) = setup(&table);
        let sharded = c1.with_shards(3);
        let enc_q = user.encrypt_query(&[2], &mut rng).unwrap();
        let (masked, _, _) = sharded
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 4, l },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap();
        let mut records = user.recover_records(&masked);
        records.sort();
        assert_eq!(records, vec![vec![1], vec![3], vec![5], vec![9]]);
    }

    #[test]
    fn invalid_l_is_reported() {
        let table = Table::new(vec![vec![1], vec![2]]).unwrap();
        let (c1, c2, user, mut rng) = setup(&table);
        let enc_q = user.encrypt_query(&[1], &mut rng).unwrap();
        let err = c1
            .process_secure(
                &c2,
                &enc_q,
                SecureQueryParams { k: 1, l: 0 },
                ParallelismConfig::serial(),
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, SknnError::Protocol(_)));
    }
}
