//! Plaintext relational tables.

use crate::SknnError;

/// A plaintext table of `n` records with `m` non-negative integer attributes,
/// exactly the shape the paper assumes (attribute values and squared
/// distances all lie in `[0, 2^l)`).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table {
    rows: Vec<Vec<u64>>,
    attributes: usize,
}

impl Table {
    /// Builds a table from row-major data.
    ///
    /// # Errors
    /// Returns [`SknnError::MalformedTable`] when the table is empty or the
    /// rows have inconsistent widths.
    pub fn new(rows: Vec<Vec<u64>>) -> Result<Self, SknnError> {
        let attributes = match rows.first() {
            None => {
                return Err(SknnError::MalformedTable {
                    reason: "no records",
                })
            }
            Some(first) if first.is_empty() => {
                return Err(SknnError::MalformedTable {
                    reason: "records have no attributes",
                })
            }
            Some(first) => first.len(),
        };
        if rows.iter().any(|r| r.len() != attributes) {
            return Err(SknnError::MalformedTable {
                reason: "records have inconsistent numbers of attributes",
            });
        }
        Ok(Table { rows, attributes })
    }

    /// Number of records (`n` in the paper).
    pub fn num_records(&self) -> usize {
        self.rows.len()
    }

    /// Number of attributes (`m` in the paper).
    pub fn num_attributes(&self) -> usize {
        self.attributes
    }

    /// Borrow a record by index.
    pub fn record(&self, i: usize) -> &[u64] {
        &self.rows[i]
    }

    /// Borrow all records.
    pub fn records(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// The largest attribute value appearing anywhere in the table.
    pub fn max_attribute_value(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| r.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// The smallest `l` such that every squared Euclidean distance between a
    /// record of this table and any query whose attributes stay within
    /// `max_query_value` is strictly below `2^l − 1`.
    ///
    /// The strict bound matters: SkNN_m marks already-selected records by
    /// saturating their distance to the all-ones value `2^l − 1`, so genuine
    /// distances must never reach it.
    pub fn required_distance_bits(&self, max_query_value: u64) -> usize {
        let span = self.max_attribute_value().max(max_query_value) as u128;
        let worst = self.attributes as u128 * span * span;
        // Need worst < 2^l − 1, i.e. 2^l > worst + 1.
        let mut l = 1usize;
        while (1u128 << l) <= worst + 1 {
            l += 1;
            if l >= 127 {
                break;
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Table::new(vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        assert_eq!(t.num_records(), 2);
        assert_eq!(t.num_attributes(), 3);
        assert_eq!(t.record(1), &[4, 5, 6]);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.max_attribute_value(), 6);
    }

    #[test]
    fn malformed_tables_rejected() {
        assert!(matches!(
            Table::new(vec![]),
            Err(SknnError::MalformedTable { .. })
        ));
        assert!(matches!(
            Table::new(vec![vec![]]),
            Err(SknnError::MalformedTable { .. })
        ));
        assert!(matches!(
            Table::new(vec![vec![1, 2], vec![3]]),
            Err(SknnError::MalformedTable { .. })
        ));
    }

    #[test]
    fn required_distance_bits_is_safe() {
        let t = Table::new(vec![vec![3, 3], vec![0, 0]]).unwrap();
        // Worst case: 2 attributes × 3² = 18 → need 2^l − 1 > 18 → l = 5.
        let l = t.required_distance_bits(3);
        assert!((1u128 << l) - 1 > 18);
        assert!(l <= 6);

        // A larger query domain dominates.
        let l2 = t.required_distance_bits(100);
        assert!((1u128 << l2) - 1 > 2 * 100 * 100);
    }

    #[test]
    fn required_distance_bits_heart_disease_scale() {
        // 10 attributes bounded by ~564 (cholesterol) — the paper's example.
        let t = Table::new(vec![vec![564; 10]]).unwrap();
        let l = t.required_distance_bits(564);
        assert!((1u128 << l) - 1 > 10 * 564 * 564);
        assert!(l <= 24);
    }
}
