//! The four roles of the outsourced-database setting: the data owner (Alice),
//! the query user (Bob), and the two clouds.
//!
//! Cloud C2 is any [`sknn_protocols::KeyHolder`]; cloud C1 is [`CloudC1`],
//! whose two query-processing entry points live in the `sknn_basic` and
//! `sknn_secure` modules.

use crate::{EncryptedDatabase, EncryptedQuery, MaskedResult, SknnError, Table};
use rand::RngCore;
use sknn_bigint::{random_below, BigUint};
use sknn_paillier::{Keypair, PooledEncryptor, PrivateKey, PublicKey};
use sknn_protocols::{KeyHolder, PackedParams};

/// Alice: generates the key pair, encrypts her database attribute-wise and
/// outsources it.
#[derive(Clone, Debug)]
pub struct DataOwner {
    keypair: Keypair,
}

impl DataOwner {
    /// Creates a data owner with a fresh key pair of `key_bits` bits.
    pub fn new<R: RngCore + ?Sized>(key_bits: usize, rng: &mut R) -> Self {
        DataOwner {
            keypair: Keypair::generate(key_bits, rng),
        }
    }

    /// Wraps an existing key pair (useful for reproducible tests).
    pub fn from_keypair(keypair: Keypair) -> Self {
        DataOwner { keypair }
    }

    /// The public key that Bob and both clouds operate under.
    pub fn public_key(&self) -> &PublicKey {
        self.keypair.public_key()
    }

    /// The secret key Alice hands to cloud C2 when outsourcing.
    pub fn private_key(&self) -> &PrivateKey {
        self.keypair.private_key()
    }

    /// Encrypts a plaintext table attribute-wise, producing the database that
    /// is outsourced to cloud C1.
    ///
    /// # Errors
    /// Returns [`SknnError::Paillier`] when an attribute does not fit the
    /// key's message space `[0, N)` — reachable with a very small key and
    /// large attribute values, and a configuration mistake rather than a
    /// reason to panic.
    pub fn encrypt_table<R: RngCore + ?Sized>(
        &self,
        table: &Table,
        rng: &mut R,
    ) -> Result<EncryptedDatabase, SknnError> {
        let pk = self.public_key();
        let records = table
            .records()
            .iter()
            .map(|row| self.encrypt_record(row, rng))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EncryptedDatabase::from_records(records, pk.clone()))
    }

    /// Encrypts one record attribute-wise — the owner-side half of a dynamic
    /// append: the resulting ciphertexts are what the owner ships to cloud C1
    /// (`SknnEngine::append_records`) to grow an already-outsourced dataset
    /// without re-encrypting the table.
    ///
    /// # Errors
    /// Returns [`SknnError::Paillier`] when an attribute does not fit the
    /// key's message space `[0, N)`.
    pub fn encrypt_record<R: RngCore + ?Sized>(
        &self,
        record: &[u64],
        rng: &mut R,
    ) -> Result<crate::EncryptedRecord, SknnError> {
        let pk = self.public_key();
        record
            .iter()
            .map(|&v| pk.try_encrypt_u64(v, rng).map_err(SknnError::from))
            .collect()
    }
}

/// Bob: encrypts his query, and combines the two result shares at the end.
#[derive(Clone, Debug)]
pub struct QueryUser {
    pk: PublicKey,
}

impl QueryUser {
    /// Creates a query user who knows the data owner's public key.
    pub fn new(pk: PublicKey) -> Self {
        QueryUser { pk }
    }

    /// The public key used to encrypt queries.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// Encrypts a query record attribute-wise. This is the only cryptographic
    /// work Bob performs before receiving results — the cost the paper reports
    /// as a few milliseconds.
    ///
    /// # Errors
    /// Returns [`SknnError::Paillier`] when a query attribute does not fit
    /// the key's message space `[0, N)` (too-small key + large coordinate).
    pub fn encrypt_query<R: RngCore + ?Sized>(
        &self,
        query: &[u64],
        rng: &mut R,
    ) -> Result<EncryptedQuery, SknnError> {
        let attrs = query
            .iter()
            .map(|&v| self.pk.try_encrypt_u64(v, rng).map_err(SknnError::from))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EncryptedQuery::new(attrs))
    }

    /// Combines the masks received from C1 with the masked plaintexts received
    /// from C2: `t′_{j,h} = γ′_{j,h} − r_{j,h} mod N`.
    ///
    /// # Panics
    /// Panics if a recovered attribute does not fit in a `u64` — this cannot
    /// happen when both shares come from an honest execution over a table of
    /// `u64` attributes.
    pub fn recover_records(&self, result: &MaskedResult) -> Vec<Vec<u64>> {
        let n = self.pk.n();
        result
            .masked_values
            .iter()
            .zip(result.masks.iter())
            .map(|(values, masks)| {
                values
                    .iter()
                    .zip(masks.iter())
                    .map(|(gamma, r)| {
                        gamma
                            .mod_sub(&r.rem_ref(n), n)
                            .to_u64()
                            .expect("recovered attribute does not fit in u64")
                    })
                    .collect()
            })
            .collect()
    }
}

/// Cloud C1: hosts the encrypted database and drives both query protocols.
#[derive(Clone, Debug)]
pub struct CloudC1 {
    db: EncryptedDatabase,
    /// Offline-randomness-backed encryptor for C1's own fresh encryptions
    /// (SBD masks, result-mask re-randomization); `None` pays each
    /// exponentiation inline.
    encryptor: Option<PooledEncryptor>,
    /// Slot-packing parameters for the SSED/SBD fast paths; `None` keeps
    /// every exchange on the scalar paths.
    packing: Option<PackedParams>,
}

impl CloudC1 {
    /// Creates the cloud from an outsourced encrypted database.
    pub fn new(db: EncryptedDatabase) -> Self {
        CloudC1 {
            db,
            encryptor: None,
            packing: None,
        }
    }

    /// Attaches a pooled encryptor: C1's fresh encryptions (the SBD round
    /// masks and the final result-masking step) consume precomputed
    /// `r^N mod N²` units instead of exponentiating online.
    ///
    /// # Panics
    /// Panics when the encryptor was built for a different public key — a
    /// deployment wiring error, not a runtime condition.
    pub fn with_encryptor(mut self, encryptor: PooledEncryptor) -> Self {
        assert_eq!(
            encryptor.public_key().n(),
            self.db.public_key().n(),
            "pooled encryptor belongs to a different Paillier key"
        );
        self.encryptor = Some(encryptor);
        self
    }

    /// The attached pooled encryptor, if any.
    pub fn encryptor(&self) -> Option<&PooledEncryptor> {
        self.encryptor.as_ref()
    }

    /// Routes the SSED and SBD stages of both protocols through the
    /// slot-packed fast paths (see [`sknn_protocols::PackedParams`]).
    /// Queries still fall back to the scalar paths when the key holder does
    /// not speak the packed requests or a query's bit length exceeds the
    /// layout.
    pub fn with_packing(mut self, params: PackedParams) -> Self {
        self.packing = Some(params);
        self
    }

    /// The slot-packing parameters, if packing is enabled.
    pub fn packing(&self) -> Option<&PackedParams> {
        self.packing.as_ref()
    }

    /// Re-partitions the hosted database into `shards` shards (clamped to
    /// ≥ 1; see [`crate::EncryptedDatabase::with_shards`]), turning both
    /// query protocols into scatter–gather plans over the shards.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.db.set_shards(shards);
        self
    }

    /// The packing parameters to use against a concrete key holder: `None`
    /// when packing is off, the key holder lacks the fast path, or (for the
    /// secure protocol, which passes its distance bit length) the layout
    /// cannot hold `l`-bit values.
    pub(crate) fn effective_packing<K: KeyHolder + ?Sized>(
        &self,
        c2: &K,
        l: Option<usize>,
    ) -> Option<&PackedParams> {
        self.packing
            .as_ref()
            .filter(|p| c2.supports_packing() && l.is_none_or(|l| p.supports_bit_length(l)))
    }

    /// The hosted encrypted database.
    pub fn database(&self) -> &EncryptedDatabase {
        &self.db
    }

    /// Mutable access to the hosted database, for dynamic updates (appends
    /// and tombstones). The engine façade is the usual caller.
    pub fn database_mut(&mut self) -> &mut EncryptedDatabase {
        &mut self.db
    }

    /// The public key of the hosted database.
    pub fn public_key(&self) -> &PublicKey {
        self.db.public_key()
    }

    /// Validates a query against the hosted database and the requested `k`.
    /// `n` is the number of *live* records: tombstoned records cannot be
    /// returned, so they cannot be counted toward the valid `k` range either.
    pub(crate) fn validate_query(&self, query: &EncryptedQuery, k: usize) -> Result<(), SknnError> {
        let n = self.db.num_live();
        let m = self.db.num_attributes();
        if query.num_attributes() != m {
            return Err(SknnError::QueryDimensionMismatch {
                table: m,
                query: query.num_attributes(),
            });
        }
        if k == 0 || k > n {
            return Err(SknnError::InvalidK { k, n });
        }
        Ok(())
    }

    /// Final step shared by both protocols (steps 4–6 of Algorithm 5): mask
    /// every result attribute with fresh randomness, let C2 decrypt the masked
    /// values, and return the two shares Bob needs.
    pub(crate) fn mask_and_reveal<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c2: &K,
        encrypted_results: &[Vec<sknn_paillier::Ciphertext>],
        rng: &mut R,
    ) -> MaskedResult {
        let pk = self.public_key();
        let mut masks = Vec::with_capacity(encrypted_results.len());
        let mut gammas_flat = Vec::new();
        for record in encrypted_results {
            let mut record_masks = Vec::with_capacity(record.len());
            for attr in record {
                let r = random_below(rng, pk.n());
                // γ_{j,h} = E(t′_{j,h}) · E(r_{j,h}): a fresh encryption of the
                // mask re-randomizes the ciphertext C2 is about to decrypt.
                // r < N by construction, so pooled encryption cannot fail.
                let e_r = match &self.encryptor {
                    Some(enc) => enc.encrypt(&r).expect("mask is below N"),
                    None => pk.encrypt(&r, rng),
                };
                gammas_flat.push(pk.add(attr, &e_r));
                record_masks.push(r);
            }
            masks.push(record_masks);
        }

        let decrypted_flat = c2.decrypt_masked_batch(&gammas_flat);

        let m = encrypted_results.first().map_or(0, |r| r.len());
        let masked_values: Vec<Vec<BigUint>> = decrypted_flat
            .chunks(m.max(1))
            .map(|chunk| chunk.to_vec())
            .take(encrypted_results.len())
            .collect();

        MaskedResult {
            masks,
            masked_values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_protocols::LocalKeyHolder;

    fn small_table() -> Table {
        Table::new(vec![vec![1, 2], vec![3, 4], vec![5, 6]]).unwrap()
    }

    #[test]
    fn owner_encrypts_whole_table() {
        let mut rng = StdRng::seed_from_u64(1);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(&small_table(), &mut rng).unwrap();
        assert_eq!(db.num_records(), 3);
        assert_eq!(db.num_attributes(), 2);
        // Every cell decrypts back to the original value.
        let sk = owner.private_key();
        assert_eq!(sk.try_decrypt_u64(&db.record(1)[0]), Ok(3));
        assert_eq!(sk.try_decrypt_u64(&db.record(2)[1]), Ok(6));
    }

    #[test]
    fn query_user_roundtrip_through_masking() {
        let mut rng = StdRng::seed_from_u64(2);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(&small_table(), &mut rng).unwrap();
        let c1 = CloudC1::new(db);
        let c2 = LocalKeyHolder::new(owner.private_key().clone(), 3);
        let user = QueryUser::new(owner.public_key().clone());

        // Pretend records 2 and 0 are the query results.
        let results = vec![
            c1.database().record(2).clone(),
            c1.database().record(0).clone(),
        ];
        let masked = c1.mask_and_reveal(&c2, &results, &mut rng);
        assert_eq!(masked.num_neighbors(), 2);
        let recovered = user.recover_records(&masked);
        assert_eq!(recovered, vec![vec![5, 6], vec![1, 2]]);
    }

    #[test]
    fn masks_and_masked_values_alone_look_random() {
        let mut rng = StdRng::seed_from_u64(4);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(&small_table(), &mut rng).unwrap();
        let c1 = CloudC1::new(db);
        let c2 = LocalKeyHolder::new(owner.private_key().clone(), 5);

        let results = vec![c1.database().record(0).clone()];
        let masked = c1.mask_and_reveal(&c2, &results, &mut rng);
        // Neither share should equal the plaintext attribute values
        // (probability of coincidence ≈ 2^-96 per attribute).
        assert_ne!(masked.masked_values[0][0], BigUint::from_u64(1));
        assert_ne!(masked.masks[0][0], BigUint::from_u64(1));
    }

    #[test]
    fn validation_rejects_bad_queries() {
        let mut rng = StdRng::seed_from_u64(6);
        let owner = DataOwner::new(96, &mut rng);
        let db = owner.encrypt_table(&small_table(), &mut rng).unwrap();
        let c1 = CloudC1::new(db);
        let user = QueryUser::new(owner.public_key().clone());

        let wrong_width = user.encrypt_query(&[1, 2, 3], &mut rng).unwrap();
        assert!(matches!(
            c1.validate_query(&wrong_width, 1),
            Err(SknnError::QueryDimensionMismatch { .. })
        ));

        let ok = user.encrypt_query(&[1, 2], &mut rng).unwrap();
        assert!(matches!(
            c1.validate_query(&ok, 0),
            Err(SknnError::InvalidK { .. })
        ));
        assert!(matches!(
            c1.validate_query(&ok, 4),
            Err(SknnError::InvalidK { .. })
        ));
        assert!(c1.validate_query(&ok, 3).is_ok());
    }

    #[test]
    fn oversized_values_error_instead_of_panicking() {
        // A 64-bit modulus N < 2^64 cannot hold u64::MAX: outsourcing or
        // querying such a value must surface a typed error, not a panic.
        let mut rng = StdRng::seed_from_u64(8);
        let owner = DataOwner::new(64, &mut rng);
        let table = Table::new(vec![vec![u64::MAX]]).unwrap();
        assert!(matches!(
            owner.encrypt_table(&table, &mut rng),
            Err(SknnError::Paillier(_))
        ));
        let user = QueryUser::new(owner.public_key().clone());
        assert!(matches!(
            user.encrypt_query(&[u64::MAX], &mut rng),
            Err(SknnError::Paillier(_))
        ));
    }

    #[test]
    fn from_keypair_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = Keypair::generate(96, &mut rng);
        let owner = DataOwner::from_keypair(kp.clone());
        assert_eq!(owner.public_key(), kp.public_key());
    }
}
