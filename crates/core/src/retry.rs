//! Retry policy and failover reporting for query execution.
//!
//! The transport layer turns failures into typed values
//! ([`sknn_protocols::transport::TransportError`], surfaced through
//! [`crate::SknnError::Protocol`]); this module holds the *policy* for what
//! the executor does with them — how many times a failed stage may re-run,
//! how long to back off between attempts, how long one request may wait —
//! and the *report* of what failure handling a query actually performed.
//!
//! Retrying is sound because every scatter task is a pure function of the
//! query's derived seed and its shard view: re-running it on any session of
//! the pool (same logical C2, same key) reproduces bit-identical
//! ciphertext-level behavior, so a retried query returns exactly what the
//! fault-free run would have. See `DESIGN.md`, "Failure model & failover".

use std::time::Duration;

/// How the executor responds to transport failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per failed unit of work (the first run counts as
    /// attempt 1, so `1` means "never retry"). Clamped to ≥ 1 in use.
    pub max_attempts: usize,
    /// Backoff before re-attempt `n` (1-based): `base_backoff · n`, a
    /// linear ramp — failover already moves work to a different session, so
    /// aggressive exponential growth buys nothing within one query.
    pub base_backoff: Duration,
    /// Per-request deadline installed on every pool session. `None` keeps
    /// the pre-deadline behavior (requests wait forever), which also means
    /// a dropped frame hangs the query — deployments that want liveness
    /// guarantees set this.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// No retries, no deadline: the exact pre-resilience behavior. This is
    /// the [`Default`], so existing configurations change nothing.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            deadline: None,
        }
    }

    /// A deployment-shaped default: 3 attempts, 25 ms base backoff, 30 s
    /// per-request deadline.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            deadline: Some(Duration::from_secs(30)),
        }
    }

    /// Whether any failure handling is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.max_attempts > 1 || self.deadline.is_some()
    }

    /// The backoff slept before re-attempt `n` (1-based; attempt 0 is the
    /// original run and never sleeps).
    pub fn backoff_before(&self, attempt: usize) -> Duration {
        self.base_backoff.saturating_mul(attempt.min(64) as u32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// One shard stage that was re-executed after a failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRetry {
    /// The shard whose scatter stage re-ran.
    pub shard: usize,
    /// Session index the stage was originally pinned to.
    pub from_session: usize,
    /// Session index the re-run used (`== from_session` for a same-session
    /// retry, different for a failover onto a survivor).
    pub to_session: usize,
    /// Display form of the error that triggered the re-run.
    pub error: String,
}

impl ShardRetry {
    /// Whether this retry moved the shard to a different session.
    pub fn is_failover(&self) -> bool {
        self.from_session != self.to_session
    }
}

/// What failure handling one query actually performed. Empty (the
/// [`Default`]) for a fault-free run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// Per-shard scatter stages that re-ran, in the order they were retried.
    pub shard_retries: Vec<ShardRetry>,
    /// Whole-query re-runs (the monolithic path has no per-shard stages to
    /// retry, so its failures re-run the query).
    pub query_retries: usize,
    /// Sessions found dead and excluded from the re-run's session set.
    pub dead_sessions: Vec<usize>,
}

impl RetryReport {
    /// Whether any failure handling happened at all.
    pub fn is_clean(&self) -> bool {
        self.shard_retries.is_empty() && self.query_retries == 0 && self.dead_sessions.is_empty()
    }

    /// Shards that ended up on a different session than their original pin.
    pub fn failed_over_shards(&self) -> Vec<usize> {
        self.shard_retries
            .iter()
            .filter(|r| r.is_failover())
            .map(|r| r.shard)
            .collect()
    }

    /// Folds another report into this one (used when a query is re-run and
    /// both runs did failure handling).
    pub fn absorb(&mut self, other: RetryReport) {
        self.shard_retries.extend(other.shard_retries);
        self.query_retries += other.query_retries;
        for s in other.dead_sessions {
            if !self.dead_sessions.contains(&s) {
                self.dead_sessions.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_changes_nothing() {
        let p = RetryPolicy::default();
        assert_eq!(p, RetryPolicy::none());
        assert_eq!(p.max_attempts, 1);
        assert!(p.deadline.is_none());
        assert!(!p.is_enabled());
        assert_eq!(p.backoff_before(3), Duration::ZERO);
    }

    #[test]
    fn standard_policy_backs_off_linearly() {
        let p = RetryPolicy::standard();
        assert!(p.is_enabled());
        assert_eq!(p.backoff_before(1), Duration::from_millis(25));
        assert_eq!(p.backoff_before(2), Duration::from_millis(50));
        // The ramp is clamped so a pathological attempt count cannot
        // overflow into a multi-hour sleep.
        assert_eq!(p.backoff_before(1_000_000), Duration::from_millis(25 * 64));
    }

    #[test]
    fn report_tracks_failovers_and_absorbs() {
        let mut report = RetryReport::default();
        assert!(report.is_clean());
        report.shard_retries.push(ShardRetry {
            shard: 2,
            from_session: 1,
            to_session: 0,
            error: "connection closed".into(),
        });
        report.shard_retries.push(ShardRetry {
            shard: 3,
            from_session: 0,
            to_session: 0,
            error: "request timed out after 10 ms".into(),
        });
        assert!(!report.is_clean());
        assert_eq!(report.failed_over_shards(), vec![2]);

        let other = RetryReport {
            shard_retries: vec![],
            query_retries: 1,
            dead_sessions: vec![1],
        };
        report.absorb(other.clone());
        report.absorb(other);
        assert_eq!(report.query_retries, 2);
        assert_eq!(report.dead_sessions, vec![1]);
    }
}
