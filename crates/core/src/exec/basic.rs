//! SkNN_b as a staged plan (Algorithm 5, scatter–gather form).
//!
//! The paper's protocol ships every encrypted distance to C2 in one
//! exchange; the sharded plan scatters SSED and a per-shard top-k exchange
//! across the shard-pinned sessions, then gathers: one more top-k over the
//! ≤ k·S surviving candidates' *scalar* distance ciphertexts on the
//! primary session. Because C2 decrypts the same distance values either
//! way and both the per-shard and the merge selections order by
//! (distance, physical index), the result — including tie-breaks — is
//! identical to the monolithic scan.

use super::stages::{BasicCandidate, FinalizeStage, SsedStage, TopKStage};
use super::SessionSet;
use crate::meter::OpMeter;
use crate::parallel::{parallel_map, ParallelismConfig};
use crate::profile::{QueryProfile, Stage};
use crate::roles::CloudC1;
use crate::seed::{derive_seeds, derived_rng};
use crate::{AccessPatternAudit, EncryptedQuery, MaskedResult, SknnError};
use rand::RngCore;
use sknn_paillier::Ciphertext;
use sknn_protocols::KeyHolder;

/// Runs the full SkNN_b plan over the given sessions (see the module
/// docs): monolithic when at most one shard holds live records,
/// scatter–gather otherwise.
pub(crate) fn execute_basic<R: RngCore + ?Sized>(
    c1: &CloudC1,
    sessions: &SessionSet<'_>,
    query: &EncryptedQuery,
    k: usize,
    parallelism: ParallelismConfig,
    rng: &mut R,
) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit), SknnError> {
    c1.validate_query(query, k)?;
    let db = c1.database();
    let mut profile = QueryProfile::new();

    // Tombstoned records are excluded before any protocol message is
    // formed: the protocol run is indistinguishable from one over a
    // database that never contained them. Shards tombstoning emptied drop
    // out of the plan.
    let views: Vec<_> = db
        .shard_views()
        .into_iter()
        .filter(|v| v.num_live() > 0)
        .collect();

    // ── Monolithic plan: one populated shard is the paper's Algorithm 5 ──
    if views.len() <= 1 {
        let c2 = sessions.primary();
        let meter = OpMeter::new(c2);
        let live = db.live_indices();

        // Step 2: E(d_i) ← SSED(E(Q), E(t_i)) for every live record.
        let distances = profile.time(Stage::DistanceComputation, || {
            SsedStage::for_basic(c1, parallelism).run(&meter, query, live, rng)
        })?;
        profile.record_ops(Stage::DistanceComputation, meter.take());

        // Step 3: C2 decrypts the distances and returns the top-k index
        // list δ.
        let top_k = profile.time(Stage::RecordSelection, || {
            TopKStage::new(k).run(c1, &meter, &distances)
        })?;
        profile.record_ops(Stage::RecordSelection, meter.take());

        // Steps 4–6: mask the chosen records and produce Bob's two shares.
        // `top_k` indexes the live view; map back to physical indices.
        let top_k_physical: Vec<usize> = top_k.iter().map(|&i| distances.live[i]).collect();
        let chosen: Vec<Vec<Ciphertext>> = top_k_physical
            .iter()
            .map(|&i| db.record(i).clone())
            .collect();
        let masked = profile.time(Stage::Finalization, || {
            FinalizeStage.run(c1, &meter, &chosen, rng)
        });
        profile.record_ops(Stage::Finalization, meter.take());

        let audit = AccessPatternAudit::basic_protocol(&top_k_physical);
        return Ok((masked, profile, audit));
    }

    // ── Scatter: per-shard SSED + top-k candidates on pinned sessions ──
    let seeds = derive_seeds(rng, views.len());
    // Ceiling for the same reason run_batch uses it: floor would strand
    // threads whenever shards don't divide the budget evenly.
    let inner = ParallelismConfig {
        threads: parallelism.threads.div_ceil(views.len()).max(1),
    };
    let shard_outs = parallel_map(parallelism.threads, &views, |i, view| {
        let mut shard_rng = derived_rng(seeds[i]);
        let shard = view.shard();
        let c2 = sessions.for_shard(shard);
        let meter = OpMeter::new(c2);
        let mut p = QueryProfile::new();

        let distances = p.time(Stage::DistanceComputation, || {
            SsedStage::for_basic(c1, inner).run(&meter, query, view.live_indices(), &mut shard_rng)
        })?;
        p.record_shard_ops(shard, Stage::DistanceComputation, meter.take());

        let candidates = p.time(Stage::ShardCandidates, || {
            TopKStage::new(k).candidates(c1, &meter, query, &distances, &mut shard_rng)
        })?;
        p.record_shard_ops(shard, Stage::ShardCandidates, meter.take());
        Ok::<_, SknnError>((p, candidates))
    });

    let mut candidates: Vec<BasicCandidate> = Vec::new();
    for out in shard_outs {
        let (p, shard_candidates) = out?;
        profile.merge(&p);
        candidates.extend(shard_candidates);
    }

    // ── Gather: one top-k over the ≤ k·S candidates on the primary
    // session. Sorting by physical index restores the monolithic scan's
    // (distance, storage position) total order, so equal-distance
    // tie-breaks match it exactly.
    candidates.sort_by_key(|c| c.physical);
    let c2 = sessions.primary();
    let meter = OpMeter::new(c2);
    let merge_cts: Vec<Ciphertext> = candidates.iter().map(|c| c.distance.clone()).collect();
    let top = profile.time(Stage::RecordSelection, || {
        meter.top_k_indices(&merge_cts, k)
    });
    profile.record_ops(Stage::RecordSelection, meter.take());

    let top_k_physical: Vec<usize> = top.iter().map(|&i| candidates[i].physical).collect();
    let chosen: Vec<Vec<Ciphertext>> = top_k_physical
        .iter()
        .map(|&i| db.record(i).clone())
        .collect();
    let masked = profile.time(Stage::Finalization, || {
        FinalizeStage.run(c1, &meter, &chosen, rng)
    });
    profile.record_ops(Stage::Finalization, meter.take());

    let audit = AccessPatternAudit::basic_protocol(&top_k_physical);
    Ok((masked, profile, audit))
}
