//! SkNN_b as a staged plan (Algorithm 5, scatter–gather form).
//!
//! The paper's protocol ships every encrypted distance to C2 in one
//! exchange; the sharded plan scatters SSED and a per-shard top-k exchange
//! across the shard-pinned sessions, then gathers: one more top-k over the
//! ≤ k·S surviving candidates' *scalar* distance ciphertexts on the
//! primary session. Because C2 decrypts the same distance values either
//! way and both the per-shard and the merge selections order by
//! (distance, physical index), the result — including tie-breaks — is
//! identical to the monolithic scan.
//!
//! Every stage runs inside [`super::run_contained`], so a dying session
//! surfaces as a typed error instead of an unwind; a failed scatter task is
//! a pure function of its derived seed and shard view, so
//! [`super::retry_shard_stage`] can re-run it — on the same session or
//! re-pinned onto a survivor — with bit-identical protocol behavior.

use super::stages::{BasicCandidate, FinalizeStage, SsedStage, TopKStage};
use super::{retry_shard_stage, run_contained, SessionSet};
use crate::meter::OpMeter;
use crate::parallel::{parallel_map, ParallelismConfig};
use crate::profile::{QueryProfile, Stage};
use crate::retry::{RetryPolicy, RetryReport};
use crate::roles::CloudC1;
use crate::seed::{derive_seeds, derived_rng};
use crate::{AccessPatternAudit, EncryptedQuery, MaskedResult, ShardView, SknnError};
use rand::RngCore;
use sknn_paillier::Ciphertext;
use sknn_protocols::KeyHolder;

/// Runs the full SkNN_b plan over the given sessions (see the module
/// docs): monolithic when at most one shard holds live records,
/// scatter–gather otherwise.
pub(crate) fn execute_basic<R: RngCore + ?Sized>(
    c1: &CloudC1,
    sessions: &SessionSet<'_>,
    query: &EncryptedQuery,
    k: usize,
    parallelism: ParallelismConfig,
    retry: &RetryPolicy,
    rng: &mut R,
) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit, RetryReport), SknnError> {
    c1.validate_query(query, k)?;
    let db = c1.database();
    let mut profile = QueryProfile::new();

    // Tombstoned records are excluded before any protocol message is
    // formed: the protocol run is indistinguishable from one over a
    // database that never contained them. Shards tombstoning emptied drop
    // out of the plan.
    let views: Vec<_> = db
        .shard_views()
        .into_iter()
        .filter(|v| v.num_live() > 0)
        .collect();

    // ── Monolithic plan: one populated shard is the paper's Algorithm 5 ──
    // There is no per-shard stage to retry here; failures surface as typed
    // errors and the engine's whole-query retry handles them.
    if views.len() <= 1 {
        let rng = &mut *rng;
        let profile_ref = &mut profile;
        let (masked, audit) = run_contained(move || {
            let c2 = sessions.primary();
            let meter = OpMeter::new(c2);
            let live = db.live_indices();

            // Step 2: E(d_i) ← SSED(E(Q), E(t_i)) for every live record.
            let distances = profile_ref.time(Stage::DistanceComputation, || {
                SsedStage::for_basic(c1, parallelism).run(&meter, query, live, rng)
            })?;
            profile_ref.record_ops(Stage::DistanceComputation, meter.take());

            // Step 3: C2 decrypts the distances and returns the top-k index
            // list δ.
            let top_k = profile_ref.time(Stage::RecordSelection, || {
                TopKStage::new(k).run(c1, &meter, &distances)
            })?;
            profile_ref.record_ops(Stage::RecordSelection, meter.take());

            // Steps 4–6: mask the chosen records and produce Bob's two
            // shares. `top_k` indexes the live view; map back to physical
            // indices.
            let top_k_physical: Vec<usize> = top_k.iter().map(|&i| distances.live[i]).collect();
            let chosen: Vec<Vec<Ciphertext>> = top_k_physical
                .iter()
                .map(|&i| db.record(i).clone())
                .collect();
            let masked = profile_ref.time(Stage::Finalization, || {
                FinalizeStage.run(c1, &meter, &chosen, rng)
            });
            profile_ref.record_ops(Stage::Finalization, meter.take());

            let audit = AccessPatternAudit::basic_protocol(&top_k_physical);
            Ok((masked, audit))
        })?;
        return Ok((masked, profile, audit, RetryReport::default()));
    }

    // ── Scatter: per-shard SSED + top-k candidates on pinned sessions ──
    let seeds = derive_seeds(rng, views.len());
    // Ceiling for the same reason run_batch uses it: floor would strand
    // threads whenever shards don't divide the budget evenly.
    let inner = ParallelismConfig {
        threads: parallelism.threads.div_ceil(views.len()).max(1),
    };
    // The scatter task: a pure function of (derived seed, shard view,
    // session), so a re-run on any session is bit-identical.
    let run_shard = |i: usize,
                     view: &ShardView,
                     c2: &dyn KeyHolder|
     -> Result<(QueryProfile, Vec<BasicCandidate>), SknnError> {
        let mut shard_rng = derived_rng(seeds[i]);
        let shard = view.shard();
        let meter = OpMeter::new(c2);
        let mut p = QueryProfile::new();

        let distances = p.time(Stage::DistanceComputation, || {
            SsedStage::for_basic(c1, inner).run(&meter, query, view.live_indices(), &mut shard_rng)
        })?;
        p.record_shard_ops(shard, Stage::DistanceComputation, meter.take());

        let candidates = p.time(Stage::ShardCandidates, || {
            TopKStage::new(k).candidates(c1, &meter, query, &distances, &mut shard_rng)
        })?;
        p.record_shard_ops(shard, Stage::ShardCandidates, meter.take());
        Ok((p, candidates))
    };
    let shard_outs = parallel_map(parallelism.threads, &views, |i, view| {
        run_contained(|| run_shard(i, view, sessions.for_shard(view.shard())))
    });

    // Serial recovery pass: re-run failed scatter tasks per the policy,
    // re-pinning dead sessions' shards onto survivors.
    let mut report = RetryReport::default();
    let mut dead: Vec<usize> = Vec::new();
    let mut candidates: Vec<BasicCandidate> = Vec::new();
    for (i, out) in shard_outs.into_iter().enumerate() {
        let view = &views[i];
        let (p, shard_candidates) = match out {
            Ok(ok) => ok,
            Err(e) => retry_shard_stage(
                sessions,
                view.shard(),
                retry,
                &mut dead,
                &mut report,
                e,
                |c2| run_shard(i, view, c2),
            )?,
        };
        profile.merge(&p);
        candidates.extend(shard_candidates);
    }
    report.dead_sessions = dead;

    // ── Gather: one top-k over the ≤ k·S candidates on the primary
    // session. Sorting by physical index restores the monolithic scan's
    // (distance, storage position) total order, so equal-distance
    // tie-breaks match it exactly.
    candidates.sort_by_key(|c| c.physical);
    let profile_ref = &mut profile;
    let (masked, top_k_physical) = run_contained(move || {
        let c2 = sessions.primary();
        let meter = OpMeter::new(c2);
        let merge_cts: Vec<Ciphertext> = candidates.iter().map(|c| c.distance.clone()).collect();
        let top = profile_ref.time(Stage::RecordSelection, || {
            meter.top_k_indices(&merge_cts, k)
        });
        profile_ref.record_ops(Stage::RecordSelection, meter.take());

        let top_k_physical: Vec<usize> = top.iter().map(|&i| candidates[i].physical).collect();
        let chosen: Vec<Vec<Ciphertext>> = top_k_physical
            .iter()
            .map(|&i| db.record(i).clone())
            .collect();
        let masked = profile_ref.time(Stage::Finalization, || {
            FinalizeStage.run(c1, &meter, &chosen, rng)
        });
        profile_ref.record_ops(Stage::Finalization, meter.take());
        Ok((masked, top_k_physical))
    })?;

    let audit = AccessPatternAudit::basic_protocol(&top_k_physical);
    Ok((masked, profile, audit, report))
}
