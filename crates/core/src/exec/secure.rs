//! SkNN_m as a staged plan (Algorithm 6, scatter–gather form).
//!
//! The paper's loop — k rounds of {SMIN_n over all n bit-decomposed
//! distances, oblivious zero-test selection, indicator extraction, SBOR
//! freeze} — becomes:
//!
//! * **scatter**: each shard runs SSED + SBD and then `min(k, shard size)`
//!   of those same oblivious rounds *within the shard*, yielding the
//!   shard's k nearest records as encrypted candidates — each an
//!   (extracted record, SMIN_n-fresh distance-bit vector) pair. Nothing is
//!   decrypted: the shard rounds use the identical randomize-permute
//!   machinery, so C2 learns exactly what it learns in the monolithic run,
//!   per shard.
//! * **gather**: the primary session runs the *same* k rounds over the
//!   ≤ k·S surviving candidates instead of all n records. Since the global
//!   k nearest are each among their own shard's k nearest, the candidate
//!   set always contains the true result, and the gather extracts it in
//!   the same nearest-first order as the monolithic scan.
//!
//! Equal-distance ties may resolve differently than the monolithic run
//! (C2's tie-breaking randomness is consumed per shard), which is the same
//! caveat `SknnEngine::run_batch` documents — both outcomes are correct
//! kNN sets.

use super::stages::{FinalizeStage, SbdStage, SsedStage};
use super::{retry_shard_stage, run_contained, SessionSet};
use crate::config::SecureQueryParams;
use crate::meter::OpMeter;
use crate::parallel::{parallel_map, ParallelismConfig};
use crate::profile::{OpCounters, QueryProfile, Stage};
use crate::retry::{RetryPolicy, RetryReport};
use crate::roles::CloudC1;
use crate::seed::{derive_seeds, derived_rng};
use crate::{AccessPatternAudit, EncryptedQuery, MaskedResult, ShardView, SknnError};
use rand::RngCore;
use sknn_bigint::{random_range, BigUint};
use sknn_paillier::Ciphertext;
use sknn_protocols::{recompose_bits, secure_multiply_batch, KeyHolder, Permutation};

/// Where one oblivious selection round's work lands in the profile.
struct SelectAttribution {
    smin: Stage,
    selection: Stage,
    freeze: Stage,
    /// `Some(shard)` attributes the counters per shard (scatter rounds);
    /// `None` records plain stage totals (monolithic and gather rounds).
    shard: Option<usize>,
}

/// Attribution of the monolithic loop and the gather merge: the paper's
/// stage names, no shard.
const GATHER: SelectAttribution = SelectAttribution {
    smin: Stage::SecureMinimum,
    selection: Stage::RecordSelection,
    freeze: Stage::DistanceFreezing,
    shard: None,
};

/// Attribution of a shard's candidate-extraction rounds: everything lands
/// under [`Stage::ShardCandidates`], credited to the shard.
fn scatter_attribution(shard: usize) -> SelectAttribution {
    SelectAttribution {
        smin: Stage::ShardCandidates,
        selection: Stage::ShardCandidates,
        freeze: Stage::ShardCandidates,
        shard: Some(shard),
    }
}

fn record_ops(
    profile: &mut QueryProfile,
    attrib: &SelectAttribution,
    stage: Stage,
    counters: OpCounters,
) {
    match attrib.shard {
        Some(shard) => profile.record_shard_ops(shard, stage, counters),
        None => profile.record_ops(stage, counters),
    }
}

/// One encrypted candidate a shard's scatter rounds produced: the
/// obliviously extracted record and its distance-bit vector (the SMIN_n
/// output of the round that selected it — fresh ciphertexts, so shipping
/// them onward reveals nothing).
struct SecureCandidate {
    record: Vec<Ciphertext>,
    bits: Vec<Ciphertext>,
}

/// One oblivious selection round (steps 3(a)–3(e) of Algorithm 6) over an
/// arbitrary candidate set: SMIN_n over the bit vectors, the randomized
/// and permuted zero test, indicator-vector record extraction, and the
/// SBOR freeze that retires the winner. Returns the extracted record and
/// the winner's distance bits; `distance_bits` is updated in place (the
/// winner's row is saturated to all-ones).
fn oblivious_select_round<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
    c1: &CloudC1,
    meter: &OpMeter<'_, K>,
    records: &[&[Ciphertext]],
    distance_bits: &mut [Vec<Ciphertext>],
    profile: &mut QueryProfile,
    attrib: &SelectAttribution,
    rng: &mut R,
) -> Result<(Vec<Ciphertext>, Vec<Ciphertext>), SknnError> {
    let pk = c1.public_key();
    let n = records.len();
    let m = records.first().map_or(0, |r| r.len());
    let l = distance_bits.first().map_or(0, |b| b.len());
    let one = BigUint::one();

    // 3(a): [d_min] over the candidate set.
    let dmin_bits = profile.time(attrib.smin, || {
        sknn_protocols::secure_min_n(pk, meter, distance_bits, rng)
    })?;
    record_ops(profile, attrib, attrib.smin, meter.take());

    let selection = profile.time(attrib.selection, || {
        // 3(b): recompose E(d_min) and every E(d_i) from their bits
        // (the bits are the authoritative state — they get overwritten
        // by the freezing step below).
        let e_dmin = recompose_bits(pk, &dmin_bits);
        let e_dist: Vec<Ciphertext> = distance_bits
            .iter()
            .map(|bits| recompose_bits(pk, bits))
            .collect();

        // τ_i = E(d_min − d_i), randomized and permuted before C2 sees it.
        let tau_prime: Vec<Ciphertext> = e_dist
            .iter()
            .map(|e_di| {
                let tau = pk.sub(&e_dmin, e_di);
                let r_i = random_range(rng, &one, pk.n());
                pk.mul_plain(&tau, &r_i)
            })
            .collect();
        let pi = Permutation::random(rng, n);
        let beta = pi.apply(&tau_prime);

        // 3(c): C2 marks exactly one zero position — obliviously,
        // because of the permutation and randomization. A missing
        // zero violates the protocol invariant and surfaces as a
        // typed error instead of a silent all-zero indicator.
        let u = meter.min_selection(&beta)?;
        // 3(d): undo the permutation; V has E(1) at the winning record.
        let v = pi.apply_inverse(&u);

        // V′_{i,j} = SM(V_i, E(t_{i,j})); E(t′_{s,j}) = Π_i V′_{i,j}.
        let pairs: Vec<(Ciphertext, Ciphertext)> = (0..n)
            .flat_map(|i| {
                let v_i = v[i].clone();
                records[i]
                    .iter()
                    .map(move |attr| (v_i.clone(), attr.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let products = secure_multiply_batch(pk, meter, &pairs, rng);
        let record: Vec<Ciphertext> = (0..m)
            .map(|j| pk.sum((0..n).map(|i| &products[i * m + j])))
            .collect();
        Ok::<_, SknnError>((record, v))
    });
    record_ops(profile, attrib, attrib.selection, meter.take());
    let (selected_record, indicator) = selection?;

    // 3(e): freeze the winner's distance at the all-ones maximum via
    // SBOR so it can never win again. One batched SM round covers all
    // n·l bit positions.
    profile.time(attrib.freeze, || {
        let pairs: Vec<(Ciphertext, Ciphertext)> = (0..n)
            .flat_map(|i| {
                let v_i = indicator[i].clone();
                distance_bits[i]
                    .iter()
                    .map(move |bit| (v_i.clone(), bit.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let products = secure_multiply_batch(pk, meter, &pairs, rng);
        for i in 0..n {
            for gamma in 0..l {
                // o₁ ∨ o₂ = o₁ + o₂ − o₁·o₂ with o₁ = V_i, o₂ = d_{i,γ}.
                let sum = pk.add(&indicator[i], &distance_bits[i][gamma]);
                distance_bits[i][gamma] = pk.sub(&sum, &products[i * l + gamma]);
            }
        }
    });
    record_ops(profile, attrib, attrib.freeze, meter.take());

    Ok((selected_record, dmin_bits))
}

/// Runs the full SkNN_m plan over the given sessions (see the module
/// docs): monolithic when at most one shard holds live records,
/// scatter–gather otherwise.
pub(crate) fn execute_secure<R: RngCore + ?Sized>(
    c1: &CloudC1,
    sessions: &SessionSet<'_>,
    query: &EncryptedQuery,
    params: SecureQueryParams,
    parallelism: ParallelismConfig,
    retry: &RetryPolicy,
    rng: &mut R,
) -> Result<(MaskedResult, QueryProfile, AccessPatternAudit, RetryReport), SknnError> {
    c1.validate_query(query, params.k)?;
    let db = c1.database();
    let k = params.k;
    let l = params.l;
    let mut profile = QueryProfile::new();

    // Tombstoned records are excluded here, before any protocol message is
    // formed; shards that tombstoning emptied drop out of the plan.
    let views: Vec<_> = db
        .shard_views()
        .into_iter()
        .filter(|v| v.num_live() > 0)
        .collect();

    // ── Monolithic plan: one populated shard is the paper's Algorithm 6 ──
    // There is no per-shard stage to retry here; failures surface as typed
    // errors and the engine's whole-query retry handles them.
    if views.len() <= 1 {
        let rng = &mut *rng;
        let profile_ref = &mut profile;
        let masked = run_contained(move || {
            let c2 = sessions.primary();
            let meter = OpMeter::new(c2);
            let live = db.live_indices();

            let distances = profile_ref.time(Stage::DistanceComputation, || {
                SsedStage::for_secure(c1, l, parallelism).run(&meter, query, live, rng)
            })?;
            profile_ref.record_ops(Stage::DistanceComputation, meter.take());

            let mut distance_bits = profile_ref.time(Stage::BitDecomposition, || {
                SbdStage::new(c1, l, parallelism).run(&meter, &distances, rng)
            })?;
            profile_ref.record_ops(Stage::BitDecomposition, meter.take());

            let records: Vec<&[Ciphertext]> = distances
                .live
                .iter()
                .map(|&i| db.record(i).as_slice())
                .collect();
            let mut results = Vec::with_capacity(k);
            for _ in 0..k {
                let (record, _bits) = oblivious_select_round(
                    c1,
                    &meter,
                    &records,
                    &mut distance_bits,
                    profile_ref,
                    &GATHER,
                    rng,
                )?;
                results.push(record);
            }

            let masked = profile_ref.time(Stage::Finalization, || {
                FinalizeStage.run(c1, &meter, &results, rng)
            });
            profile_ref.record_ops(Stage::Finalization, meter.take());
            Ok(masked)
        })?;
        return Ok((
            masked,
            profile,
            AccessPatternAudit::nothing_revealed(),
            RetryReport::default(),
        ));
    }

    // ── Scatter: each shard extracts its k nearest as encrypted candidates ──
    let seeds = derive_seeds(rng, views.len());
    // Ceiling for the same reason run_batch uses it: floor would strand
    // threads whenever shards don't divide the budget evenly.
    let inner = ParallelismConfig {
        threads: parallelism.threads.div_ceil(views.len()).max(1),
    };
    // The scatter task: a pure function of (derived seed, shard view,
    // session), so a re-run on any session is bit-identical.
    let run_shard = |i: usize,
                     view: &ShardView,
                     c2: &dyn KeyHolder|
     -> Result<(QueryProfile, Vec<SecureCandidate>), SknnError> {
        let mut shard_rng = derived_rng(seeds[i]);
        let shard = view.shard();
        let meter = OpMeter::new(c2);
        let mut p = QueryProfile::new();

        let distances = p.time(Stage::DistanceComputation, || {
            SsedStage::for_secure(c1, l, inner).run(
                &meter,
                query,
                view.live_indices(),
                &mut shard_rng,
            )
        })?;
        p.record_shard_ops(shard, Stage::DistanceComputation, meter.take());

        let mut bits = p.time(Stage::BitDecomposition, || {
            SbdStage::new(c1, l, inner).run(&meter, &distances, &mut shard_rng)
        })?;
        p.record_shard_ops(shard, Stage::BitDecomposition, meter.take());

        let records: Vec<&[Ciphertext]> = distances
            .live
            .iter()
            .map(|&i| db.record(i).as_slice())
            .collect();
        let attrib = scatter_attribution(shard);
        let rounds = k.min(records.len());
        let mut candidates = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let (record, dmin_bits) = oblivious_select_round(
                c1,
                &meter,
                &records,
                &mut bits,
                &mut p,
                &attrib,
                &mut shard_rng,
            )?;
            candidates.push(SecureCandidate {
                record,
                bits: dmin_bits,
            });
        }
        Ok((p, candidates))
    };
    let shard_outs = parallel_map(parallelism.threads, &views, |i, view| {
        run_contained(|| run_shard(i, view, sessions.for_shard(view.shard())))
    });

    // Serial recovery pass: re-run failed scatter tasks per the policy,
    // re-pinning dead sessions' shards onto survivors.
    let mut report = RetryReport::default();
    let mut dead: Vec<usize> = Vec::new();
    let mut candidates: Vec<SecureCandidate> = Vec::new();
    for (i, out) in shard_outs.into_iter().enumerate() {
        let view = &views[i];
        let (p, shard_candidates) = match out {
            Ok(ok) => ok,
            Err(e) => retry_shard_stage(
                sessions,
                view.shard(),
                retry,
                &mut dead,
                &mut report,
                e,
                |c2| run_shard(i, view, c2),
            )?,
        };
        profile.merge(&p);
        candidates.extend(shard_candidates);
    }
    report.dead_sessions = dead;

    // ── Gather: the same oblivious rounds over the ≤ k·S candidates ──
    let profile_ref = &mut profile;
    let masked = run_contained(move || {
        let c2 = sessions.primary();
        let meter = OpMeter::new(c2);
        let mut candidate_bits: Vec<Vec<Ciphertext>> =
            candidates.iter().map(|c| c.bits.clone()).collect();
        let candidate_records: Vec<&[Ciphertext]> =
            candidates.iter().map(|c| c.record.as_slice()).collect();
        let mut results = Vec::with_capacity(k);
        for _ in 0..k {
            let (record, _bits) = oblivious_select_round(
                c1,
                &meter,
                &candidate_records,
                &mut candidate_bits,
                profile_ref,
                &GATHER,
                rng,
            )?;
            results.push(record);
        }

        let masked = profile_ref.time(Stage::Finalization, || {
            FinalizeStage.run(c1, &meter, &results, rng)
        });
        profile_ref.record_ops(Stage::Finalization, meter.take());
        Ok(masked)
    })?;
    Ok((
        masked,
        profile,
        AccessPatternAudit::nothing_revealed(),
        report,
    ))
}
