//! The composable stage operators the scatter–gather drivers are built
//! from. Each operator runs against one shard's live view and one C2
//! session; the drivers in [`super::basic`] and [`super::secure`] wire
//! them into whole-query plans.

use crate::parallel::{parallel_map, ParallelismConfig};
use crate::roles::CloudC1;
use crate::seed::{derive_seeds, derived_rng};
use crate::{EncryptedQuery, MaskedResult, SknnError};
use rand::RngCore;
use sknn_paillier::Ciphertext;
use sknn_protocols::{
    packed_bit_decompose, packed_squared_distances, secure_bit_decompose_with,
    secure_squared_distance, KeyHolder, PackedParams,
};

/// The encrypted distances of a record set, in the representation the
/// configured path produced: one ciphertext per record (scalar) or one per
/// σ-record group (packed).
pub(crate) enum Distances {
    /// `distances[i] = E(dᵢ)`.
    Scalar(Vec<Ciphertext>),
    /// `groups[g]` packs the distances of records `g·σ .. g·σ + counts[g]`.
    Packed {
        /// One packed ciphertext per record group.
        groups: Vec<Ciphertext>,
        /// Used slots per group (all σ except possibly the last).
        counts: Vec<usize>,
    },
}

/// Computes the encrypted squared distance of every record whose physical
/// index is listed in `live`, routing through the packed SSED when
/// `packing` is set. Record groups (packed) or records (scalar) are
/// independent, so both paths are parallel (Figure 3). Distance `i` of the
/// output corresponds to the record at physical index `live[i]`.
pub(crate) fn compute_distances<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
    c1: &CloudC1,
    c2: &K,
    query: &EncryptedQuery,
    packing: Option<&PackedParams>,
    parallelism: ParallelismConfig,
    live: &[usize],
    rng: &mut R,
) -> Result<Distances, SknnError> {
    let pk = c1.public_key();
    let n = live.len();
    match packing {
        Some(params) => {
            let sigma = params.slots();
            let group_ranges: Vec<(usize, usize)> = (0..n.div_ceil(sigma))
                .map(|g| (g * sigma, n.min((g + 1) * sigma)))
                .collect();
            let seeds = derive_seeds(rng, group_ranges.len());
            let groups = parallel_map(parallelism.threads, &group_ranges, |g, &(lo, hi)| {
                let mut thread_rng = derived_rng(seeds[g]);
                let records: Vec<&[Ciphertext]> = live[lo..hi]
                    .iter()
                    .map(|&i| c1.database().record(i).as_slice())
                    .collect();
                packed_squared_distances(
                    pk,
                    c2,
                    query.attributes(),
                    &records,
                    params,
                    &mut thread_rng,
                    c1.encryptor(),
                )
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            Ok(Distances::Packed {
                groups,
                counts: group_ranges.iter().map(|&(lo, hi)| hi - lo).collect(),
            })
        }
        None => {
            let seeds = derive_seeds(rng, n);
            Ok(Distances::Scalar(parallel_map(
                parallelism.threads,
                live,
                |i, &physical| {
                    let mut thread_rng = derived_rng(seeds[i]);
                    let record = c1.database().record(physical);
                    secure_squared_distance(pk, c2, query.attributes(), record, &mut thread_rng)
                        .expect("database and query dimensions were validated")
                },
            )))
        }
    }
}

/// The output of one [`SsedStage`] run: the encrypted squared distances of
/// one shard's live records, plus the physical indices they belong to.
/// Opaque — the representation (scalar vs slot-packed) is an executor
/// detail the downstream stages resolve themselves.
pub struct ShardDistances {
    /// Physical indices, parallel to the distances.
    pub(crate) live: Vec<usize>,
    pub(crate) distances: Distances,
}

impl ShardDistances {
    /// Number of records the distances cover.
    pub fn num_records(&self) -> usize {
        self.live.len()
    }
}

/// Stage operator: SSED — the encrypted squared distance of every live
/// record of one shard (step 2 of both Algorithms 5 and 6).
pub struct SsedStage<'a> {
    c1: &'a CloudC1,
    /// `Some(l)` for the secure protocol, which additionally requires the
    /// packed layout (if any) to hold `l`-bit values.
    distance_bits: Option<usize>,
    parallelism: ParallelismConfig,
}

impl<'a> SsedStage<'a> {
    /// An SSED stage for the basic protocol.
    pub fn for_basic(c1: &'a CloudC1, parallelism: ParallelismConfig) -> Self {
        SsedStage {
            c1,
            distance_bits: None,
            parallelism,
        }
    }

    /// An SSED stage for the secure protocol with distance domain `l`.
    pub fn for_secure(c1: &'a CloudC1, l: usize, parallelism: ParallelismConfig) -> Self {
        SsedStage {
            c1,
            distance_bits: Some(l),
            parallelism,
        }
    }

    /// Runs SSED over the records at physical indices `live`, against the
    /// session `c2`. Packing (if configured on the cloud, supported by the
    /// session, and able to hold the distance domain) is applied per run.
    ///
    /// # Errors
    /// Propagates protocol-level failures from the packed path.
    pub fn run<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c2: &K,
        query: &EncryptedQuery,
        live: Vec<usize>,
        rng: &mut R,
    ) -> Result<ShardDistances, SknnError> {
        let packing = self.c1.effective_packing(c2, self.distance_bits);
        let distances =
            compute_distances(self.c1, c2, query, packing, self.parallelism, &live, rng)?;
        Ok(ShardDistances { live, distances })
    }
}

/// Stage operator: SBD — bit decomposition of one shard's distances
/// (step 2a of Algorithm 6). Output `i` is the `l`-bit vector of
/// `distances.live[i]`'s squared distance, most significant bit first.
pub struct SbdStage<'a> {
    c1: &'a CloudC1,
    l: usize,
    parallelism: ParallelismConfig,
}

impl<'a> SbdStage<'a> {
    /// An SBD stage decomposing into `l` bits.
    pub fn new(c1: &'a CloudC1, l: usize, parallelism: ParallelismConfig) -> Self {
        SbdStage { c1, l, parallelism }
    }

    /// Runs SBD over one shard's distances against the session `c2`.
    ///
    /// # Errors
    /// Propagates SBD protocol failures (e.g. an unusable bit length).
    pub fn run<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c2: &K,
        distances: &ShardDistances,
        rng: &mut R,
    ) -> Result<Vec<Vec<Ciphertext>>, SknnError> {
        let pk = self.c1.public_key();
        let l = self.l;
        match &distances.distances {
            // Packed state: all groups advance in lockstep, one packed
            // request per group per round.
            Distances::Packed { groups, counts } => {
                let params = self
                    .c1
                    .packing()
                    .expect("packed distances imply packing parameters");
                packed_bit_decompose(pk, c2, groups, counts, l, params, rng, self.c1.encryptor())
                    .map_err(SknnError::from)
            }
            Distances::Scalar(scalar) => {
                let seeds = derive_seeds(rng, scalar.len());
                let decomposed = parallel_map(self.parallelism.threads, scalar, |i, dist| {
                    let mut thread_rng = derived_rng(seeds[i]);
                    // The per-round mask encryptions draw from C1's
                    // offline randomness pool when one is attached.
                    secure_bit_decompose_with(pk, c2, dist, l, &mut thread_rng, self.c1.encryptor())
                });
                decomposed
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(SknnError::from)
            }
        }
    }
}

/// One SkNN_b candidate surviving a shard's top-k stage: a physical record
/// index plus the scalar ciphertext of its squared distance, ready for the
/// gather merge.
pub(crate) struct BasicCandidate {
    /// Physical index of the record in the database.
    pub physical: usize,
    /// `E(dᵢ)` as a scalar ciphertext (recomputed from the record when the
    /// shard's distances only exist slot-packed).
    pub distance: Ciphertext,
}

/// Stage operator: SkNN_b record selection — C2 decrypts distances and
/// returns the indices of the `k` smallest (step 3 of Algorithm 5), per
/// shard or globally.
pub struct TopKStage {
    k: usize,
}

impl TopKStage {
    /// A top-k stage selecting `k` records.
    pub fn new(k: usize) -> Self {
        TopKStage { k }
    }

    /// Runs the index exchange over one distance set and returns the
    /// *positions* of the winners within `distances` (ties broken by
    /// position, exactly as the key holder documents), nearest first.
    ///
    /// # Errors
    /// Propagates packed-path failures.
    pub fn run<K: KeyHolder + ?Sized>(
        &self,
        c1: &CloudC1,
        c2: &K,
        distances: &ShardDistances,
    ) -> Result<Vec<usize>, SknnError> {
        let k = self.k.min(distances.live.len());
        match &distances.distances {
            Distances::Scalar(cts) => Ok(c2.top_k_indices(cts, k)),
            Distances::Packed { groups, counts } => {
                let params = c1
                    .packing()
                    .expect("packed distances imply packing parameters");
                let count: usize = counts.iter().sum();
                c2.top_k_indices_packed(&params.layout, groups, count, k)
                    .map_err(SknnError::from)
            }
        }
    }

    /// Runs the per-shard candidate selection of a scatter plan: the
    /// shard's `min(k, shard size)` nearest records, each with a *scalar*
    /// distance ciphertext for the gather merge. When the shard's
    /// distances only exist slot-packed (no per-record ciphertext to
    /// reuse), the winners' distances are recomputed with scalar SSED —
    /// `min(k, shard size)·m` extra secure multiplications, negligible
    /// against the shard scan for `n ≫ k·S`.
    ///
    /// # Errors
    /// Propagates packed-path and SSED failures.
    pub(crate) fn candidates<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c1: &CloudC1,
        c2: &K,
        query: &EncryptedQuery,
        distances: &ShardDistances,
        rng: &mut R,
    ) -> Result<Vec<BasicCandidate>, SknnError> {
        let winners = self.run(c1, c2, distances)?;
        match &distances.distances {
            Distances::Scalar(cts) => Ok(winners
                .into_iter()
                .map(|i| BasicCandidate {
                    physical: distances.live[i],
                    distance: cts[i].clone(),
                })
                .collect()),
            Distances::Packed { .. } => {
                let pk = c1.public_key();
                winners
                    .into_iter()
                    .map(|i| {
                        let physical = distances.live[i];
                        let distance = secure_squared_distance(
                            pk,
                            c2,
                            query.attributes(),
                            c1.database().record(physical),
                            rng,
                        )?;
                        Ok(BasicCandidate { physical, distance })
                    })
                    .collect()
            }
        }
    }
}

/// Stage operator: the two-share reveal both protocols end with
/// (steps 4–6 of Algorithm 5): mask every result attribute, have C2
/// decrypt the masked values, and hand Bob the shares.
pub struct FinalizeStage;

impl FinalizeStage {
    /// Runs the reveal over the selected encrypted records, against the
    /// primary session.
    pub fn run<K: KeyHolder + ?Sized, R: RngCore + ?Sized>(
        &self,
        c1: &CloudC1,
        c2: &K,
        results: &[Vec<Ciphertext>],
        rng: &mut R,
    ) -> MaskedResult {
        c1.mask_and_reveal(c2, results, rng)
    }
}
