//! The staged, sharded SkNN executor.
//!
//! The paper's protocols are a single linear scan: one function walks one
//! table over one C1↔C2 conversation. This module decomposes both
//! protocols into **stage operators** that run against one
//! [`ShardView`](crate::EncryptedDatabase) each —
//! [`SsedStage`] (secure squared distances), [`SbdStage`] (bit
//! decomposition), [`TopKStage`] (SkNN_b candidate selection) and
//! [`FinalizeStage`] (the two-share reveal) — and drives them as a
//! **scatter–gather plan**:
//!
//! ```text
//!             scatter (one task per shard, pinned session)        gather
//!  SkNN_b:    SSED  →  per-shard top-k candidates        ─┐
//!             SSED  →  per-shard top-k candidates        ─┼→ top-k over the
//!             SSED  →  per-shard top-k candidates        ─┘  ≤ k·S candidates
//!                                                            → finalize
//!
//!  SkNN_m:    SSED → SBD → k oblivious extraction rounds ─┐
//!             SSED → SBD → k oblivious extraction rounds ─┼→ k SMIN_n/selection
//!             SSED → SBD → k oblivious extraction rounds ─┘  rounds over the
//!                                                            ≤ k·S candidates
//!                                                            → finalize
//! ```
//!
//! Every scatter task talks to the C2 session its shard is pinned to
//! ([`SessionSet`]), so with multiple sessions the per-shard stages
//! genuinely overlap on the wire. The gather runs on the primary session:
//! for SkNN_b a plain top-k over the surviving candidates' distance
//! ciphertexts, for SkNN_m the same oblivious SMIN_n/selection rounds as
//! the paper — but over the `k·S` candidates instead of all `n` records.
//! Results are bit-identical to the monolithic scan (ties aside — see the
//! driver docs), and a database with one shard takes the monolithic path
//! unchanged, so the paper's shape is the `shards = 1` special case rather
//! than separate code. The leakage delta of the sharded plan (per-shard
//! candidate counts, and nothing else) is analyzed in `DESIGN.md`
//! ("Sharded data plane").

mod basic;
mod secure;
mod stages;

pub use stages::{FinalizeStage, SbdStage, ShardDistances, SsedStage, TopKStage};

pub(crate) use basic::execute_basic;
pub(crate) use secure::execute_secure;

use crate::retry::{RetryPolicy, RetryReport, ShardRetry};
use crate::SknnError;
use sknn_paillier::{Ciphertext, PublicKey, SlotLayout};
use sknn_protocols::transport::SessionFailure;
use sknn_protocols::{KeyHolder, ProtocolError, SminRoundResponse};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The C2 key-holder sessions a query plan executes over, with the
/// shard-to-session pinning.
///
/// Shard `s` is pinned to session `s mod sessions.len()`; the *primary*
/// session (index 0) additionally runs the gather and finalize stages.
/// A [`SessionSet::single`] set reproduces the pre-sharding behavior of
/// one conversation carrying the whole query.
pub struct SessionSet<'a> {
    sessions: Vec<&'a dyn KeyHolder>,
}

impl<'a> SessionSet<'a> {
    /// Wraps an explicit list of sessions.
    ///
    /// # Panics
    /// Panics on an empty list — a query cannot run without C2.
    pub fn new(sessions: Vec<&'a dyn KeyHolder>) -> Self {
        assert!(
            !sessions.is_empty(),
            "a SessionSet needs at least one session"
        );
        SessionSet { sessions }
    }

    /// A set of one session: every shard (and the gather) uses `c2`.
    pub fn single(c2: &'a dyn KeyHolder) -> Self {
        SessionSet { sessions: vec![c2] }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Always false (construction rejects empty sets); provided for
    /// `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The session shard `shard` is pinned to.
    pub fn for_shard(&self, shard: usize) -> &'a dyn KeyHolder {
        self.sessions[shard % self.sessions.len()]
    }

    /// The session-set index shard `shard` is pinned to.
    pub fn index_for_shard(&self, shard: usize) -> usize {
        shard % self.sessions.len()
    }

    /// The session at set index `idx` (wrapping), for failover re-pinning.
    pub fn session_at(&self, idx: usize) -> &'a dyn KeyHolder {
        self.sessions[idx % self.sessions.len()]
    }

    /// The primary session: runs unsharded queries, the gather merge and
    /// the finalize stage.
    pub fn primary(&self) -> &'a dyn KeyHolder {
        self.sessions[0]
    }
}

/// How a session failure constrains the re-run, from the executor's view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FailureClass {
    /// The session's connection is gone — re-pin onto a survivor.
    Dead,
    /// The failure may be transient (timeout, one corrupted exchange) —
    /// the same session may be retried.
    Transient,
}

/// Classifies an error as a session failure, or `None` for genuine
/// protocol/validation errors that no amount of retrying fixes. The
/// classification is purely structural (typed variants, no message
/// sniffing): only a closed connection means the session is dead.
pub(crate) fn classify_session_failure(e: &SknnError) -> Option<FailureClass> {
    match e {
        SknnError::Protocol(ProtocolError::TransportClosed) => Some(FailureClass::Dead),
        SknnError::Protocol(ProtocolError::Transport { .. }) => Some(FailureClass::Transient),
        _ => None,
    }
}

/// Runs `f`, converting the session layer's documented fail-stop — an
/// unwind carrying a typed [`SessionFailure`] payload — into a typed
/// [`SknnError`]. Any other panic payload is a genuine bug and is
/// propagated unchanged. This is the boundary that makes scatter tasks
/// restartable: transport death inside a `KeyHolder` method (whose trait
/// signature has no error channel) surfaces here as a value.
pub(crate) fn run_contained<T>(f: impl FnOnce() -> Result<T, SknnError>) -> Result<T, SknnError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => match payload.downcast::<SessionFailure>() {
            Ok(failure) => Err(SknnError::Protocol(ProtocolError::from(failure.error))),
            Err(other) => resume_unwind(other),
        },
    }
}

/// The next session index after `from` (wrapping) not listed in `dead`.
fn next_live(len: usize, from: usize, dead: &[usize]) -> Option<usize> {
    (1..=len)
        .map(|d| (from + d) % len)
        .find(|i| !dead.contains(i))
}

/// Serial recovery for one failed scatter task: re-executes `run` — a pure
/// function of the shard's derived seed, so a re-run is bit-identical —
/// against the same session for transient failures, or re-pinned onto the
/// next live session when the pinned one is dead. Sleeps the policy's
/// backoff between attempts, records every re-run in `report`, and returns
/// the last error once the attempt budget (or the supply of live sessions)
/// is exhausted.
pub(crate) fn retry_shard_stage<T>(
    sessions: &SessionSet<'_>,
    shard: usize,
    policy: &RetryPolicy,
    dead: &mut Vec<usize>,
    report: &mut RetryReport,
    first_error: SknnError,
    mut run: impl FnMut(&dyn KeyHolder) -> Result<T, SknnError>,
) -> Result<T, SknnError> {
    let pinned = sessions.index_for_shard(shard);
    let mut current = pinned;
    let mut error = first_error;
    for attempt in 1..policy.max_attempts.max(1) {
        let Some(class) = classify_session_failure(&error) else {
            return Err(error);
        };
        if class == FailureClass::Dead {
            if !dead.contains(&current) {
                dead.push(current);
            }
            match next_live(sessions.len(), current, dead) {
                Some(next) => current = next,
                // Every session is dead: nothing left to fail over to.
                None => return Err(error),
            }
        }
        let backoff = policy.backoff_before(attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        match run_contained(|| run(sessions.session_at(current))) {
            Ok(value) => {
                report.shard_retries.push(ShardRetry {
                    shard,
                    from_session: pinned,
                    to_session: current,
                    error: error.to_string(),
                });
                return Ok(value);
            }
            Err(e) => error = e,
        }
    }
    Err(error)
}

/// Adapts any `&K` into a [`Sized`] value that implements [`KeyHolder`],
/// so generic `?Sized` entry points (the legacy `CloudC1::process_*`
/// signatures) can build a `&dyn KeyHolder`-based [`SessionSet`] without
/// an unsized coercion.
pub(crate) struct DynKeyHolder<'a, K: KeyHolder + ?Sized>(pub &'a K);

impl<K: KeyHolder + ?Sized> KeyHolder for DynKeyHolder<'_, K> {
    fn public_key(&self) -> &PublicKey {
        self.0.public_key()
    }

    fn sm_mask_multiply_batch(&self, pairs: &[(Ciphertext, Ciphertext)]) -> Vec<Ciphertext> {
        self.0.sm_mask_multiply_batch(pairs)
    }

    fn lsb_of_masked_batch(&self, masked: &[Ciphertext]) -> Vec<Ciphertext> {
        self.0.lsb_of_masked_batch(masked)
    }

    fn smin_round(
        &self,
        gamma_permuted: &[Ciphertext],
        l_permuted: &[Ciphertext],
    ) -> Result<SminRoundResponse, ProtocolError> {
        self.0.smin_round(gamma_permuted, l_permuted)
    }

    fn min_selection(&self, beta: &[Ciphertext]) -> Result<Vec<Ciphertext>, ProtocolError> {
        self.0.min_selection(beta)
    }

    fn top_k_indices(&self, distances: &[Ciphertext], k: usize) -> Vec<usize> {
        self.0.top_k_indices(distances, k)
    }

    fn decrypt_masked_batch(&self, masked: &[Ciphertext]) -> Vec<sknn_bigint::BigUint> {
        self.0.decrypt_masked_batch(masked)
    }

    fn supports_packing(&self) -> bool {
        self.0.supports_packing()
    }

    fn sm_packed_square_batch(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        self.0.sm_packed_square_batch(layout, packed)
    }

    fn sm_packed_multiply_batch(
        &self,
        layout: &SlotLayout,
        pairs: &[(Ciphertext, Ciphertext)],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        self.0.sm_packed_multiply_batch(layout, pairs)
    }

    fn lsb_packed_batch(
        &self,
        layout: &SlotLayout,
        masked: &[Ciphertext],
        slot_counts: &[usize],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        self.0.lsb_packed_batch(layout, masked, slot_counts)
    }

    fn top_k_indices_packed(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
        count: usize,
        k: usize,
    ) -> Result<Vec<usize>, ProtocolError> {
        self.0.top_k_indices_packed(layout, packed, count, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_paillier::Keypair;
    use sknn_protocols::LocalKeyHolder;

    #[test]
    fn shard_to_session_pinning_is_round_robin() {
        let mut rng = StdRng::seed_from_u64(701);
        let (_, sk) = Keypair::generate(96, &mut rng).split();
        let a = LocalKeyHolder::new(sk.clone(), 1);
        let b = LocalKeyHolder::new(sk, 2);
        let set = SessionSet::new(vec![&a, &b]);
        let thin = |k: &dyn KeyHolder| k as *const dyn KeyHolder as *const ();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(thin(set.for_shard(0)), thin(set.primary()));
        assert_eq!(
            thin(set.for_shard(1)),
            &b as *const LocalKeyHolder as *const ()
        );
        assert_eq!(thin(set.for_shard(2)), thin(set.primary()));

        let single = SessionSet::single(&a);
        assert_eq!(single.len(), 1);
        assert_eq!(thin(single.for_shard(7)), thin(single.primary()));
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn empty_session_set_rejected() {
        let _ = SessionSet::new(Vec::new());
    }
}
