//! Approved derived-seed helpers — the only sanctioned way for engine
//! and executor code to construct RNGs.
//!
//! `run_batch` determinism rests on one discipline: every parallel task
//! draws its C1-side randomness from a seed derived *up front* from the
//! caller's RNG, in input order, so the records a batch returns match
//! what the same queries return one at a time regardless of scheduling.
//! A stray `StdRng::seed_from_u64(...)` (or worse, an entropy-seeded
//! RNG) inside a `parallel_map` closure silently breaks that property.
//!
//! The `rng-discipline` rule of `sknn-lint` therefore rejects direct RNG
//! construction anywhere under `crates/core/src/{exec,engine}`; this
//! module is the allowlisted choke point it points callers at.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Draws `count` independent task seeds from `rng`, in task order,
/// before any parallel fan-out begins.
pub(crate) fn derive_seeds<R: RngCore + ?Sized>(rng: &mut R, count: usize) -> Vec<u64> {
    (0..count).map(|_| rng.gen()).collect()
}

/// Builds the deterministic per-task RNG for a seed from
/// [`derive_seeds`].
pub(crate) fn derived_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_drawn_in_order_and_rngs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let sa = derive_seeds(&mut a, 4);
        let sb = derive_seeds(&mut b, 4);
        assert_eq!(sa, sb);
        let x: u64 = derived_rng(sa[2]).gen();
        let y: u64 = derived_rng(sb[2]).gen();
        assert_eq!(x, y);
    }
}
