//! Configuration types for the federated-cloud setup and for secure queries.

use crate::retry::RetryPolicy;
use sknn_paillier::PoolConfig;

/// How cloud C1 talks to the key-holding cloud C2.
///
/// Every remote variant goes through the same pluggable transport stack
/// ([`sknn_protocols::transport`]): a pipelined, correlation-ID-framed
/// session client over a swappable frame transport, with byte-accurate
/// traffic accounting. The protocol code is identical in all cases — only
/// the wire underneath changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// Direct in-process calls (the configuration matching the paper's
    /// single-machine evaluation; fastest, no traffic accounting).
    #[default]
    InProcess,
    /// An in-process frame channel
    /// ([`sknn_protocols::transport::ChannelTransport`]): real wire bytes
    /// and round-trip counts without sockets.
    Channel,
    /// A real TCP socket over loopback
    /// ([`sknn_protocols::transport::TcpTransport`]); the key-holder server
    /// runs in a background thread of this process.
    Tcp,
    /// The in-process frame channel, multiplexed through the async reactor
    /// ([`sknn_protocols::transport::Reactor`]): one readiness-driven event
    /// loop services every session, with per-connection in-flight windows
    /// and backpressure. Same wire bytes as [`TransportKind::Channel`].
    AsyncChannel,
    /// Loopback TCP multiplexed through the async reactor: non-blocking
    /// sockets, one epoll thread for all sessions, per-connection
    /// backpressure. Same wire bytes as [`TransportKind::Tcp`], but C1's
    /// demux cost is O(1) threads instead of one per session.
    AsyncTcp,
}

impl TransportKind {
    /// Whether this transport reports [`crate::QueryResult::comm`] traffic.
    pub fn has_accounting(&self) -> bool {
        !matches!(self, TransportKind::InProcess)
    }

    /// Whether this transport multiplexes its sessions through the shared
    /// async reactor instead of one blocking demux thread per session.
    pub fn is_async(&self) -> bool {
        matches!(self, TransportKind::AsyncChannel | TransportKind::AsyncTcp)
    }
}

/// Slot-packed Paillier batching for the SSED and SBD stages (see
/// [`sknn_paillier::packing`] and `DESIGN.md`).
///
/// Packing puts σ guard-banded values into one plaintext, dividing the
/// C1↔C2 ciphertext volume and C2's decryption count for those stages by
/// ~σ. It requires a key large enough to hold σ product-safe slots and a
/// key holder that speaks the packed requests (feature revision ≥ 2);
/// otherwise the queries fall back to — or [`PackingKind::Fixed`] refuses
/// at setup instead of silently degrading — the scalar paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PackingKind {
    /// Scalar paths only (one value per ciphertext).
    #[default]
    Off,
    /// Pack up to σ values per ciphertext, silently clamping to what the
    /// key supports and falling back to scalar when packing is infeasible
    /// or the key holder lacks the fast path. The deployment-friendly
    /// choice.
    Auto(usize),
    /// Pack exactly σ values per ciphertext; [`crate::Federation::setup`]
    /// fails with [`crate::SknnError::PackingInfeasible`] when the key
    /// cannot hold σ slots. For experiments where the packing factor is
    /// part of the measurement.
    Fixed(usize),
}

impl PackingKind {
    /// The requested packing factor, if packing is requested at all.
    pub fn requested_slots(&self) -> Option<usize> {
        match self {
            PackingKind::Off => None,
            PackingKind::Auto(s) | PackingKind::Fixed(s) => Some(*s),
        }
    }
}

/// Shape of the sharded encrypted data plane (see `DESIGN.md`, "Sharded
/// data plane").
///
/// `shards` partitions every dataset's records round-robin into that many
/// [`crate::EncryptedDatabase`] shards; a query then runs as a *scatter*
/// (per-shard distance computation and candidate selection) followed by a
/// *gather* (a merge over the ≤ k·S surviving candidates). `sessions`
/// controls how many independent C2 key-holder sessions the engine stands
/// up; shards are pinned to sessions round-robin (shard `s` → session
/// `s mod sessions`), so with `sessions > 1` the scatter stages of one
/// query genuinely overlap on the wire instead of pipelining through one
/// connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardingConfig {
    /// Shards per dataset (clamped to ≥ 1). `1` reproduces the paper's
    /// monolithic single-scan protocols exactly.
    pub shards: usize,
    /// Independent C2 key-holder sessions (clamped to ≥ 1). Only remote
    /// transports gain from extra sessions; an in-process C2 is called
    /// directly either way.
    pub sessions: usize,
}

impl ShardingConfig {
    /// The unsharded, single-session configuration (the paper's shape).
    pub fn monolithic() -> Self {
        ShardingConfig {
            shards: 1,
            sessions: 1,
        }
    }
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig::monolithic()
    }
}

/// Configuration for [`crate::Federation::setup`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FederationConfig {
    /// Paillier modulus size in bits (the paper's `K`; 512 and 1024 in the
    /// evaluation, smaller values are practical for tests).
    pub key_bits: usize,
    /// Bit length of the squared-distance domain (the paper's `l`).
    /// `None` derives the smallest safe value from the outsourced table and
    /// the expected query domain.
    pub distance_bits: Option<usize>,
    /// Largest attribute value queries are expected to contain; only used
    /// when `distance_bits` is derived automatically.
    pub max_query_value: u64,
    /// Transport between the clouds.
    pub transport: TransportKind,
    /// Worker threads used by C1's record-parallel stages (1 = serial,
    /// reproducing the paper's serial measurements; 6 matches the OpenMP
    /// configuration of Figure 3). The key-holder server uses the same
    /// number of request-handling workers, so C2 keeps up with a parallel
    /// C1.
    pub threads: usize,
    /// Merge small concurrent `SmBatch`/`LsbBatch` requests into one round
    /// trip (remote transports only; see
    /// [`sknn_protocols::transport::CoalesceConfig`]). The paper's dominant
    /// communication cost is round trips, so this is on by default. Only
    /// effective with `threads > 1` — a serial C1 never issues concurrent
    /// requests, so the setup skips the coalescing window entirely rather
    /// than taxing every round trip with it.
    pub coalesce: bool,
    /// Seed for cloud C2's internal randomness (kept deterministic so
    /// experiments are reproducible).
    pub c2_seed: u64,
    /// Offline Paillier randomness precomputation
    /// ([`sknn_paillier::RandomnessPool`]): each cloud gets its own pool of
    /// precomputed `(r, r^N mod N²)` pairs so online encryption and
    /// re-randomization cost one modular multiplication. `capacity: 0`
    /// disables pooling entirely (every encryption pays its exponentiation
    /// inline). `seed: None` (the default) draws pool randomness from OS
    /// entropy; an explicit seed — for reproducible experiments — is
    /// combined with a per-cloud salt so the two pools never replay the
    /// same `r` sequence.
    pub pool: PoolConfig,
    /// Entries [`crate::Federation::setup`] precomputes synchronously per
    /// cloud before the first query (clamped to `pool.capacity`); the
    /// background refill thread tops the pools up from there.
    pub pool_prewarm: usize,
    /// Slot-packed batching for the SSED and SBD stages. Off by default —
    /// packing trades the scalar paths' full-domain masking for `κ`-bit
    /// statistical blinding ([`FederationConfig::packing_blind_bits`]), a
    /// deployment decision the operator should make explicitly.
    pub packing: PackingKind,
    /// The statistical blinding parameter κ of the packed paths: slot
    /// masks carry κ more bits of entropy than the values they hide, so
    /// C2's view is within statistical distance `2^{−κ}` of simulatable.
    /// 40 is the conventional default; tests with tiny keys lower it to
    /// make room for slots.
    pub packing_blind_bits: usize,
    /// The sharded data plane: how many shards each dataset is partitioned
    /// into and how many independent C2 sessions serve them. The default
    /// ([`ShardingConfig::monolithic`]) reproduces the paper exactly.
    pub sharding: ShardingConfig,
    /// Failure handling: per-request deadlines, retry attempts and backoff
    /// (see [`RetryPolicy`]). The default ([`RetryPolicy::none`]) disables
    /// all of it — requests wait forever and the first failure is final —
    /// reproducing the pre-resilience behavior exactly.
    pub retry: RetryPolicy,
    /// Per-connection in-flight window of the async transports (clamped to
    /// ≥ 1): how many requests one session keeps on the wire before new
    /// submissions start queueing. Ignored by the blocking transports,
    /// whose pipelining is unbounded.
    pub inflight_window: usize,
    /// Per-connection overflow queue of the async transports: submissions
    /// beyond the window wait here (their deadline clock already running).
    /// When the queue is also full, submitters block briefly and then fail
    /// with a typed `Overloaded` error instead of hanging.
    pub inflight_queue: usize,
    /// Per-query admission control: how many queries may run concurrently
    /// per engine before `run_batch` callers wait at the gate. `0` (the
    /// default) disables the gate entirely. With async transports this
    /// bounds the work entering the reactor so the backpressure ladder
    /// (window → queue → `Overloaded`) is reached by bursts, not by a
    /// steady-state workload.
    pub admission: usize,
    /// Root directory of C1's durable shard store (`sknn-store`). `None`
    /// (the default) keeps every dataset purely in-memory — the paper's
    /// model and the pre-storage behavior, byte for byte. When set (or when
    /// the engine is constructed through `SknnEngine::open_dir`), datasets
    /// registered through `register_dataset_persistent` live in
    /// `<store_root>/<dataset-name>/` and survive process restarts.
    pub store_root: Option<std::path::PathBuf>,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            key_bits: 512,
            distance_bits: None,
            max_query_value: 0,
            transport: TransportKind::InProcess,
            threads: 1,
            coalesce: true,
            c2_seed: 0x5EC0_0D02,
            pool: PoolConfig::default(),
            pool_prewarm: 64,
            packing: PackingKind::Off,
            packing_blind_bits: 40,
            sharding: ShardingConfig::default(),
            retry: RetryPolicy::none(),
            inflight_window: 64,
            inflight_queue: 256,
            admission: 0,
            store_root: None,
        }
    }
}

/// Parameters of one SkNN_m (fully secure) query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SecureQueryParams {
    /// Number of nearest neighbors to retrieve.
    pub k: usize,
    /// Bit length of the squared-distance domain (`l`).
    pub l: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_conventions() {
        let c = FederationConfig::default();
        assert_eq!(c.key_bits, 512);
        assert_eq!(c.transport, TransportKind::InProcess);
        assert_eq!(c.threads, 1);
        assert!(c.coalesce);
        assert!(c.distance_bits.is_none());
        assert!(c.pool.capacity > 0, "pooling is on by default");
        assert!(c.pool_prewarm <= c.pool.capacity);
        assert_eq!(c.packing, PackingKind::Off);
        assert_eq!(c.packing_blind_bits, 40);
        assert_eq!(c.sharding, ShardingConfig::monolithic());
        assert_eq!(c.sharding.shards, 1);
        assert_eq!(c.sharding.sessions, 1);
        assert_eq!(c.retry, RetryPolicy::none());
        assert!(!c.retry.is_enabled(), "resilience is opt-in");
        assert_eq!(c.inflight_window, 64);
        assert_eq!(c.inflight_queue, 256);
        assert_eq!(c.admission, 0, "admission control is opt-in");
        assert!(c.store_root.is_none(), "durability is opt-in");
    }

    #[test]
    fn packing_kind_requested_slots() {
        assert_eq!(PackingKind::Off.requested_slots(), None);
        assert_eq!(PackingKind::Auto(8).requested_slots(), Some(8));
        assert_eq!(PackingKind::Fixed(4).requested_slots(), Some(4));
        assert_eq!(PackingKind::default(), PackingKind::Off);
    }

    #[test]
    fn transport_default_is_in_process() {
        assert_eq!(TransportKind::default(), TransportKind::InProcess);
        assert!(!TransportKind::InProcess.has_accounting());
        assert!(TransportKind::Channel.has_accounting());
        assert!(TransportKind::Tcp.has_accounting());
        assert!(TransportKind::AsyncChannel.has_accounting());
        assert!(TransportKind::AsyncTcp.has_accounting());
        assert!(!TransportKind::Channel.is_async());
        assert!(!TransportKind::Tcp.is_async());
        assert!(TransportKind::AsyncChannel.is_async());
        assert!(TransportKind::AsyncTcp.is_async());
    }
}
