//! Transport-independent accounting of C1↔C2 protocol operations.
//!
//! [`OpMeter`] wraps any [`KeyHolder`] and counts, per call, how many
//! ciphertexts cross the cloud boundary and how many decryptions C2
//! performs — the two quantities slot packing is designed to shrink. The
//! counts are a pure function of each call's shape (batch sizes, packing
//! factor), so an in-process deployment reports exactly what a TCP one
//! would, and the query drivers can attribute them to the profile stage
//! that issued the call even when several worker threads share the meter.

use crate::profile::OpCounters;
use sknn_bigint::BigUint;
use sknn_paillier::{Ciphertext, PublicKey, SlotLayout};
use sknn_protocols::{KeyHolder, ProtocolError, SminRoundResponse};
use std::sync::atomic::{AtomicU64, Ordering};

/// A counting [`KeyHolder`] wrapper (see the module docs).
pub(crate) struct OpMeter<'a, K: KeyHolder + ?Sized> {
    inner: &'a K,
    to_c2: AtomicU64,
    from_c2: AtomicU64,
    decryptions: AtomicU64,
}

impl<'a, K: KeyHolder + ?Sized> OpMeter<'a, K> {
    pub(crate) fn new(inner: &'a K) -> Self {
        OpMeter {
            inner,
            to_c2: AtomicU64::new(0),
            from_c2: AtomicU64::new(0),
            decryptions: AtomicU64::new(0),
        }
    }

    /// Drains the counters (so one meter can be reused across stages).
    pub(crate) fn take(&self) -> OpCounters {
        OpCounters {
            ciphertexts_to_c2: self.to_c2.swap(0, Ordering::Relaxed),
            ciphertexts_from_c2: self.from_c2.swap(0, Ordering::Relaxed),
            c2_decryptions: self.decryptions.swap(0, Ordering::Relaxed),
        }
    }

    fn record(&self, to_c2: usize, from_c2: usize, decryptions: usize) {
        self.to_c2.fetch_add(to_c2 as u64, Ordering::Relaxed);
        self.from_c2.fetch_add(from_c2 as u64, Ordering::Relaxed);
        self.decryptions
            .fetch_add(decryptions as u64, Ordering::Relaxed);
    }
}

impl<K: KeyHolder + ?Sized> KeyHolder for OpMeter<'_, K> {
    fn public_key(&self) -> &PublicKey {
        self.inner.public_key()
    }

    fn sm_mask_multiply_batch(&self, pairs: &[(Ciphertext, Ciphertext)]) -> Vec<Ciphertext> {
        // Two masked operands out and two decryptions per pair, one
        // product ciphertext back.
        self.record(2 * pairs.len(), pairs.len(), 2 * pairs.len());
        self.inner.sm_mask_multiply_batch(pairs)
    }

    fn lsb_of_masked_batch(&self, masked: &[Ciphertext]) -> Vec<Ciphertext> {
        self.record(masked.len(), masked.len(), masked.len());
        self.inner.lsb_of_masked_batch(masked)
    }

    fn smin_round(
        &self,
        gamma_permuted: &[Ciphertext],
        l_permuted: &[Ciphertext],
    ) -> Result<SminRoundResponse, ProtocolError> {
        // Γ′ and L′ out; C2 decrypts L′ only; M′ and E(α) back.
        self.record(
            gamma_permuted.len() + l_permuted.len(),
            gamma_permuted.len() + 1,
            l_permuted.len(),
        );
        self.inner.smin_round(gamma_permuted, l_permuted)
    }

    fn min_selection(&self, beta: &[Ciphertext]) -> Result<Vec<Ciphertext>, ProtocolError> {
        self.record(beta.len(), beta.len(), beta.len());
        self.inner.min_selection(beta)
    }

    fn top_k_indices(&self, distances: &[Ciphertext], k: usize) -> Vec<usize> {
        // The reply is a plain index list — no ciphertexts come back.
        self.record(distances.len(), 0, distances.len());
        self.inner.top_k_indices(distances, k)
    }

    fn decrypt_masked_batch(&self, masked: &[Ciphertext]) -> Vec<BigUint> {
        // The reply is plaintexts, not ciphertexts.
        self.record(masked.len(), 0, masked.len());
        self.inner.decrypt_masked_batch(masked)
    }

    fn supports_packing(&self) -> bool {
        self.inner.supports_packing()
    }

    fn sm_packed_square_batch(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        self.record(packed.len(), packed.len(), packed.len());
        self.inner.sm_packed_square_batch(layout, packed)
    }

    fn sm_packed_multiply_batch(
        &self,
        layout: &SlotLayout,
        pairs: &[(Ciphertext, Ciphertext)],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        self.record(2 * pairs.len(), pairs.len(), 2 * pairs.len());
        self.inner.sm_packed_multiply_batch(layout, pairs)
    }

    fn lsb_packed_batch(
        &self,
        layout: &SlotLayout,
        masked: &[Ciphertext],
        slot_counts: &[usize],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        // One packed request and one decryption per group; one bit
        // ciphertext back per used slot (the response-side floor — see
        // DESIGN.md).
        let bits: usize = slot_counts.iter().sum();
        self.record(masked.len(), bits, masked.len());
        self.inner.lsb_packed_batch(layout, masked, slot_counts)
    }

    fn top_k_indices_packed(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
        count: usize,
        k: usize,
    ) -> Result<Vec<usize>, ProtocolError> {
        self.record(packed.len(), 0, packed.len());
        self.inner.top_k_indices_packed(layout, packed, count, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_paillier::Keypair;
    use sknn_protocols::LocalKeyHolder;

    #[test]
    fn scalar_calls_are_counted_by_shape() {
        let mut rng = StdRng::seed_from_u64(601);
        let (pk, sk) = Keypair::generate(128, &mut rng).split();
        let holder = LocalKeyHolder::new(sk, 602);
        let meter = OpMeter::new(&holder);

        let pairs: Vec<_> = (0..3)
            .map(|v| (pk.encrypt_u64(v, &mut rng), pk.encrypt_u64(v + 1, &mut rng)))
            .collect();
        let _ = meter.sm_mask_multiply_batch(&pairs);
        let masked: Vec<_> = (0..2).map(|v| pk.encrypt_u64(v, &mut rng)).collect();
        let _ = meter.lsb_of_masked_batch(&masked);
        let _ = meter.top_k_indices(&masked, 1);

        let ops = meter.take();
        assert_eq!(ops.ciphertexts_to_c2, 6 + 2 + 2);
        assert_eq!(ops.ciphertexts_from_c2, 3 + 2);
        assert_eq!(ops.c2_decryptions, 6 + 2 + 2);
        // take() drains.
        assert_eq!(meter.take(), OpCounters::default());
    }

    #[test]
    fn packed_calls_count_packed_shapes() {
        let mut rng = StdRng::seed_from_u64(603);
        let (pk, sk) = Keypair::generate(128, &mut rng).split();
        let holder = LocalKeyHolder::new(sk, 604);
        let meter = OpMeter::new(&holder);
        assert!(meter.supports_packing());

        let layout = SlotLayout::new(14, 14, 4).unwrap();
        let xs: Vec<BigUint> = (0..4).map(BigUint::from_u64).collect();
        let packed = pk.encrypt(&layout.pack(&xs).unwrap(), &mut rng);
        meter
            .sm_packed_square_batch(&layout, std::slice::from_ref(&packed))
            .unwrap();
        meter
            .lsb_packed_batch(&layout, std::slice::from_ref(&packed), &[4])
            .unwrap();
        let ops = meter.take();
        // One ciphertext each way for the squares; one in, four bit
        // ciphertexts out for the LSB round; one decryption per packed
        // ciphertext.
        assert_eq!(ops.ciphertexts_to_c2, 2);
        assert_eq!(ops.ciphertexts_from_c2, 1 + 4);
        assert_eq!(ops.c2_decryptions, 2);
    }
}
