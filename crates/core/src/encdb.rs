//! Encrypted database, query and result-transfer types.

use sknn_bigint::BigUint;
use sknn_paillier::{Ciphertext, PublicKey};

/// One attribute-wise encrypted record: `⟨E(t_{i,1}), …, E(t_{i,m})⟩`.
pub type EncryptedRecord = Vec<Ciphertext>;

/// The attribute-wise encrypted database `E_pk(T)` hosted by cloud C1.
#[derive(Clone, Debug)]
pub struct EncryptedDatabase {
    records: Vec<EncryptedRecord>,
    attributes: usize,
    public_key: PublicKey,
}

impl EncryptedDatabase {
    /// Assembles an encrypted database. Intended to be called by
    /// [`crate::DataOwner::encrypt_table`]; exposed for advanced integrations
    /// that obtain ciphertexts from elsewhere.
    ///
    /// # Panics
    /// Panics when records have inconsistent widths.
    pub fn from_records(records: Vec<EncryptedRecord>, public_key: PublicKey) -> Self {
        let attributes = records.first().map_or(0, |r| r.len());
        assert!(
            records.iter().all(|r| r.len() == attributes),
            "encrypted records have inconsistent widths"
        );
        EncryptedDatabase {
            records,
            attributes,
            public_key,
        }
    }

    /// Number of records (`n`).
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Number of attributes (`m`).
    pub fn num_attributes(&self) -> usize {
        self.attributes
    }

    /// Borrow one encrypted record.
    pub fn record(&self, i: usize) -> &EncryptedRecord {
        &self.records[i]
    }

    /// Borrow all encrypted records.
    pub fn records(&self) -> &[EncryptedRecord] {
        &self.records
    }

    /// The public key the records are encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }
}

/// Bob's attribute-wise encrypted query `E_pk(Q) = ⟨E(q_1), …, E(q_m)⟩`.
#[derive(Clone, Debug)]
pub struct EncryptedQuery {
    attributes: Vec<Ciphertext>,
}

impl EncryptedQuery {
    /// Wraps the encrypted query attributes.
    pub fn new(attributes: Vec<Ciphertext>) -> Self {
        EncryptedQuery { attributes }
    }

    /// Number of attributes (`m`).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Borrow the encrypted attributes.
    pub fn attributes(&self) -> &[Ciphertext] {
        &self.attributes
    }
}

/// The two shares of the final result, produced at the end of either protocol
/// (steps 4–5 of Algorithm 5):
///
/// * `masks` — the random values `r_{j,h}` C1 sends directly to Bob;
/// * `masked_values` — the decrypted, still-masked attributes `γ′_{j,h}` C2
///   sends to Bob.
///
/// Neither share alone reveals anything about the result records; Bob combines
/// them with [`crate::QueryUser::recover_records`].
#[derive(Clone, Debug)]
pub struct MaskedResult {
    /// `r_{j,h}` — one mask per returned attribute, indexed `[neighbor][attribute]`.
    pub masks: Vec<Vec<BigUint>>,
    /// `γ′_{j,h} = t′_{j,h} + r_{j,h} mod N`, same shape as `masks`.
    pub masked_values: Vec<Vec<BigUint>>,
}

impl MaskedResult {
    /// Number of neighbors contained in the result.
    pub fn num_neighbors(&self) -> usize {
        self.masks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_paillier::Keypair;

    #[test]
    fn database_accessors() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let records = vec![
            vec![pk.encrypt_u64(1, &mut rng), pk.encrypt_u64(2, &mut rng)],
            vec![pk.encrypt_u64(3, &mut rng), pk.encrypt_u64(4, &mut rng)],
        ];
        let db = EncryptedDatabase::from_records(records, pk.clone());
        assert_eq!(db.num_records(), 2);
        assert_eq!(db.num_attributes(), 2);
        assert_eq!(db.record(0).len(), 2);
        assert_eq!(db.records().len(), 2);
        assert_eq!(db.public_key(), &pk);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_records_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let records = vec![
            vec![pk.encrypt_u64(1, &mut rng)],
            vec![pk.encrypt_u64(1, &mut rng), pk.encrypt_u64(2, &mut rng)],
        ];
        let _ = EncryptedDatabase::from_records(records, pk);
    }

    #[test]
    fn query_and_masked_result_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let q = EncryptedQuery::new(vec![pk.encrypt_u64(9, &mut rng)]);
        assert_eq!(q.num_attributes(), 1);
        assert_eq!(q.attributes().len(), 1);

        let r = MaskedResult {
            masks: vec![vec![BigUint::one()]; 3],
            masked_values: vec![vec![BigUint::two()]; 3],
        };
        assert_eq!(r.num_neighbors(), 3);
    }
}
