//! Encrypted database, query and result-transfer types.

use crate::error::UpdateRejected;
use sknn_bigint::BigUint;
use sknn_paillier::{Ciphertext, PublicKey};

/// One attribute-wise encrypted record: `⟨E(t_{i,1}), …, E(t_{i,m})⟩`.
pub type EncryptedRecord = Vec<Ciphertext>;

/// The attribute-wise encrypted database `E_pk(T)` hosted by cloud C1.
///
/// Unlike the paper's static outsourced table, the database supports
/// *dynamic updates*: the data owner can [`append`](Self::append_record)
/// freshly encrypted records and [`tombstone`](Self::tombstone) retired
/// ones without re-outsourcing the table. Tombstoned records keep their
/// physical index (so indices stay stable for the owner) but are skipped
/// by every query protocol; see `DESIGN.md` ("Engine façade & dataset
/// lifecycle") for why this leaks nothing beyond the update event itself.
#[derive(Clone, Debug)]
pub struct EncryptedDatabase {
    records: Vec<EncryptedRecord>,
    /// `live[i]` is false once record `i` has been tombstoned.
    live: Vec<bool>,
    tombstones: usize,
    attributes: usize,
    public_key: PublicKey,
}

impl EncryptedDatabase {
    /// Assembles an encrypted database. Intended to be called by
    /// [`crate::DataOwner::encrypt_table`]; exposed for advanced integrations
    /// that obtain ciphertexts from elsewhere.
    ///
    /// # Panics
    /// Panics when records have inconsistent widths.
    pub fn from_records(records: Vec<EncryptedRecord>, public_key: PublicKey) -> Self {
        let attributes = records.first().map_or(0, |r| r.len());
        assert!(
            records.iter().all(|r| r.len() == attributes),
            "encrypted records have inconsistent widths"
        );
        let live = vec![true; records.len()];
        EncryptedDatabase {
            records,
            live,
            tombstones: 0,
            attributes,
            public_key,
        }
    }

    /// Number of physical records, live and tombstoned (`n` plus retired
    /// history).
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Number of live (queryable) records — the `n` the protocols operate
    /// over.
    pub fn num_live(&self) -> usize {
        self.records.len() - self.tombstones
    }

    /// Number of attributes (`m`).
    pub fn num_attributes(&self) -> usize {
        self.attributes
    }

    /// Borrow one encrypted record (live or tombstoned).
    pub fn record(&self, i: usize) -> &EncryptedRecord {
        &self.records[i]
    }

    /// Borrow all physical records, including tombstoned ones.
    pub fn records(&self) -> &[EncryptedRecord] {
        &self.records
    }

    /// Whether record `i` is live (not tombstoned). Out-of-range indices
    /// are not live.
    pub fn is_live(&self, i: usize) -> bool {
        self.live.get(i).copied().unwrap_or(false)
    }

    /// Physical indices of the live records, in storage order. The query
    /// protocols iterate exactly this view, so tombstoned records can never
    /// appear in a result.
    pub fn live_indices(&self) -> Vec<usize> {
        (0..self.records.len()).filter(|&i| self.live[i]).collect()
    }

    /// Appends one already-encrypted record, returning its physical index.
    ///
    /// The ciphertexts are assumed to be encryptions under
    /// [`Self::public_key`] of values within the domain bound the hosting
    /// dataset was registered with — C1 cannot inspect them (that is the
    /// point of the encryption), so the data owner is responsible for both,
    /// exactly as at initial outsourcing.
    ///
    /// # Errors
    /// Rejects records whose width differs from the database's.
    pub fn append_record(&mut self, record: EncryptedRecord) -> Result<usize, UpdateRejected> {
        if record.len() != self.attributes {
            return Err(UpdateRejected::WrongArity {
                expected: self.attributes,
                got: record.len(),
            });
        }
        self.records.push(record);
        self.live.push(true);
        Ok(self.records.len() - 1)
    }

    /// Tombstones the record at physical index `i`: it keeps its index but
    /// is skipped by all subsequent queries.
    ///
    /// # Errors
    /// Rejects out-of-range indices and records that are already
    /// tombstoned.
    pub fn tombstone(&mut self, i: usize) -> Result<(), UpdateRejected> {
        if i >= self.records.len() {
            return Err(UpdateRejected::IndexOutOfRange {
                index: i,
                records: self.records.len(),
            });
        }
        if !self.live[i] {
            return Err(UpdateRejected::AlreadyTombstoned { index: i });
        }
        self.live[i] = false;
        self.tombstones += 1;
        Ok(())
    }

    /// The public key the records are encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }
}

/// Bob's attribute-wise encrypted query `E_pk(Q) = ⟨E(q_1), …, E(q_m)⟩`.
#[derive(Clone, Debug)]
pub struct EncryptedQuery {
    attributes: Vec<Ciphertext>,
}

impl EncryptedQuery {
    /// Wraps the encrypted query attributes.
    pub fn new(attributes: Vec<Ciphertext>) -> Self {
        EncryptedQuery { attributes }
    }

    /// Number of attributes (`m`).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Borrow the encrypted attributes.
    pub fn attributes(&self) -> &[Ciphertext] {
        &self.attributes
    }
}

/// The two shares of the final result, produced at the end of either protocol
/// (steps 4–5 of Algorithm 5):
///
/// * `masks` — the random values `r_{j,h}` C1 sends directly to Bob;
/// * `masked_values` — the decrypted, still-masked attributes `γ′_{j,h}` C2
///   sends to Bob.
///
/// Neither share alone reveals anything about the result records; Bob combines
/// them with [`crate::QueryUser::recover_records`].
#[derive(Clone, Debug)]
pub struct MaskedResult {
    /// `r_{j,h}` — one mask per returned attribute, indexed `[neighbor][attribute]`.
    pub masks: Vec<Vec<BigUint>>,
    /// `γ′_{j,h} = t′_{j,h} + r_{j,h} mod N`, same shape as `masks`.
    pub masked_values: Vec<Vec<BigUint>>,
}

impl MaskedResult {
    /// Number of neighbors contained in the result.
    pub fn num_neighbors(&self) -> usize {
        self.masks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_paillier::Keypair;

    #[test]
    fn database_accessors() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let records = vec![
            vec![pk.encrypt_u64(1, &mut rng), pk.encrypt_u64(2, &mut rng)],
            vec![pk.encrypt_u64(3, &mut rng), pk.encrypt_u64(4, &mut rng)],
        ];
        let db = EncryptedDatabase::from_records(records, pk.clone());
        assert_eq!(db.num_records(), 2);
        assert_eq!(db.num_attributes(), 2);
        assert_eq!(db.record(0).len(), 2);
        assert_eq!(db.records().len(), 2);
        assert_eq!(db.public_key(), &pk);
    }

    #[test]
    fn append_and_tombstone_maintain_the_live_view() {
        let mut rng = StdRng::seed_from_u64(9);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let enc = |v: u64, rng: &mut StdRng| vec![pk.encrypt_u64(v, rng)];
        let mut db =
            EncryptedDatabase::from_records(vec![enc(1, &mut rng), enc(2, &mut rng)], pk.clone());
        assert_eq!(db.num_live(), 2);
        assert_eq!(db.live_indices(), vec![0, 1]);

        let idx = db.append_record(enc(3, &mut rng)).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(db.num_records(), 3);
        assert_eq!(db.num_live(), 3);

        db.tombstone(1).unwrap();
        assert_eq!(db.num_records(), 3, "tombstoning keeps physical indices");
        assert_eq!(db.num_live(), 2);
        assert!(db.is_live(0) && !db.is_live(1) && db.is_live(2));
        assert!(!db.is_live(99));
        assert_eq!(db.live_indices(), vec![0, 2]);

        // Typed rejections, never panics.
        assert_eq!(
            db.tombstone(1),
            Err(crate::error::UpdateRejected::AlreadyTombstoned { index: 1 })
        );
        assert_eq!(
            db.tombstone(3),
            Err(crate::error::UpdateRejected::IndexOutOfRange {
                index: 3,
                records: 3
            })
        );
        assert_eq!(
            db.append_record(vec![
                pk.encrypt_u64(1, &mut rng),
                pk.encrypt_u64(2, &mut rng)
            ]),
            Err(crate::error::UpdateRejected::WrongArity {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_records_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let records = vec![
            vec![pk.encrypt_u64(1, &mut rng)],
            vec![pk.encrypt_u64(1, &mut rng), pk.encrypt_u64(2, &mut rng)],
        ];
        let _ = EncryptedDatabase::from_records(records, pk);
    }

    #[test]
    fn query_and_masked_result_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let q = EncryptedQuery::new(vec![pk.encrypt_u64(9, &mut rng)]);
        assert_eq!(q.num_attributes(), 1);
        assert_eq!(q.attributes().len(), 1);

        let r = MaskedResult {
            masks: vec![vec![BigUint::one()]; 3],
            masked_values: vec![vec![BigUint::two()]; 3],
        };
        assert_eq!(r.num_neighbors(), 3);
    }
}
