//! Encrypted database, query and result-transfer types.

use crate::error::{DurableUpdateError, UpdateRejected};
use crate::storage::BackingStore;
use sknn_bigint::BigUint;
use sknn_paillier::{Ciphertext, PublicKey};
use sknn_store::StoreError;
use std::sync::Arc;

/// One attribute-wise encrypted record: `⟨E(t_{i,1}), …, E(t_{i,m})⟩`.
pub type EncryptedRecord = Vec<Ciphertext>;

/// The attribute-wise encrypted database `E_pk(T)` hosted by cloud C1.
///
/// Unlike the paper's static outsourced table, the database supports
/// *dynamic updates*: the data owner can [`append`](Self::append_record)
/// freshly encrypted records and [`tombstone`](Self::tombstone) retired
/// ones without re-outsourcing the table. Tombstoned records keep their
/// physical index (so indices stay stable for the owner) but are skipped
/// by every query protocol; see `DESIGN.md` ("Engine façade & dataset
/// lifecycle") for why this leaks nothing beyond the update event itself.
///
/// # Sharding
///
/// The database is partitioned into `shards` **shards** so the staged
/// query executor ([`crate::exec`]) can scatter per-shard work across
/// independent C2 sessions. Placement is round-robin over the physical
/// index — record `i` belongs to shard `i mod shards` — which keeps
/// placement a pure function of the index: appends route to the owning
/// shard automatically, shards stay balanced (sizes differ by at most
/// one), and no per-record placement table has to be stored or shipped.
/// Each shard exposes its own live/tombstone view through [`ShardView`];
/// with `shards == 1` (the default) the single shard *is* the whole
/// database and the query path is exactly the paper's.
#[derive(Clone, Debug)]
pub struct EncryptedDatabase {
    records: Vec<EncryptedRecord>,
    /// `live[i]` is false once record `i` has been tombstoned.
    live: Vec<bool>,
    tombstones: usize,
    attributes: usize,
    /// Number of shards the records are partitioned into (≥ 1).
    shards: usize,
    public_key: PublicKey,
    /// Durable write-ahead sink; `None` (the default) keeps the database
    /// purely in-memory with zero behavior change. Clones share the same
    /// backing — the backing mirrors whichever clone keeps writing.
    backing: Option<Arc<dyn BackingStore>>,
}

impl EncryptedDatabase {
    /// Assembles an encrypted database. Intended to be called by
    /// [`crate::DataOwner::encrypt_table`]; exposed for advanced integrations
    /// that obtain ciphertexts from elsewhere.
    ///
    /// # Panics
    /// Panics when records have inconsistent widths.
    pub fn from_records(records: Vec<EncryptedRecord>, public_key: PublicKey) -> Self {
        let attributes = records.first().map_or(0, |r| r.len());
        assert!(
            records.iter().all(|r| r.len() == attributes),
            "encrypted records have inconsistent widths"
        );
        let live = vec![true; records.len()];
        EncryptedDatabase {
            records,
            live,
            tombstones: 0,
            attributes,
            shards: 1,
            public_key,
            backing: None,
        }
    }

    /// Assembles a database from explicit parts — the reload path of the
    /// durable store, where `attributes` must be supplied because the
    /// record list may be empty and tombstoned slots must be restored
    /// as-is.
    ///
    /// # Errors
    /// [`StoreError::Invariant`] when `live` and `records` have different
    /// lengths or a record has the wrong width — the store validates both
    /// against the manifest, so a mismatch here means the loaded state is
    /// not trustworthy.
    pub fn from_parts(
        records: Vec<EncryptedRecord>,
        live: Vec<bool>,
        attributes: usize,
        public_key: PublicKey,
    ) -> Result<Self, StoreError> {
        if records.len() != live.len() {
            return Err(StoreError::Invariant {
                message: format!(
                    "liveness bitmap covers {} records but {} were loaded",
                    live.len(),
                    records.len()
                ),
            });
        }
        if let Some(bad) = records.iter().find(|r| r.len() != attributes) {
            return Err(StoreError::Invariant {
                message: format!(
                    "loaded record has {} attributes, manifest says {attributes}",
                    bad.len()
                ),
            });
        }
        let tombstones = live.iter().filter(|&&l| !l).count();
        Ok(EncryptedDatabase {
            records,
            live,
            tombstones,
            attributes,
            shards: 1,
            public_key,
            backing: None,
        })
    }

    /// Attaches a durable backing store: every subsequent
    /// [`append_record`](Self::append_record) and
    /// [`tombstone`](Self::tombstone) becomes **write-ahead** — the store
    /// must acknowledge durability before the update is visible to
    /// queries. The backing is expected to already mirror the database's
    /// current contents (the engine loads one from the other).
    #[must_use]
    pub fn with_backing(mut self, backing: Arc<dyn BackingStore>) -> Self {
        self.backing = Some(backing);
        self
    }

    /// Whether a durable backing store is attached.
    pub fn is_durable(&self) -> bool {
        self.backing.is_some()
    }

    /// Re-partitions the database into `shards` shards (clamped to at
    /// least 1). Placement is derived from the physical index alone
    /// (`i mod shards`), so resharding is free — no ciphertext moves.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// In-place form of [`EncryptedDatabase::with_shards`].
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Number of shards the records are partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard that owns physical index `i` (round-robin placement).
    pub fn shard_of(&self, i: usize) -> usize {
        i % self.shards
    }

    /// Borrows one shard's view of the database.
    ///
    /// # Panics
    /// Panics when `shard >= self.shard_count()`.
    pub fn shard(&self, shard: usize) -> ShardView<'_> {
        assert!(
            shard < self.shards,
            "shard {shard} out of range for {} shards",
            self.shards
        );
        ShardView { db: self, shard }
    }

    /// All shard views, in shard order.
    pub fn shard_views(&self) -> Vec<ShardView<'_>> {
        (0..self.shards)
            .map(|s| ShardView { db: self, shard: s })
            .collect()
    }

    /// Number of physical records, live and tombstoned (`n` plus retired
    /// history).
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Number of live (queryable) records — the `n` the protocols operate
    /// over.
    pub fn num_live(&self) -> usize {
        self.records.len() - self.tombstones
    }

    /// Number of attributes (`m`).
    pub fn num_attributes(&self) -> usize {
        self.attributes
    }

    /// Borrow one encrypted record (live or tombstoned).
    pub fn record(&self, i: usize) -> &EncryptedRecord {
        &self.records[i]
    }

    /// Borrow all physical records, including tombstoned ones.
    pub fn records(&self) -> &[EncryptedRecord] {
        &self.records
    }

    /// Whether record `i` is live (not tombstoned). Out-of-range indices
    /// are not live.
    pub fn is_live(&self, i: usize) -> bool {
        self.live.get(i).copied().unwrap_or(false)
    }

    /// Physical indices of the live records, in storage order. The query
    /// protocols iterate exactly this view, so tombstoned records can never
    /// appear in a result.
    pub fn live_indices(&self) -> Vec<usize> {
        (0..self.records.len()).filter(|&i| self.live[i]).collect()
    }

    /// Durably appends a batch of already-encrypted records, returning the
    /// physical indices they were stored at. **Write-ahead**: when a
    /// backing store is attached, the whole batch is made durable before
    /// any of it becomes visible to queries, and a failed batch changes
    /// nothing (all-or-nothing, on disk and in memory). Without a backing
    /// this is a plain in-memory batch append with the same atomicity.
    ///
    /// # Errors
    /// Rejects the whole batch when any record's width differs from the
    /// database's, and surfaces backing-store failures typed.
    pub fn append_records_durable(
        &mut self,
        records: Vec<EncryptedRecord>,
    ) -> Result<Vec<usize>, DurableUpdateError> {
        if let Some(bad) = records.iter().find(|r| r.len() != self.attributes) {
            return Err(DurableUpdateError::Rejected(UpdateRejected::WrongArity {
                expected: self.attributes,
                got: bad.len(),
            }));
        }
        let base = self.records.len();
        if let Some(backing) = &self.backing {
            let raw: Vec<Vec<BigUint>> = records
                .iter()
                .map(|r| r.iter().map(|c| c.as_raw().clone()).collect())
                .collect();
            backing
                .append(base as u64, &raw)
                .map_err(DurableUpdateError::Storage)?;
        }
        let indices = (base..base + records.len()).collect();
        for record in records {
            self.records.push(record);
            self.live.push(true);
        }
        Ok(indices)
    }

    /// Durably tombstones the record at physical index `i` — write-ahead
    /// when a backing store is attached, plain in-memory otherwise.
    ///
    /// # Errors
    /// Rejects out-of-range and already-tombstoned indices; surfaces
    /// backing-store failures typed.
    pub fn tombstone_durable(&mut self, i: usize) -> Result<(), DurableUpdateError> {
        if i >= self.records.len() {
            return Err(DurableUpdateError::Rejected(
                UpdateRejected::IndexOutOfRange {
                    index: i,
                    records: self.records.len(),
                },
            ));
        }
        if !self.live[i] {
            return Err(DurableUpdateError::Rejected(
                UpdateRejected::AlreadyTombstoned { index: i },
            ));
        }
        if let Some(backing) = &self.backing {
            backing
                .tombstone(i as u64)
                .map_err(DurableUpdateError::Storage)?;
        }
        self.live[i] = false;
        self.tombstones += 1;
        Ok(())
    }

    /// Forces everything the backing store has acknowledged onto stable
    /// storage (a no-op without a backing).
    ///
    /// # Errors
    /// Surfaces backing-store failures typed.
    pub fn flush(&self) -> Result<(), StoreError> {
        match &self.backing {
            Some(backing) => backing.flush(),
            None => Ok(()),
        }
    }

    /// Appends one already-encrypted record, returning its physical index.
    /// **In-memory only** — an attached backing store is bypassed; durable
    /// databases must use
    /// [`append_records_durable`](Self::append_records_durable).
    ///
    /// The ciphertexts are assumed to be encryptions under
    /// [`Self::public_key`] of values within the domain bound the hosting
    /// dataset was registered with — C1 cannot inspect them (that is the
    /// point of the encryption), so the data owner is responsible for both,
    /// exactly as at initial outsourcing.
    ///
    /// # Errors
    /// Rejects records whose width differs from the database's.
    pub fn append_record(&mut self, record: EncryptedRecord) -> Result<usize, UpdateRejected> {
        if record.len() != self.attributes {
            return Err(UpdateRejected::WrongArity {
                expected: self.attributes,
                got: record.len(),
            });
        }
        self.records.push(record);
        self.live.push(true);
        Ok(self.records.len() - 1)
    }

    /// Tombstones the record at physical index `i`: it keeps its index but
    /// is skipped by all subsequent queries. **In-memory only** — an
    /// attached backing store is bypassed; durable databases must use
    /// [`tombstone_durable`](Self::tombstone_durable).
    ///
    /// # Errors
    /// Rejects out-of-range indices and records that are already
    /// tombstoned.
    pub fn tombstone(&mut self, i: usize) -> Result<(), UpdateRejected> {
        if i >= self.records.len() {
            return Err(UpdateRejected::IndexOutOfRange {
                index: i,
                records: self.records.len(),
            });
        }
        if !self.live[i] {
            return Err(UpdateRejected::AlreadyTombstoned { index: i });
        }
        self.live[i] = false;
        self.tombstones += 1;
        Ok(())
    }

    /// The public key the records are encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }
}

/// One shard's read view of an [`EncryptedDatabase`] — the unit of work
/// the staged executor ([`crate::exec`]) scatters across C2 sessions.
///
/// A view exposes exactly the shard's *live* records (tombstoned records
/// are filtered here, before any protocol message is formed), always in
/// ascending physical-index order so per-shard results merge back into the
/// database's global ordering deterministically.
#[derive(Clone, Copy, Debug)]
pub struct ShardView<'a> {
    db: &'a EncryptedDatabase,
    shard: usize,
}

impl<'a> ShardView<'a> {
    /// This view's shard id.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The database this view is over.
    pub fn database(&self) -> &'a EncryptedDatabase {
        self.db
    }

    /// The one definition of "this shard's live records": physical indices
    /// in ascending order. Every accessor below derives from it.
    fn live_iter(&self) -> impl Iterator<Item = usize> + 'a {
        let db = self.db;
        (self.shard..db.records.len())
            .step_by(db.shards)
            .filter(move |&i| db.live[i])
    }

    /// Physical indices of this shard's live records, ascending.
    pub fn live_indices(&self) -> Vec<usize> {
        self.live_iter().collect()
    }

    /// Number of live records in this shard.
    pub fn num_live(&self) -> usize {
        self.live_iter().count()
    }

    /// Iterates this shard's live records as `(physical index, record)`,
    /// in ascending physical-index order.
    pub fn records(&self) -> impl Iterator<Item = (usize, &'a EncryptedRecord)> + 'a {
        let db = self.db;
        self.live_iter().map(move |i| (i, &db.records[i]))
    }
}

/// Bob's attribute-wise encrypted query `E_pk(Q) = ⟨E(q_1), …, E(q_m)⟩`.
#[derive(Clone, Debug)]
pub struct EncryptedQuery {
    attributes: Vec<Ciphertext>,
}

impl EncryptedQuery {
    /// Wraps the encrypted query attributes.
    pub fn new(attributes: Vec<Ciphertext>) -> Self {
        EncryptedQuery { attributes }
    }

    /// Number of attributes (`m`).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Borrow the encrypted attributes.
    pub fn attributes(&self) -> &[Ciphertext] {
        &self.attributes
    }
}

/// The two shares of the final result, produced at the end of either protocol
/// (steps 4–5 of Algorithm 5):
///
/// * `masks` — the random values `r_{j,h}` C1 sends directly to Bob;
/// * `masked_values` — the decrypted, still-masked attributes `γ′_{j,h}` C2
///   sends to Bob.
///
/// Neither share alone reveals anything about the result records; Bob combines
/// them with [`crate::QueryUser::recover_records`].
#[derive(Clone, Debug)]
pub struct MaskedResult {
    /// `r_{j,h}` — one mask per returned attribute, indexed `[neighbor][attribute]`.
    pub masks: Vec<Vec<BigUint>>,
    /// `γ′_{j,h} = t′_{j,h} + r_{j,h} mod N`, same shape as `masks`.
    pub masked_values: Vec<Vec<BigUint>>,
}

impl MaskedResult {
    /// Number of neighbors contained in the result.
    pub fn num_neighbors(&self) -> usize {
        self.masks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sknn_paillier::Keypair;

    #[test]
    fn database_accessors() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let records = vec![
            vec![pk.encrypt_u64(1, &mut rng), pk.encrypt_u64(2, &mut rng)],
            vec![pk.encrypt_u64(3, &mut rng), pk.encrypt_u64(4, &mut rng)],
        ];
        let db = EncryptedDatabase::from_records(records, pk.clone());
        assert_eq!(db.num_records(), 2);
        assert_eq!(db.num_attributes(), 2);
        assert_eq!(db.record(0).len(), 2);
        assert_eq!(db.records().len(), 2);
        assert_eq!(db.public_key(), &pk);
    }

    #[test]
    fn append_and_tombstone_maintain_the_live_view() {
        let mut rng = StdRng::seed_from_u64(9);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let enc = |v: u64, rng: &mut StdRng| vec![pk.encrypt_u64(v, rng)];
        let mut db =
            EncryptedDatabase::from_records(vec![enc(1, &mut rng), enc(2, &mut rng)], pk.clone());
        assert_eq!(db.num_live(), 2);
        assert_eq!(db.live_indices(), vec![0, 1]);

        let idx = db.append_record(enc(3, &mut rng)).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(db.num_records(), 3);
        assert_eq!(db.num_live(), 3);

        db.tombstone(1).unwrap();
        assert_eq!(db.num_records(), 3, "tombstoning keeps physical indices");
        assert_eq!(db.num_live(), 2);
        assert!(db.is_live(0) && !db.is_live(1) && db.is_live(2));
        assert!(!db.is_live(99));
        assert_eq!(db.live_indices(), vec![0, 2]);

        // Typed rejections, never panics.
        assert_eq!(
            db.tombstone(1),
            Err(crate::error::UpdateRejected::AlreadyTombstoned { index: 1 })
        );
        assert_eq!(
            db.tombstone(3),
            Err(crate::error::UpdateRejected::IndexOutOfRange {
                index: 3,
                records: 3
            })
        );
        assert_eq!(
            db.append_record(vec![
                pk.encrypt_u64(1, &mut rng),
                pk.encrypt_u64(2, &mut rng)
            ]),
            Err(crate::error::UpdateRejected::WrongArity {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn round_robin_sharding_partitions_the_live_view() {
        let mut rng = StdRng::seed_from_u64(11);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let enc = |v: u64, rng: &mut StdRng| vec![pk.encrypt_u64(v, rng)];
        let records: Vec<_> = (0..7).map(|v| enc(v, &mut rng)).collect();
        let mut db = EncryptedDatabase::from_records(records, pk.clone()).with_shards(3);
        assert_eq!(db.shard_count(), 3);
        assert_eq!(db.shard_of(0), 0);
        assert_eq!(db.shard_of(4), 1);
        assert_eq!(db.shard(0).live_indices(), vec![0, 3, 6]);
        assert_eq!(db.shard(1).live_indices(), vec![1, 4]);
        assert_eq!(db.shard(2).live_indices(), vec![2, 5]);

        // The shard views partition the global live view exactly.
        let mut union: Vec<usize> = db
            .shard_views()
            .iter()
            .flat_map(|v| v.live_indices())
            .collect();
        union.sort_unstable();
        assert_eq!(union, db.live_indices());

        // Appends land in the owning shard (7 mod 3 = 1); tombstones are
        // reflected in that shard's view only.
        let idx = db.append_record(enc(7, &mut rng)).unwrap();
        assert_eq!(db.shard_of(idx), 1);
        assert_eq!(db.shard(1).live_indices(), vec![1, 4, 7]);
        db.tombstone(4).unwrap();
        assert_eq!(db.shard(1).live_indices(), vec![1, 7]);
        assert_eq!(db.shard(1).num_live(), 2);
        assert_eq!(db.shard(0).live_indices(), vec![0, 3, 6]);

        // Iteration yields (physical index, record) pairs in order.
        let pairs: Vec<usize> = db
            .shard(1)
            .records()
            .map(|(i, r)| {
                assert_eq!(r.len(), 1);
                i
            })
            .collect();
        assert_eq!(pairs, vec![1, 7]);
        assert_eq!(db.shard(1).database().num_records(), 8);

        // Degenerate shard counts clamp to one shard spanning everything.
        let db = db.with_shards(0);
        assert_eq!(db.shard_count(), 1);
        assert_eq!(db.shard(0).live_indices(), db.live_indices());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_panics() {
        let mut rng = StdRng::seed_from_u64(12);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let db =
            EncryptedDatabase::from_records(vec![vec![pk.encrypt_u64(1, &mut rng)]], pk.clone());
        let _ = db.shard(1);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_records_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let records = vec![
            vec![pk.encrypt_u64(1, &mut rng)],
            vec![pk.encrypt_u64(1, &mut rng), pk.encrypt_u64(2, &mut rng)],
        ];
        let _ = EncryptedDatabase::from_records(records, pk);
    }

    #[test]
    fn query_and_masked_result_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let (pk, _) = Keypair::generate(64, &mut rng).split();
        let q = EncryptedQuery::new(vec![pk.encrypt_u64(9, &mut rng)]);
        assert_eq!(q.num_attributes(), 1);
        assert_eq!(q.attributes().len(), 1);

        let r = MaskedResult {
            masks: vec![vec![BigUint::one()]; 3],
            masked_values: vec![vec![BigUint::two()]; 3],
        };
        assert_eq!(r.num_neighbors(), 3);
    }
}
