//! The multi-dataset query-engine façade.
//!
//! The paper's SkNN_b/SkNN_m protocols assume one static outsourced table
//! and one query at a time; [`SknnEngine`] is the front door for the
//! deployment the ROADMAP aims at — one pair of non-colluding clouds
//! hosting **many named encrypted datasets**, answering **validated**
//! queries built through a typed [`QueryBuilder`], running **batches** of
//! them concurrently over one shared key-holder session, and absorbing
//! **dynamic updates** (appends and tombstones) without re-outsourcing a
//! table:
//!
//! ```text
//!  SknnEngine
//!    ├─ dataset registry      name → { EncryptedDatabase (sharded), packing, l }
//!    ├─ QueryBuilder          engine.query("heart").k(5).point(&q).build()?
//!    ├─ run / run_batch       scatter–gather plans over ShardingConfig.shards
//!    │                        shards, pinned round-robin onto
//!    │                        ShardingConfig.sessions independent C2 sessions
//!    └─ append / tombstone    DataOwner::encrypt_record → C1 grows/shrinks
//! ```
//!
//! [`crate::ShardingConfig`] selects the data-plane shape: every dataset
//! is partitioned into `shards` round-robin shards at registration, and
//! the engine stands up `sessions` independent C2 key-holder sessions so a
//! query's per-shard scatter stages overlap on the wire. The default
//! (1 shard, 1 session) reproduces the paper's monolithic scan exactly.
//!
//! All datasets live under one Paillier key pair (one data owner per
//! deployment — the paper's Alice), so cloud C2 still holds exactly one
//! secret key and sees exactly the request set the Section 4.3 security
//! argument reasons about. Each dataset keeps its own distance-bit sizing
//! `l` and its own slot-packing parameters, derived from its value domain
//! at registration.
//!
//! The legacy [`crate::Federation`] façade is a thin shim over a
//! one-dataset engine; new code should use [`SknnEngine`] directly.

mod batch;
mod builder;

pub use batch::QueryOutcome;
pub use builder::{PreparedQuery, Protocol, QueryBuilder};

use crate::config::{FederationConfig, PackingKind, SecureQueryParams, TransportKind};
use crate::error::DurableUpdateError;
use crate::exec::{classify_session_failure, SessionSet};
use crate::parallel::{Admission, ParallelismConfig};
use crate::profile::PoolActivity;
use crate::retry::RetryReport;
use crate::roles::{CloudC1, DataOwner, QueryUser};
use crate::storage::{BackingStore, DatasetStoreHandle};
use crate::{EncryptedDatabase, EncryptedRecord, SknnError, Table, UpdateRejected};
use rand::RngCore;
use sknn_bigint::BigUint;
use sknn_paillier::{
    Ciphertext, PoolConfig, PoolStats, PooledEncryptor, PublicKey, RandomnessPool,
};
use sknn_protocols::stats::CommSnapshot;
use sknn_protocols::transport::{
    serve, BackpressureConfig, CoalesceConfig, Reactor, SessionHealth, SessionKeyHolder,
    SessionPool, TcpTransport,
};
use sknn_protocols::{KeyHolder, LocalKeyHolder, PackedParams};
use sknn_store::{
    key_fingerprint, validate_dataset_name, CompactionReport, DatasetMeta, DatasetStore, Manifest,
    RecoveryReport, StoreError, MANIFEST_FILE,
};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::Path;
use std::sync::Arc;

/// The deployment's handle on cloud C2: one or more independent key-holder
/// sessions (shards are pinned to sessions round-robin by the executor).
pub(crate) enum C2Handle {
    /// C2 runs in-process and is called directly — one holder per
    /// configured session (they share the secret key and the randomness
    /// pool, so extra holders only decorrelate C2-side tie-breaking).
    Local(Vec<LocalKeyHolder>),
    /// C2 runs behind a transport (channel or TCP): a pool of independent
    /// connections. Dropping the pool hangs up every session and reaps the
    /// server threads.
    Pool(SessionPool),
}

impl C2Handle {
    /// The primary session (unsharded queries, gather and finalize).
    pub(crate) fn key_holder(&self) -> &dyn KeyHolder {
        match self {
            C2Handle::Local(holders) => &holders[0],
            C2Handle::Pool(pool) => pool.session(0),
        }
    }

    /// Every session, in shard-pinning order.
    pub(crate) fn key_holders(&self) -> Vec<&dyn KeyHolder> {
        match self {
            C2Handle::Local(holders) => holders.iter().map(|h| h as &dyn KeyHolder).collect(),
            C2Handle::Pool(pool) => pool
                .sessions()
                .iter()
                .map(|s| s as &dyn KeyHolder)
                .collect(),
        }
    }

    pub(crate) fn comm_snapshot(&self) -> Option<CommSnapshot> {
        match self {
            C2Handle::Local(_) => None,
            C2Handle::Pool(pool) => Some(pool.comm_snapshot()),
        }
    }

    /// The session pool, when C2 is behind a transport (health marks and
    /// resilience counters live there; in-process holders need neither).
    pub(crate) fn pool(&self) -> Option<&SessionPool> {
        match self {
            C2Handle::Local(_) => None,
            C2Handle::Pool(pool) => Some(pool),
        }
    }
}

/// Per-dataset registration options for
/// [`SknnEngine::register_dataset_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DatasetOptions {
    /// Bit length of the squared-distance domain (the paper's `l`).
    /// `None` derives the smallest safe value from the table and
    /// `max_query_value`.
    pub distance_bits: Option<usize>,
    /// Largest attribute value queries against this dataset may contain.
    /// Together with the table's own maximum it fixes the dataset's value
    /// bound, which the [`QueryBuilder`] enforces up front.
    pub max_query_value: u64,
}

/// One hosted dataset: an encrypted database plus the query-domain
/// parameters it was registered with.
pub struct Dataset {
    pub(crate) c1: CloudC1,
    distance_bits: usize,
    value_bound: u64,
    /// The durable shard store backing this dataset (`None` for in-memory
    /// datasets). The database holds the same handle as its write-ahead
    /// sink; the engine reaches through this one for stable-index
    /// resolution and compaction.
    store: Option<Arc<DatasetStoreHandle>>,
}

impl Dataset {
    /// Number of live (queryable) records.
    pub fn num_records(&self) -> usize {
        self.c1.database().num_live()
    }

    /// Number of physical records, including tombstoned ones.
    pub fn num_physical_records(&self) -> usize {
        self.c1.database().num_records()
    }

    /// Number of attributes per record.
    pub fn num_attributes(&self) -> usize {
        self.c1.database().num_attributes()
    }

    /// The distance-domain bit length (`l`) secure queries default to.
    pub fn distance_bits(&self) -> usize {
        self.distance_bits
    }

    /// The per-attribute value bound the dataset was registered with (the
    /// larger of the table's maximum and `max_query_value`). Queries with
    /// attributes above it are rejected by [`QueryBuilder::build`] because
    /// they could overflow the `l`-bit distance domain.
    pub fn value_bound(&self) -> u64 {
        self.value_bound
    }

    /// The slot-packing parameters in effect for this dataset (`None` when
    /// packing is off or infeasible under [`PackingKind::Auto`]).
    pub fn packing(&self) -> Option<&PackedParams> {
        self.c1.packing()
    }

    /// Number of shards this dataset's records are partitioned into
    /// (from [`crate::ShardingConfig`] at registration time).
    pub fn shards(&self) -> usize {
        self.c1.database().shard_count()
    }

    /// Cloud C1's view of this dataset (for driving the lower-level API
    /// directly).
    pub fn cloud(&self) -> &CloudC1 {
        &self.c1
    }

    /// Whether this dataset is backed by the durable shard store (true for
    /// datasets registered through
    /// [`SknnEngine::register_dataset_persistent`] or reloaded by
    /// [`SknnEngine::open_dir`]).
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// How many times this dataset has been compacted (0 for in-memory
    /// datasets).
    pub fn compactions(&self) -> u64 {
        self.store
            .as_ref()
            .map_or(0, |s| s.with(|store| store.manifest().compactions))
    }
}

/// A two-cloud SkNN deployment hosting many named encrypted datasets.
///
/// See the [module docs](self) for the architecture. Typical use:
///
/// ```
/// use rand::SeedableRng;
/// use sknn_core::{Protocol, SknnEngine, FederationConfig, Table};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let mut engine = SknnEngine::setup(
///     FederationConfig { key_bits: 96, ..Default::default() },
///     &mut rng,
/// ).unwrap();
///
/// let table = Table::new(vec![vec![2, 2], vec![9, 1], vec![4, 7]]).unwrap();
/// engine.register_dataset("demo", &table, &mut rng).unwrap();
///
/// let outcome = engine
///     .query("demo")
///     .k(1)
///     .point(&[3, 2])
///     .protocol(Protocol::Basic)
///     .run(&mut rng)
///     .unwrap();
/// assert_eq!(outcome.result, vec![vec![2, 2]]);
/// ```
pub struct SknnEngine {
    owner: DataOwner,
    user: QueryUser,
    c2: C2Handle,
    /// Offline randomness pools (C1's, C2's), kept for hit/fallback
    /// accounting; empty when pooling is disabled.
    pools: Vec<Arc<RandomnessPool>>,
    /// C1's pool, attached to every registered dataset's encryptor.
    c1_pool: Option<Arc<RandomnessPool>>,
    datasets: BTreeMap<String, Dataset>,
    /// What crash recovery had to do per dataset reloaded by
    /// [`SknnEngine::open_dir`].
    recovery: BTreeMap<String, RecoveryReport>,
    parallelism: ParallelismConfig,
    /// The per-engine query admission gate; `None` when
    /// [`FederationConfig::admission`] is 0 (the default).
    admission: Option<Admission>,
    config: FederationConfig,
}

impl SknnEngine {
    /// Stands up both clouds under a fresh key pair. Datasets are
    /// registered afterwards with [`SknnEngine::register_dataset`].
    ///
    /// # Errors
    /// Returns an error when the configured transport cannot be
    /// established.
    pub fn setup<R: RngCore + ?Sized>(
        config: FederationConfig,
        rng: &mut R,
    ) -> Result<SknnEngine, SknnError> {
        let owner = DataOwner::new(config.key_bits, rng);
        Self::setup_with_owner(owner, config)
    }

    /// Like [`SknnEngine::setup`] but with a caller-supplied data owner
    /// (i.e. a pre-generated key pair), which benchmark code uses to
    /// amortize key generation across measurements.
    ///
    /// The owner's actual modulus size supersedes `config.key_bits` for
    /// every size-dependent derivation (distance-bit headroom, slot
    /// packing): those guards protect against overflow in the *real*
    /// message space, so sizing them from a config value that disagrees
    /// with the key would corrupt results silently.
    ///
    /// # Errors
    /// See [`SknnEngine::setup`].
    pub fn setup_with_owner(
        owner: DataOwner,
        mut config: FederationConfig,
    ) -> Result<SknnEngine, SknnError> {
        config.key_bits = owner.public_key().bits();
        let public_key = owner.public_key().clone();
        let user = QueryUser::new(public_key.clone());

        // Offline/online split: one randomness pool per cloud, pre-warmed so
        // the first query already encrypts with one multiplication per unit.
        // `seed: None` keeps the PoolConfig contract — OS entropy, the right
        // default for anything security-relevant. An explicit seed (for
        // reproducible experiments) is derived per cloud, because two pools
        // replaying the same `r` sequence would produce correlated
        // ciphertexts across the clouds.
        let mut pools = Vec::new();
        let mut pool_for = |salt: u64| -> Arc<RandomnessPool> {
            let pool = RandomnessPool::new(
                public_key.clone(),
                PoolConfig {
                    seed: config.pool.seed.map(|s| s ^ salt),
                    ..config.pool
                },
            );
            pool.prewarm(config.pool_prewarm);
            pools.push(Arc::clone(&pool));
            pool
        };
        let pooling = config.pool.capacity > 0;
        let c1_pool = pooling.then(|| pool_for(0xC1));
        // One offline pool serves every C2 session: the holders share the
        // secret key, so sharing the precomputed `r^N` units is safe and
        // keeps the prewarm cost independent of the session count.
        let c2_pool = pooling.then(|| pool_for(0xC2));

        let sessions = config.sharding.sessions.max(1);
        // Session 0 keeps the configured seed exactly (bit-compatible with
        // single-session deployments); extra sessions derive distinct
        // streams so their tie-breaking randomness is uncorrelated.
        let holder_for = |i: usize| {
            let seed = if i == 0 {
                config.c2_seed
            } else {
                config
                    .c2_seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64))
            };
            let mut holder = LocalKeyHolder::new(owner.private_key().clone(), seed);
            if let Some(pool) = &c2_pool {
                // The pool is built from this deployment's own key, so the
                // key check cannot fail; unpooled encryption is the correct
                // degradation if it ever did.
                let _ = holder.attach_pool(Arc::clone(pool));
            }
            holder
        };
        let workers = config.threads.max(1);
        // A serial C1 has nothing to merge with: coalescing would only add
        // the collection-window latency to every round trip.
        let coalesce = if config.coalesce && workers > 1 {
            CoalesceConfig::enabled()
        } else {
            CoalesceConfig::disabled()
        };
        let c2 = match config.transport {
            TransportKind::InProcess => C2Handle::Local((0..sessions).map(holder_for).collect()),
            TransportKind::Channel => C2Handle::Pool(SessionPool::spawn_in_process(
                holder_for, sessions, workers, coalesce,
            )),
            TransportKind::Tcp => {
                // One listener (and server thread) per session: the
                // connections are fully independent wires, which is the
                // point of a multi-session deployment.
                let mut clients = Vec::with_capacity(sessions);
                let mut servers = Vec::with_capacity(sessions);
                for i in 0..sessions {
                    let holder = holder_for(i);
                    let listener = TcpListener::bind("127.0.0.1:0")
                        .map_err(|e| transport_setup_error(&e.to_string()))?;
                    let addr = listener
                        .local_addr()
                        .map_err(|e| transport_setup_error(&e.to_string()))?;
                    let server = std::thread::Builder::new()
                        .name(format!("sknn-c2-tcp-{i}"))
                        .spawn(move || {
                            let server_end = TcpTransport::accept(&listener)?;
                            serve(&server_end, &holder, workers)
                        })
                        .expect("spawn key-holder server thread");
                    servers.push(server);
                    let transport = TcpTransport::connect(addr).map_err(|e| {
                        // Unblock every pending accept() so no server
                        // thread (each holding a copy of the private key)
                        // leaks: a throwaway connection that drops
                        // immediately reads as a clean hang-up in serve().
                        // Already-connected sessions hang up when `clients`
                        // drops below.
                        let _ = std::net::TcpStream::connect(addr);
                        transport_setup_error(&e.to_string())
                    })?;
                    clients.push(SessionKeyHolder::connect(
                        public_key.clone(),
                        Arc::new(transport),
                        coalesce,
                    ));
                }
                C2Handle::Pool(
                    SessionPool::from_parts(clients, servers).map_err(SknnError::Protocol)?,
                )
            }
            TransportKind::AsyncChannel | TransportKind::AsyncTcp => {
                // One reactor thread multiplexes every session; the C2
                // server side stays blocking (serve() and its worker pool
                // are unchanged), so async-vs-blocking equivalence compares
                // only the C1 demux strategy.
                let backpressure = BackpressureConfig {
                    window: config.inflight_window,
                    queue: config.inflight_queue,
                    ..BackpressureConfig::default()
                };
                let reactor = Reactor::new().map_err(|e| transport_setup_error(&e.to_string()))?;
                let mut clients = Vec::with_capacity(sessions);
                let mut servers = Vec::with_capacity(sessions);
                for i in 0..sessions {
                    let holder = holder_for(i);
                    let conn = if config.transport == TransportKind::AsyncChannel {
                        let (conn, server_end) = reactor
                            .channel_pair(backpressure, None)
                            .map_err(|e| transport_setup_error(&e.to_string()))?;
                        let server = std::thread::Builder::new()
                            .name(format!("sknn-c2-achan-{i}"))
                            .spawn(move || serve(&server_end, &holder, workers))
                            .map_err(|e| transport_setup_error(&e.to_string()))?;
                        servers.push(server);
                        conn
                    } else {
                        let listener = TcpListener::bind("127.0.0.1:0")
                            .map_err(|e| transport_setup_error(&e.to_string()))?;
                        let addr = listener
                            .local_addr()
                            .map_err(|e| transport_setup_error(&e.to_string()))?;
                        let server = std::thread::Builder::new()
                            .name(format!("sknn-c2-atcp-{i}"))
                            .spawn(move || {
                                let server_end = TcpTransport::accept(&listener)?;
                                serve(&server_end, &holder, workers)
                            })
                            .map_err(|e| transport_setup_error(&e.to_string()))?;
                        servers.push(server);
                        reactor
                            .dial_tcp(&addr.to_string(), backpressure)
                            .map_err(|e| {
                                // Same leak-avoidance as the blocking Tcp
                                // arm: unblock the pending accept() so the
                                // server thread exits.
                                let _ = std::net::TcpStream::connect(addr);
                                transport_setup_error(&e.to_string())
                            })?
                    };
                    clients.push(SessionKeyHolder::connect_async(
                        public_key.clone(),
                        conn,
                        coalesce,
                    ));
                }
                C2Handle::Pool(
                    SessionPool::from_parts(clients, servers)
                        .map_err(SknnError::Protocol)?
                        .with_reactor(reactor),
                )
            }
        };
        // The per-request deadline is the liveness half of the retry
        // policy: without it a dropped frame parks a worker forever and no
        // amount of retrying ever runs.
        if let C2Handle::Pool(pool) = &c2 {
            pool.set_deadline(config.retry.deadline);
        }

        Ok(SknnEngine {
            owner,
            user,
            c2,
            pools,
            c1_pool,
            datasets: BTreeMap::new(),
            recovery: BTreeMap::new(),
            parallelism: ParallelismConfig {
                threads: config.threads.max(1),
            },
            admission: (config.admission > 0).then(|| Admission::new(config.admission)),
            config,
        })
    }

    /// Like [`SknnEngine::setup_with_owner`] but over a caller-supplied,
    /// already-connected C2 session pool instead of standing up the
    /// transport from [`FederationConfig::transport`]. This is the path for
    /// embedders that bootstrap their own wires — and for fault-injection
    /// tests, which wrap each session's transport in a
    /// [`sknn_protocols::transport::FaultInjectTransport`] before handing
    /// the pool over.
    ///
    /// The engine installs [`FederationConfig::retry`]'s deadline on every
    /// pool session; C2-side offline randomness pooling is skipped (the
    /// key holders live on the other end of the wire), while C1's pool is
    /// set up as usual.
    ///
    /// # Errors
    /// Currently infallible; the `Result` matches the other constructors so
    /// call sites are uniform.
    pub fn setup_with_sessions(
        owner: DataOwner,
        mut config: FederationConfig,
        sessions: SessionPool,
    ) -> Result<SknnEngine, SknnError> {
        config.key_bits = owner.public_key().bits();
        let public_key = owner.public_key().clone();
        let user = QueryUser::new(public_key.clone());
        let mut pools = Vec::new();
        let pooling = config.pool.capacity > 0;
        let c1_pool = pooling.then(|| {
            let pool = RandomnessPool::new(
                public_key.clone(),
                PoolConfig {
                    seed: config.pool.seed.map(|s| s ^ 0xC1),
                    ..config.pool
                },
            );
            pool.prewarm(config.pool_prewarm);
            pools.push(Arc::clone(&pool));
            pool
        });
        sessions.set_deadline(config.retry.deadline);
        Ok(SknnEngine {
            owner,
            user,
            c2: C2Handle::Pool(sessions),
            pools,
            c1_pool,
            datasets: BTreeMap::new(),
            recovery: BTreeMap::new(),
            parallelism: ParallelismConfig {
                threads: config.threads.max(1),
            },
            admission: (config.admission > 0).then(|| Admission::new(config.admission)),
            config,
        })
    }

    /// Stands up a **durable** deployment rooted at `root`: the engine is
    /// constructed as by [`SknnEngine::setup_with_owner`] (with
    /// `config.store_root` set to `root`), then every dataset directory
    /// found under `root` is crash-recovered and registered. An empty or
    /// missing `root` is a fresh durable deployment — create datasets with
    /// [`SknnEngine::register_dataset_persistent`] and they will be here
    /// on the next `open_dir`.
    ///
    /// The key pair is **not** persisted (the store holds only
    /// ciphertexts); the caller supplies the same owner across restarts.
    /// Each dataset's manifest pins a fingerprint of the public modulus and
    /// the shard count, so opening under a different key pair or a
    /// different [`crate::ShardingConfig::shards`] fails with a typed
    /// [`SknnError::Storage`] error instead of serving garbage.
    ///
    /// # Errors
    /// Transport-setup errors as in [`SknnEngine::setup`], and
    /// [`SknnError::Storage`] for unreadable, corrupt, or mismatched
    /// dataset directories. Torn log tails are *not* errors — they are
    /// truncated to the last consistent prefix, and
    /// [`SknnEngine::recovery_report`] says what was dropped.
    pub fn open_dir(
        owner: DataOwner,
        mut config: FederationConfig,
        root: &Path,
    ) -> Result<SknnEngine, SknnError> {
        config.store_root = Some(root.to_path_buf());
        let mut engine = Self::setup_with_owner(owner, config)?;
        std::fs::create_dir_all(root).map_err(|e| {
            SknnError::Storage(StoreError::Io {
                path: root.display().to_string(),
                operation: "create store root",
                message: e.to_string(),
            })
        })?;
        let mut names = Vec::new();
        let entries = std::fs::read_dir(root).map_err(|e| {
            SknnError::Storage(StoreError::Io {
                path: root.display().to_string(),
                operation: "read store root",
                message: e.to_string(),
            })
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| {
                SknnError::Storage(StoreError::Io {
                    path: root.display().to_string(),
                    operation: "read store root",
                    message: e.to_string(),
                })
            })?;
            if !entry.path().join(MANIFEST_FILE).is_file() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_str().ok_or_else(|| {
                SknnError::Storage(StoreError::InvalidDatasetName {
                    name: entry.path().display().to_string(),
                })
            })?;
            validate_dataset_name(name).map_err(SknnError::Storage)?;
            names.push(name.to_string());
        }
        // Deterministic registration order regardless of directory order.
        names.sort();
        for name in names {
            engine.load_dataset(&name)?;
        }
        Ok(engine)
    }

    /// Encrypts `table` under the deployment's key and registers it as the
    /// dataset `name`, using the engine-wide defaults from
    /// [`FederationConfig`]: `distance_bits` (derived from the table when
    /// `None`) and `max_query_value` — exactly what the one-dataset
    /// [`crate::Federation`] shim applies to its table.
    ///
    /// # Errors
    /// See [`SknnEngine::register_dataset_with`].
    pub fn register_dataset<R: RngCore + ?Sized>(
        &mut self,
        name: &str,
        table: &Table,
        rng: &mut R,
    ) -> Result<(), SknnError> {
        let opts = DatasetOptions {
            distance_bits: self.config.distance_bits,
            max_query_value: self.config.max_query_value,
        };
        self.register_dataset_with(name, table, opts, rng)
    }

    /// [`SknnEngine::register_dataset`] with explicit per-dataset options.
    ///
    /// # Errors
    /// Returns [`SknnError::DatasetAlreadyRegistered`] for a duplicate
    /// name, [`SknnError::InsufficientDistanceBits`] when the requested or
    /// derived `l` cannot hold this table's worst-case squared distance (or
    /// does not fit the key), [`SknnError::PackingInfeasible`] when a fixed
    /// packing factor cannot be honored for this dataset's domain, and
    /// [`SknnError::Paillier`] when a table value does not fit the key's
    /// message space.
    pub fn register_dataset_with<R: RngCore + ?Sized>(
        &mut self,
        name: &str,
        table: &Table,
        opts: DatasetOptions,
        rng: &mut R,
    ) -> Result<(), SknnError> {
        if self.datasets.contains_key(name) {
            return Err(SknnError::DatasetAlreadyRegistered {
                name: name.to_string(),
            });
        }
        let required = table.required_distance_bits(opts.max_query_value);
        let distance_bits = opts.distance_bits.unwrap_or(required);
        if distance_bits < required {
            return Err(SknnError::InsufficientDistanceBits {
                l: distance_bits,
                required,
            });
        }
        if distance_bits + 2 >= self.config.key_bits {
            return Err(SknnError::InsufficientDistanceBits {
                l: distance_bits,
                required: self.config.key_bits.saturating_sub(2),
            });
        }
        let packing = derive_packing(&self.config, distance_bits)?;

        let db = self
            .owner
            .encrypt_table(table, rng)?
            .with_shards(self.config.sharding.shards);
        let mut c1 = CloudC1::new(db);
        if let Some(pool) = &self.c1_pool {
            c1 = c1.with_encryptor(PooledEncryptor::new(Arc::clone(pool)));
        }
        if let Some(params) = packing {
            c1 = c1.with_packing(params);
        }
        self.datasets.insert(
            name.to_string(),
            Dataset {
                c1,
                distance_bits,
                value_bound: table.max_attribute_value().max(opts.max_query_value),
                store: None,
            },
        );
        Ok(())
    }

    /// Like [`SknnEngine::register_dataset`] but **durable**: the encrypted
    /// table is written ahead to `<store_root>/<name>/` (per-shard
    /// append-only ciphertext logs plus a manifest pinning the key
    /// fingerprint and shard count) before the dataset is registered, so a
    /// later [`SknnEngine::open_dir`] with the same owner reloads it
    /// bit-identically. Requires [`FederationConfig::store_root`] to be set
    /// (which [`SknnEngine::open_dir`] does).
    ///
    /// # Errors
    /// Everything [`SknnEngine::register_dataset_with`] can return, plus
    /// [`SknnError::Storage`] when no store root is configured, the name is
    /// not filesystem-safe ([`sknn_store::validate_dataset_name`]), the
    /// directory already holds a dataset, or writing fails (a half-created
    /// directory is cleaned up; nothing is registered).
    pub fn register_dataset_persistent<R: RngCore + ?Sized>(
        &mut self,
        name: &str,
        table: &Table,
        rng: &mut R,
    ) -> Result<(), SknnError> {
        let opts = DatasetOptions {
            distance_bits: self.config.distance_bits,
            max_query_value: self.config.max_query_value,
        };
        self.register_dataset_persistent_with(name, table, opts, rng)
    }

    /// [`SknnEngine::register_dataset_persistent`] with explicit
    /// per-dataset options.
    ///
    /// # Errors
    /// See [`SknnEngine::register_dataset_persistent`].
    pub fn register_dataset_persistent_with<R: RngCore + ?Sized>(
        &mut self,
        name: &str,
        table: &Table,
        opts: DatasetOptions,
        rng: &mut R,
    ) -> Result<(), SknnError> {
        let root = self.config.store_root.clone().ok_or_else(|| {
            SknnError::Storage(StoreError::Invariant {
                message: "no store root configured: set FederationConfig::store_root \
                          or construct the engine with SknnEngine::open_dir"
                    .to_string(),
            })
        })?;
        validate_dataset_name(name).map_err(SknnError::Storage)?;
        if self.datasets.contains_key(name) {
            return Err(SknnError::DatasetAlreadyRegistered {
                name: name.to_string(),
            });
        }
        let dir = root.join(name);
        if dir.join(MANIFEST_FILE).is_file() {
            return Err(SknnError::Storage(StoreError::Invariant {
                message: format!(
                    "dataset directory {} already exists on disk; \
                     open_dir reloads it instead",
                    dir.display()
                ),
            }));
        }
        let required = table.required_distance_bits(opts.max_query_value);
        let distance_bits = opts.distance_bits.unwrap_or(required);
        if distance_bits < required {
            return Err(SknnError::InsufficientDistanceBits {
                l: distance_bits,
                required,
            });
        }
        if distance_bits + 2 >= self.config.key_bits {
            return Err(SknnError::InsufficientDistanceBits {
                l: distance_bits,
                required: self.config.key_bits.saturating_sub(2),
            });
        }
        let packing = derive_packing(&self.config, distance_bits)?;

        let db = self
            .owner
            .encrypt_table(table, rng)?
            .with_shards(self.config.sharding.shards);
        let value_bound = table.max_attribute_value().max(opts.max_query_value);
        let meta = DatasetMeta {
            key_fingerprint: key_fingerprint(&self.owner.public_key().n().to_bytes_be()),
            shards: self.config.sharding.shards as u32,
            attributes: db.num_attributes() as u32,
            value_bound,
            distance_bits: distance_bits as u32,
        };
        // Write-ahead the full table; a failure anywhere leaves no
        // half-created dataset directory behind.
        let created = (|| {
            let mut store = DatasetStore::create(&dir, meta)?;
            let raw: Vec<Vec<BigUint>> = db
                .records()
                .iter()
                .map(|r| r.iter().map(|c| c.as_raw().clone()).collect())
                .collect();
            store.append_batch(0, &raw)?;
            Ok(store)
        })();
        let store = match created {
            Ok(store) => store,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(SknnError::Storage(e));
            }
        };
        let handle = Arc::new(DatasetStoreHandle::new(store));
        let db = db.with_backing(Arc::clone(&handle) as Arc<dyn BackingStore>);
        let mut c1 = CloudC1::new(db);
        if let Some(pool) = &self.c1_pool {
            c1 = c1.with_encryptor(PooledEncryptor::new(Arc::clone(pool)));
        }
        if let Some(params) = packing {
            c1 = c1.with_packing(params);
        }
        self.datasets.insert(
            name.to_string(),
            Dataset {
                c1,
                distance_bits,
                value_bound,
                store: Some(handle),
            },
        );
        Ok(())
    }

    /// Crash-recovers and registers the dataset stored at
    /// `<store_root>/<name>/`, refusing key or configuration mismatches.
    fn load_dataset(&mut self, name: &str) -> Result<(), SknnError> {
        let root = self.config.store_root.clone().ok_or_else(|| {
            SknnError::Storage(StoreError::Invariant {
                message: "load_dataset reached without a store root".to_string(),
            })
        })?;
        let dir = root.join(name);
        let manifest = Manifest::load(&dir.join(MANIFEST_FILE)).map_err(SknnError::Storage)?;
        let found = key_fingerprint(&self.owner.public_key().n().to_bytes_be());
        if manifest.meta.key_fingerprint != found {
            return Err(SknnError::Storage(StoreError::KeyMismatch {
                expected: manifest.meta.key_fingerprint,
                found,
            }));
        }
        let shards = self.config.sharding.shards as u64;
        if u64::from(manifest.meta.shards) != shards {
            return Err(SknnError::Storage(StoreError::ManifestMismatch {
                field: "shard count",
                expected: u64::from(manifest.meta.shards),
                found: shards,
            }));
        }
        let distance_bits = manifest.meta.distance_bits as usize;
        if distance_bits + 2 >= self.config.key_bits {
            return Err(SknnError::InsufficientDistanceBits {
                l: distance_bits,
                required: self.config.key_bits.saturating_sub(2),
            });
        }
        let packing = derive_packing(&self.config, distance_bits)?;
        let (store, report) =
            DatasetStore::open(&dir, &manifest.meta).map_err(SknnError::Storage)?;

        let records: Vec<EncryptedRecord> = store
            .records()
            .iter()
            .map(|r| {
                r.iter()
                    .map(|raw| Ciphertext::from_raw(raw.clone()))
                    .collect()
            })
            .collect();
        let live = store.live().to_vec();
        let attributes = manifest.meta.attributes as usize;
        let value_bound = manifest.meta.value_bound;
        let handle = Arc::new(DatasetStoreHandle::new(store));
        let db = EncryptedDatabase::from_parts(
            records,
            live,
            attributes,
            self.owner.public_key().clone(),
        )
        .map_err(SknnError::Storage)?
        .with_shards(self.config.sharding.shards)
        .with_backing(Arc::clone(&handle) as Arc<dyn BackingStore>);
        let mut c1 = CloudC1::new(db);
        if let Some(pool) = &self.c1_pool {
            c1 = c1.with_encryptor(PooledEncryptor::new(Arc::clone(pool)));
        }
        if let Some(params) = packing {
            c1 = c1.with_packing(params);
        }
        self.recovery.insert(name.to_string(), report);
        self.datasets.insert(
            name.to_string(),
            Dataset {
                c1,
                distance_bits,
                value_bound,
                store: Some(handle),
            },
        );
        Ok(())
    }

    /// What crash recovery had to do for dataset `name` when it was
    /// reloaded by [`SknnEngine::open_dir`] (`None` for datasets registered
    /// in this process).
    pub fn recovery_report(&self, name: &str) -> Option<&RecoveryReport> {
        self.recovery.get(name)
    }

    /// Forces every durable dataset's acknowledged writes onto stable
    /// storage. A no-op for in-memory datasets.
    ///
    /// # Errors
    /// Returns the first [`SknnError::Storage`] failure.
    pub fn flush(&self) -> Result<(), SknnError> {
        for dataset in self.datasets.values() {
            dataset.c1.database().flush().map_err(SknnError::Storage)?;
        }
        Ok(())
    }

    /// Compacts the durable dataset `name`: rewrites its shard logs without
    /// tombstoned records, renumbering the survivors densely (in order, so
    /// query results are unchanged) and extending the manifest's
    /// stable-index map so every index the owner ever observed keeps
    /// resolving — to the record's new position, or to a typed
    /// "already tombstoned" rejection once it is reclaimed.
    ///
    /// # Errors
    /// Returns [`SknnError::UnknownDataset`] for an unregistered name and
    /// [`SknnError::Storage`] for a non-durable dataset or an I/O failure
    /// (the previous generation stays intact in that case — the manifest
    /// rename is the commit point).
    pub fn compact_dataset(&mut self, name: &str) -> Result<CompactionReport, SknnError> {
        let dataset = self
            .datasets
            .get_mut(name)
            .ok_or_else(|| SknnError::UnknownDataset {
                name: name.to_string(),
            })?;
        let handle = dataset.store.as_ref().ok_or_else(|| {
            SknnError::Storage(StoreError::Invariant {
                message: format!("dataset {name:?} is in-memory; nothing to compact"),
            })
        })?;
        let report = handle
            .with(DatasetStore::compact)
            .map_err(SknnError::Storage)?;
        // Rebuild C1's in-memory view from the compacted store so the
        // physical indices match the rewritten logs.
        let (records, live) = handle.with(|s| {
            let records: Vec<EncryptedRecord> = s
                .records()
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|raw| Ciphertext::from_raw(raw.clone()))
                        .collect()
                })
                .collect();
            (records, s.live().to_vec())
        });
        let attributes = dataset.c1.database().num_attributes();
        let db = EncryptedDatabase::from_parts(
            records,
            live,
            attributes,
            self.owner.public_key().clone(),
        )
        .map_err(SknnError::Storage)?
        .with_shards(self.config.sharding.shards)
        .with_backing(Arc::clone(handle) as Arc<dyn BackingStore>);
        *dataset.c1.database_mut() = db;
        Ok(report)
    }

    /// Retires the dataset `name`: its ciphertexts are dropped from C1 and
    /// subsequent queries against the name fail with
    /// [`SknnError::UnknownDataset`].
    ///
    /// # Errors
    /// Returns [`SknnError::UnknownDataset`] when no such dataset exists.
    pub fn remove_dataset(&mut self, name: &str) -> Result<Dataset, SknnError> {
        self.datasets
            .remove(name)
            .ok_or_else(|| SknnError::UnknownDataset {
                name: name.to_string(),
            })
    }

    /// Borrows a registered dataset.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.get(name)
    }

    /// The registered dataset names, in sorted order.
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Starts building a query against the dataset `name`. Validation
    /// (including whether the dataset exists) happens at
    /// [`QueryBuilder::build`].
    pub fn query(&self, name: &str) -> QueryBuilder<'_> {
        QueryBuilder::new(self, name)
    }

    /// Appends already-encrypted records (from
    /// [`DataOwner::encrypt_record`]) to the dataset `name`, returning the
    /// **stable** indices they were stored at (for an in-memory or
    /// never-compacted dataset these equal the physical positions). The
    /// whole batch is atomic — a rejected record leaves nothing appended —
    /// and for a durable dataset it is write-ahead: the records become
    /// visible to queries only after the shard logs acknowledged them.
    ///
    /// # Errors
    /// Returns [`SknnError::UnknownDataset`] for an unregistered name,
    /// [`SknnError::InvalidUpdate`] when a record's width differs from the
    /// dataset's, and [`SknnError::Storage`] when the backing store refuses
    /// the batch (in every case nothing is appended).
    pub fn append_records(
        &mut self,
        name: &str,
        records: Vec<EncryptedRecord>,
    ) -> Result<Vec<usize>, SknnError> {
        let dataset = self
            .datasets
            .get_mut(name)
            .ok_or_else(|| SknnError::UnknownDataset {
                name: name.to_string(),
            })?;
        let physical = dataset
            .c1
            .database_mut()
            .append_records_durable(records)
            .map_err(|e| match e {
                DurableUpdateError::Rejected(rejected) => SknnError::InvalidUpdate {
                    dataset: name.to_string(),
                    rejected,
                },
                DurableUpdateError::Storage(e) => SknnError::Storage(e),
            })?;
        match &dataset.store {
            None => Ok(physical),
            Some(handle) => Ok(handle.with(|s| {
                physical
                    .iter()
                    .map(|&p| s.stable_of_new_physical(p as u64) as usize)
                    .collect()
            })),
        }
    }

    /// Tombstones the record at stable `index` in dataset `name`: the index
    /// stays allocated (no other record ever reuses it) but no subsequent
    /// query can return the record. For a durable dataset the tombstone is
    /// write-ahead — durable before visible — and `index` is interpreted in
    /// the stable numbering [`SknnEngine::append_records`] returns, which
    /// survives compaction.
    ///
    /// # Errors
    /// Returns [`SknnError::UnknownDataset`] for an unregistered name,
    /// [`SknnError::InvalidUpdate`] for an out-of-range or already
    /// tombstoned index (a record reclaimed by compaction counts as
    /// already tombstoned), and [`SknnError::Storage`] when the backing
    /// store refuses the write (the record then stays live).
    pub fn tombstone_record(&mut self, name: &str, index: usize) -> Result<(), SknnError> {
        let dataset = self
            .datasets
            .get_mut(name)
            .ok_or_else(|| SknnError::UnknownDataset {
                name: name.to_string(),
            })?;
        let physical = match &dataset.store {
            None => index,
            Some(handle) => {
                let stable_count = handle.with(|s| s.stable_count());
                match handle.with(|s| s.stable_to_physical(index as u64)) {
                    Ok(Some(p)) => p as usize,
                    // Reclaimed by compaction: the owner tombstoned it long
                    // ago, so answer as for any other dead index.
                    Ok(None) => {
                        return Err(SknnError::InvalidUpdate {
                            dataset: name.to_string(),
                            rejected: UpdateRejected::AlreadyTombstoned { index },
                        });
                    }
                    Err(_) => {
                        return Err(SknnError::InvalidUpdate {
                            dataset: name.to_string(),
                            rejected: UpdateRejected::IndexOutOfRange {
                                index,
                                records: stable_count as usize,
                            },
                        });
                    }
                }
            }
        };
        dataset
            .c1
            .database_mut()
            .tombstone_durable(physical)
            .map_err(|e| match e {
                DurableUpdateError::Rejected(rejected) => SknnError::InvalidUpdate {
                    dataset: name.to_string(),
                    // Report in the caller's (stable) numbering.
                    rejected: match rejected {
                        UpdateRejected::IndexOutOfRange { records, .. } => {
                            UpdateRejected::IndexOutOfRange { index, records }
                        }
                        UpdateRejected::AlreadyTombstoned { .. } => {
                            UpdateRejected::AlreadyTombstoned { index }
                        }
                        other => other,
                    },
                },
                DurableUpdateError::Storage(e) => SknnError::Storage(e),
            })
    }

    /// Runs one prepared query with the engine's configured parallelism.
    ///
    /// # Errors
    /// Returns [`SknnError::UnknownDataset`] when the query's dataset has
    /// been removed since it was built, and propagates protocol errors.
    /// Validation performed by [`QueryBuilder::build`] is not repeated
    /// in full, but the protocol layer re-checks `k` and the arity against
    /// the dataset's *current* state, so a query staled by updates surfaces
    /// a typed error rather than a panic.
    pub fn run<R: RngCore + ?Sized>(
        &self,
        query: &PreparedQuery,
        rng: &mut R,
    ) -> Result<QueryOutcome, SknnError> {
        self.run_with_parallelism(query, self.parallelism, rng)
    }

    pub(crate) fn run_with_parallelism<R: RngCore + ?Sized>(
        &self,
        query: &PreparedQuery,
        parallelism: ParallelismConfig,
        rng: &mut R,
    ) -> Result<QueryOutcome, SknnError> {
        // Admission control (opt-in): every query path — run, run_batch,
        // the Federation facade — funnels through here, so one gate bounds
        // the engine's aggregate concurrency. The permit is held for the
        // whole query, including its scatter fan-out, and returns on every
        // exit path (it is an RAII guard).
        let _admission = self.admission.as_ref().map(|gate| gate.acquire());
        let dataset = self
            .dataset(query.dataset())
            .ok_or_else(|| SknnError::UnknownDataset {
                name: query.dataset().to_string(),
            })?;
        let comm_before = self.comm_stats();
        let pool_before = self.pool_stats();
        let enc_q = self.user.encrypt_query(query.point(), rng)?;
        let policy = self.config.retry;
        let secure_params = SecureQueryParams {
            k: query.k(),
            l: query
                .requested_distance_bits()
                .unwrap_or(dataset.distance_bits),
        };
        let holders = self.c2.key_holders();
        // Whole-query retry: the executor recovers failed *scatter* stages
        // itself; what reaches here is a failed monolithic or gather stage.
        // Each re-run excludes sessions found dead, so it lands on the
        // survivors, and re-derives nothing — the query ciphertexts are
        // reused as-is, so a successful re-run answers exactly like a
        // fault-free run would.
        let mut report = RetryReport::default();
        let mut excluded: Vec<usize> = Vec::new();
        let mut attempt = 0usize;
        let (masked, mut profile, audit) = loop {
            attempt += 1;
            // Indices into `holders` that are still in play, so the shard
            // report below can be translated back to pool positions.
            let live_idx: Vec<usize> = (0..holders.len())
                .filter(|i| !excluded.contains(i))
                .collect();
            let live: Vec<&dyn KeyHolder> = live_idx.iter().map(|&i| holders[i]).collect();
            let sessions = SessionSet::new(live);
            let run = match query.protocol() {
                Protocol::Basic => dataset.c1.process_basic_sharded(
                    &sessions,
                    &enc_q,
                    query.k(),
                    parallelism,
                    &policy,
                    rng,
                ),
                Protocol::Secure => dataset.c1.process_secure_sharded(
                    &sessions,
                    &enc_q,
                    secure_params,
                    parallelism,
                    &policy,
                    rng,
                ),
            };
            match run {
                Ok((masked, profile, audit, mut shard_report)) => {
                    // The executor reports session-set positions; map them
                    // back to pool indices before publishing.
                    for r in &mut shard_report.shard_retries {
                        r.from_session = live_idx[r.from_session % live_idx.len()];
                        r.to_session = live_idx[r.to_session % live_idx.len()];
                    }
                    for s in &mut shard_report.dead_sessions {
                        *s = live_idx[*s % live_idx.len()];
                    }
                    if let Some(pool) = self.c2.pool() {
                        for s in &shard_report.dead_sessions {
                            pool.mark(*s, SessionHealth::Dead);
                        }
                        for r in &shard_report.shard_retries {
                            if r.is_failover() {
                                pool.record_failover();
                            } else {
                                pool.record_retry();
                            }
                        }
                    }
                    report.absorb(shard_report);
                    break (masked, profile, audit);
                }
                Err(e) => {
                    let retryable = classify_session_failure(&e).is_some();
                    if !retryable || attempt >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    // Probe before re-running: dead sessions are excluded
                    // so the re-run lands on survivors only.
                    if let Some(pool) = self.c2.pool() {
                        for i in 0..pool.len() {
                            if pool.probe(i) == SessionHealth::Dead && !excluded.contains(&i) {
                                excluded.push(i);
                            }
                        }
                        pool.record_retry();
                    }
                    if excluded.len() >= holders.len() {
                        // Nothing left to fail over to.
                        return Err(e);
                    }
                    for &i in &excluded {
                        if !report.dead_sessions.contains(&i) {
                            report.dead_sessions.push(i);
                        }
                    }
                    report.query_retries += 1;
                    let backoff = policy.backoff_before(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        };
        profile.record_pool(pool_delta(&pool_before, &self.pool_stats()));
        let result = self.user.recover_records(&masked);
        Ok(QueryOutcome {
            result,
            profile,
            audit,
            comm: comm_delta(comm_before, self.comm_stats()),
            retries: report,
        })
    }

    /// The data owner (Alice) the deployment was stood up by — the party
    /// that encrypts new datasets and records.
    pub fn owner(&self) -> &DataOwner {
        &self.owner
    }

    /// The query user (Bob) attached to this deployment.
    pub fn query_user(&self) -> &QueryUser {
        &self.user
    }

    /// The public key the deployment operates under.
    pub fn public_key(&self) -> &PublicKey {
        self.owner.public_key()
    }

    /// Cloud C2 as the protocol drivers see it: any [`KeyHolder`].
    pub fn key_holder(&self) -> &dyn KeyHolder {
        self.c2.key_holder()
    }

    /// Cumulative inter-cloud traffic counters (`None` for
    /// [`TransportKind::InProcess`]).
    pub fn comm_stats(&self) -> Option<CommSnapshot> {
        self.c2.comm_snapshot()
    }

    /// The sharding shape this deployment was stood up with.
    pub fn sharding(&self) -> crate::ShardingConfig {
        self.config.sharding
    }

    /// Number of independent C2 key-holder sessions this deployment runs.
    pub fn num_sessions(&self) -> usize {
        self.c2.key_holders().len()
    }

    /// Synchronously tops up both clouds' offline randomness pools to
    /// `entries` precomputed units each (a no-op when pooling is
    /// disabled). Benchmarks call this between configurations so every
    /// measurement starts from the same warm-pool state instead of the
    /// drained state the previous configuration left behind.
    pub fn prewarm_pools(&self, entries: usize) {
        for pool in &self.pools {
            pool.prewarm(entries);
        }
    }

    /// Cumulative offline-randomness-pool counters, summed over both
    /// clouds' pools (all zero when pooling is disabled).
    pub fn pool_stats(&self) -> PoolStats {
        self.pools.iter().fold(PoolStats::default(), |acc, pool| {
            let s = pool.stats();
            PoolStats {
                hits: acc.hits + s.hits,
                fallbacks: acc.fallbacks + s.fallbacks,
                precomputed: acc.precomputed + s.precomputed,
            }
        })
    }

    /// The parallelism configuration queries currently run with.
    pub fn parallelism(&self) -> ParallelismConfig {
        self.parallelism
    }

    /// Overrides the number of worker threads used by C1's record-parallel
    /// stages and by [`SknnEngine::run_batch`]'s query fan-out.
    ///
    /// Note that C2's request-serving worker pool is sized once, at
    /// [`SknnEngine::setup`], from [`FederationConfig::threads`]. To
    /// exercise a parallel C1 against a remote transport, configure
    /// `threads` at setup (the server pool matches it) rather than scaling
    /// up afterwards — otherwise the pipelined requests serialize behind
    /// fewer C2 workers.
    pub fn set_threads(&mut self, threads: usize) {
        self.parallelism = ParallelismConfig {
            threads: threads.max(1),
        };
    }
}

/// Derives the slot-packing parameters for a dataset with the given
/// distance-bit length, honoring the engine-wide [`PackingKind`] policy.
/// The attribute differences SSED blinds satisfy `|d| < 2^⌈l/2⌉` because
/// every squared distance fits `l` bits.
fn derive_packing(
    config: &FederationConfig,
    distance_bits: usize,
) -> Result<Option<PackedParams>, SknnError> {
    let requested = match config.packing.requested_slots() {
        None => return Ok(None),
        Some(requested) => requested,
    };
    let value_bits = distance_bits.div_ceil(2);
    let derived = PackedParams::derive(
        config.key_bits,
        value_bits,
        config.packing_blind_bits,
        requested,
    );
    match (config.packing, derived) {
        (PackingKind::Fixed(_), Ok(p)) if p.slots() < requested => {
            Err(SknnError::PackingInfeasible {
                requested,
                supported: p.slots(),
            })
        }
        (PackingKind::Fixed(_), Err(_)) => Err(SknnError::PackingInfeasible {
            requested,
            supported: 0,
        }),
        // Auto: clamp to what fits, or fall back to scalar.
        (_, Ok(p)) => Ok(Some(p)),
        (_, Err(_)) => Ok(None),
    }
}

pub(crate) fn pool_delta(before: &PoolStats, after: &PoolStats) -> PoolActivity {
    let d = after.since(before);
    PoolActivity {
        hits: d.hits,
        fallbacks: d.fallbacks,
    }
}

pub(crate) fn comm_delta(
    before: Option<CommSnapshot>,
    after: Option<CommSnapshot>,
) -> Option<CommSnapshot> {
    match (before, after) {
        (Some(b), Some(a)) => Some(a.since(&b)),
        _ => None,
    }
}

fn transport_setup_error(message: &str) -> SknnError {
    SknnError::Protocol(sknn_protocols::ProtocolError::Transport {
        message: message.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain_knn_records;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        // Distances from the query (2, 2) are 68, 29, 18, 98, 2 — all
        // distinct, so every k has a unique expected result set.
        Table::new(vec![
            vec![10, 0],
            vec![0, 7],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap()
    }

    fn engine(config: FederationConfig, rng: &mut StdRng) -> SknnEngine {
        SknnEngine::setup(config, rng).unwrap()
    }

    #[test]
    fn registry_hosts_and_retires_datasets() {
        let mut rng = StdRng::seed_from_u64(501);
        let mut engine = engine(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(engine.dataset_names().is_empty());
        engine
            .register_dataset("alpha", &table(), &mut rng)
            .unwrap();
        engine
            .register_dataset(
                "beta",
                &Table::new(vec![vec![1], vec![4]]).unwrap(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(engine.dataset_names(), vec!["alpha", "beta"]);
        assert_eq!(engine.dataset("alpha").unwrap().num_records(), 5);
        assert_eq!(engine.dataset("beta").unwrap().num_attributes(), 1);
        assert!(engine.dataset("gamma").is_none());

        // Duplicate names are rejected, not silently replaced.
        assert!(matches!(
            engine.register_dataset("alpha", &table(), &mut rng),
            Err(SknnError::DatasetAlreadyRegistered { .. })
        ));

        let removed = engine.remove_dataset("beta").unwrap();
        assert_eq!(removed.num_records(), 2);
        assert!(matches!(
            engine.remove_dataset("beta"),
            Err(SknnError::UnknownDataset { .. })
        ));
        assert_eq!(engine.dataset_names(), vec!["alpha"]);
    }

    #[test]
    fn queries_run_against_the_named_dataset() {
        let mut rng = StdRng::seed_from_u64(502);
        let mut engine = engine(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        );
        let t = table();
        let shifted = Table::new(vec![vec![7, 7], vec![3, 3]]).unwrap();
        engine.register_dataset("near", &t, &mut rng).unwrap();
        engine.register_dataset("far", &shifted, &mut rng).unwrap();

        let near = engine
            .query("near")
            .k(3)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        assert_eq!(near.result, plain_knn_records(&t, &[2, 2], 3));
        assert!(!near.audit.is_oblivious());

        let far = engine
            .query("far")
            .k(1)
            .point(&[2, 2])
            .run(&mut rng)
            .unwrap();
        assert_eq!(far.result, vec![vec![3, 3]]);
        assert!(far.audit.is_oblivious(), "default protocol is SkNN_m");
    }

    #[test]
    fn append_and_tombstone_are_reflected_in_queries() {
        let mut rng = StdRng::seed_from_u64(503);
        let mut engine = engine(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        );
        engine.register_dataset("d", &table(), &mut rng).unwrap();

        // Append a record nearer to the query than everything else.
        let record = engine.owner().encrypt_record(&[2, 2], &mut rng).unwrap();
        let indices = engine.append_records("d", vec![record]).unwrap();
        assert_eq!(indices, vec![5]);
        assert_eq!(engine.dataset("d").unwrap().num_records(), 6);
        let nearest = engine
            .query("d")
            .k(1)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        assert_eq!(nearest.result, vec![vec![2, 2]]);

        // Tombstone it again: it must never be returned, even with k = n.
        engine.tombstone_record("d", 5).unwrap();
        assert_eq!(engine.dataset("d").unwrap().num_records(), 5);
        assert_eq!(engine.dataset("d").unwrap().num_physical_records(), 6);
        let all = engine
            .query("d")
            .k(5)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        assert!(!all.result.contains(&vec![2, 2]));
        assert_eq!(all.result, plain_knn_records(&table(), &[2, 2], 5));

        // Typed errors for bad updates.
        assert!(matches!(
            engine.tombstone_record("d", 5),
            Err(SknnError::InvalidUpdate { .. })
        ));
        assert!(matches!(
            engine.tombstone_record("nope", 0),
            Err(SknnError::UnknownDataset { .. })
        ));
        let short = engine.owner().encrypt_record(&[1], &mut rng).unwrap();
        assert!(matches!(
            engine.append_records("d", vec![short]),
            Err(SknnError::InvalidUpdate { .. })
        ));
    }

    #[test]
    fn registration_validates_distance_bits_and_packing() {
        let mut rng = StdRng::seed_from_u64(504);
        let mut engine = engine(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(matches!(
            engine.register_dataset_with(
                "tiny-l",
                &table(),
                DatasetOptions {
                    distance_bits: Some(3),
                    max_query_value: 10,
                },
                &mut rng,
            ),
            Err(SknnError::InsufficientDistanceBits { .. })
        ));
        assert!(matches!(
            engine.register_dataset_with(
                "huge-l",
                &table(),
                DatasetOptions {
                    distance_bits: Some(95),
                    max_query_value: 10,
                },
                &mut rng,
            ),
            Err(SknnError::InsufficientDistanceBits { .. })
        ));

        let mut fixed = SknnEngine::setup(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                packing: PackingKind::Fixed(64),
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(matches!(
            fixed.register_dataset("d", &table(), &mut rng),
            Err(SknnError::PackingInfeasible { requested: 64, .. })
        ));
    }

    #[test]
    fn run_after_remove_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(505);
        let mut engine = engine(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        );
        engine.register_dataset("d", &table(), &mut rng).unwrap();
        let prepared = engine.query("d").k(1).point(&[2, 2]).build().unwrap();
        engine.remove_dataset("d").unwrap();
        assert!(matches!(
            engine.run(&prepared, &mut rng),
            Err(SknnError::UnknownDataset { .. })
        ));
    }

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "sknn-engine-store-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    fn durable_config() -> FederationConfig {
        FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            ..Default::default()
        }
    }

    #[test]
    fn durable_datasets_survive_restart() {
        let mut rng = StdRng::seed_from_u64(506);
        let root = tmp_root("restart");
        let owner = DataOwner::new(96, &mut rng);

        let mut engine = SknnEngine::open_dir(owner.clone(), durable_config(), &root).unwrap();
        engine
            .register_dataset_persistent("d", &table(), &mut rng)
            .unwrap();
        assert!(engine.dataset("d").unwrap().is_durable());
        let record = engine.owner().encrypt_record(&[2, 2], &mut rng).unwrap();
        assert_eq!(engine.append_records("d", vec![record]).unwrap(), vec![5]);
        engine.tombstone_record("d", 0).unwrap();
        engine.flush().unwrap();
        let before = engine
            .query("d")
            .k(3)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        drop(engine);

        let reloaded = SknnEngine::open_dir(owner, durable_config(), &root).unwrap();
        assert_eq!(reloaded.dataset_names(), vec!["d"]);
        assert!(reloaded.recovery_report("d").unwrap().is_clean());
        let dataset = reloaded.dataset("d").unwrap();
        assert_eq!(dataset.num_physical_records(), 6);
        assert_eq!(dataset.num_records(), 5);
        let after = reloaded
            .query("d")
            .k(3)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        assert_eq!(after.result, before.result);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn persistent_registration_requires_root_and_safe_name() {
        let mut rng = StdRng::seed_from_u64(507);
        let mut plain = engine(durable_config(), &mut rng);
        assert!(matches!(
            plain.register_dataset_persistent("d", &table(), &mut rng),
            Err(SknnError::Storage(StoreError::Invariant { .. }))
        ));

        let root = tmp_root("names");
        let owner = DataOwner::new(96, &mut rng);
        let mut durable = SknnEngine::open_dir(owner, durable_config(), &root).unwrap();
        assert!(matches!(
            durable.register_dataset_persistent("../escape", &table(), &mut rng),
            Err(SknnError::Storage(StoreError::InvalidDatasetName { .. }))
        ));
        // In-memory registration still works on a durable engine, and the
        // two paths reject each other's duplicates.
        durable.register_dataset("mem", &table(), &mut rng).unwrap();
        assert!(!durable.dataset("mem").unwrap().is_durable());
        assert!(matches!(
            durable.register_dataset_persistent("mem", &table(), &mut rng),
            Err(SknnError::DatasetAlreadyRegistered { .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reload_refuses_the_wrong_keypair() {
        let mut rng = StdRng::seed_from_u64(508);
        let root = tmp_root("wrong-key");
        let owner = DataOwner::new(96, &mut rng);
        let mut engine = SknnEngine::open_dir(owner, durable_config(), &root).unwrap();
        engine
            .register_dataset_persistent("d", &table(), &mut rng)
            .unwrap();
        drop(engine);

        let other = DataOwner::new(96, &mut rng);
        assert!(matches!(
            SknnEngine::open_dir(other, durable_config(), &root),
            Err(SknnError::Storage(StoreError::KeyMismatch { .. }))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compaction_keeps_stable_indices_and_results() {
        let mut rng = StdRng::seed_from_u64(509);
        let root = tmp_root("compact");
        let owner = DataOwner::new(96, &mut rng);
        let mut engine = SknnEngine::open_dir(owner.clone(), durable_config(), &root).unwrap();
        engine
            .register_dataset_persistent("d", &table(), &mut rng)
            .unwrap();
        // Kill the two nearest records so compaction genuinely rewrites.
        engine.tombstone_record("d", 4).unwrap();
        engine.tombstone_record("d", 2).unwrap();
        let report = engine.compact_dataset("d").unwrap();
        assert_eq!(report.reclaimed_records, 2);
        assert_eq!(report.live_records, 3);
        assert!(report.shards_rewritten >= 1);
        assert_eq!(engine.dataset("d").unwrap().compactions(), 1);

        // Stable indices keep their meaning: 2 and 4 are reclaimed (typed
        // "already tombstoned"), 3 still resolves and can be tombstoned.
        assert!(matches!(
            engine.tombstone_record("d", 4),
            Err(SknnError::InvalidUpdate {
                rejected: UpdateRejected::AlreadyTombstoned { index: 4 },
                ..
            })
        ));
        engine.tombstone_record("d", 3).unwrap();
        // New appends continue the stable numbering from 5, not from the
        // compacted physical count.
        let record = engine.owner().encrypt_record(&[2, 2], &mut rng).unwrap();
        assert_eq!(engine.append_records("d", vec![record]).unwrap(), vec![5]);

        // Results stay correct after the rewrite, and survive a restart.
        let expected = vec![vec![2, 2], vec![0, 7], vec![10, 0]];
        let live = engine
            .query("d")
            .k(3)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        assert_eq!(live.result, expected);
        drop(engine);
        let reloaded = SknnEngine::open_dir(owner, durable_config(), &root).unwrap();
        assert!(reloaded.recovery_report("d").unwrap().is_clean());
        let after = reloaded
            .query("d")
            .k(3)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .run(&mut rng)
            .unwrap();
        assert_eq!(after.result, expected);
        assert!(matches!(
            reloaded.dataset("d"),
            Some(d) if d.compactions() == 1
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
