//! The typed query builder: every query is validated against its target
//! dataset *before* any ciphertext is formed or any protocol message is
//! sent, so malformed requests surface as [`SknnError::InvalidQuery`] /
//! [`SknnError::UnknownDataset`] values instead of mid-protocol panics or
//! silently wrong rankings.

use super::{QueryOutcome, SknnEngine};
use crate::error::InvalidQueryReason;
use crate::SknnError;
use rand::RngCore;

/// Which of the paper's two query protocols to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// SkNN_b (Algorithm 5): fast, but reveals plaintext distances to C2
    /// and the access pattern to both clouds.
    Basic,
    /// SkNN_m (Algorithm 6): reveals nothing beyond ciphertexts — the
    /// default, because leaking should be an explicit choice.
    #[default]
    Secure,
}

/// A fully validated query, ready for [`SknnEngine::run`] or
/// [`SknnEngine::run_batch`]. Produced by [`QueryBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedQuery {
    dataset: String,
    point: Vec<u64>,
    k: usize,
    protocol: Protocol,
    /// Explicit distance-bit override (secure protocol only); `None` uses
    /// the dataset's registered `l`.
    distance_bits: Option<usize>,
}

impl PreparedQuery {
    /// The dataset this query targets.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The query point.
    pub fn point(&self) -> &[u64] {
        &self.point
    }

    /// The number of neighbors requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The protocol the query will run.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The explicit distance-bit override, if any.
    pub fn requested_distance_bits(&self) -> Option<usize> {
        self.distance_bits
    }

    /// Assembles a prepared query without builder validation. Used by the
    /// deprecated [`crate::Federation`] shim, whose historical contract
    /// was to defer all validation to the protocol layer.
    pub(crate) fn unvalidated(
        dataset: String,
        point: Vec<u64>,
        k: usize,
        protocol: Protocol,
        distance_bits: Option<usize>,
    ) -> PreparedQuery {
        PreparedQuery {
            dataset,
            point,
            k,
            protocol,
            distance_bits,
        }
    }
}

/// Builds one validated query against an [`SknnEngine`] dataset:
///
/// ```
/// # use rand::SeedableRng;
/// # use sknn_core::{Protocol, SknnEngine, FederationConfig, Table};
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(12);
/// # let mut engine = SknnEngine::setup(
/// #     FederationConfig { key_bits: 96, ..Default::default() }, &mut rng).unwrap();
/// # let table = Table::new(vec![vec![2, 2], vec![9, 1], vec![4, 7]]).unwrap();
/// # engine.register_dataset("heart", &table, &mut rng).unwrap();
/// let query = engine
///     .query("heart")
///     .k(2)
///     .point(&[3, 2])
///     .protocol(Protocol::Secure)
///     .build()?;
/// let outcome = engine.run(&query, &mut rng)?;
/// assert_eq!(outcome.result.len(), 2);
/// # Ok::<(), sknn_core::SknnError>(())
/// ```
#[must_use = "a QueryBuilder does nothing until build() or run()"]
pub struct QueryBuilder<'e> {
    engine: &'e SknnEngine,
    dataset: String,
    k: usize,
    point: Option<Vec<u64>>,
    protocol: Protocol,
    distance_bits: Option<usize>,
    check_values: bool,
}

impl<'e> QueryBuilder<'e> {
    pub(crate) fn new(engine: &'e SknnEngine, dataset: &str) -> Self {
        QueryBuilder {
            engine,
            dataset: dataset.to_string(),
            k: 1,
            point: None,
            protocol: Protocol::default(),
            distance_bits: None,
            check_values: true,
        }
    }

    /// Sets the number of nearest neighbors to retrieve (default 1).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the query point (required).
    pub fn point(mut self, point: &[u64]) -> Self {
        self.point = Some(point.to_vec());
        self
    }

    /// Selects the protocol (default [`Protocol::Secure`]).
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Overrides the distance-domain bit length `l` for this (secure)
    /// query, replacing the deprecated
    /// `Federation::query_secure_with_bits`. An expert knob for sweeping
    /// `l` as in Figures 2(d)–(e) of the paper; the value is passed to the
    /// protocol as-is, whose own validation rejects unusable lengths.
    pub fn distance_bits(mut self, l: usize) -> Self {
        self.distance_bits = Some(l);
        self
    }

    /// Disables the per-attribute value-bound check. The bound exists
    /// because values above the registered domain can overflow the
    /// dataset's `l`-bit distance domain and corrupt the ranking without
    /// any error; only disable it when `distance_bits` is sized for the
    /// actual query domain by other means.
    pub fn unchecked_values(mut self) -> Self {
        self.check_values = false;
        self
    }

    /// Validates the query against the target dataset's current state.
    ///
    /// # Errors
    /// Returns [`SknnError::UnknownDataset`] for an unregistered dataset
    /// name, and [`SknnError::InvalidQuery`] for a missing point, an arity
    /// mismatch, `k` outside `1..=n` (over live records), a
    /// `distance_bits` override on a basic-protocol query (SkNN_b would
    /// silently ignore it), or an attribute above the dataset's value
    /// bound.
    pub fn build(self) -> Result<PreparedQuery, SknnError> {
        let QueryBuilder {
            engine,
            dataset: name,
            k,
            point,
            protocol,
            distance_bits,
            check_values,
        } = self;
        let dataset = engine
            .dataset(&name)
            .ok_or_else(|| SknnError::UnknownDataset { name: name.clone() })?;
        let invalid = |reason: InvalidQueryReason| SknnError::InvalidQuery {
            dataset: name.clone(),
            reason,
        };
        let point = point.ok_or_else(|| invalid(InvalidQueryReason::MissingPoint))?;
        if point.len() != dataset.num_attributes() {
            return Err(invalid(InvalidQueryReason::WrongArity {
                expected: dataset.num_attributes(),
                got: point.len(),
            }));
        }
        let n = dataset.num_records();
        if k == 0 || k > n {
            return Err(invalid(InvalidQueryReason::KOutOfRange { k, n }));
        }
        if let (Protocol::Basic, Some(l)) = (protocol, distance_bits) {
            return Err(invalid(InvalidQueryReason::DistanceBitsWithBasicProtocol {
                l,
            }));
        }
        if check_values {
            let bound = dataset.value_bound();
            if let Some((attribute, &value)) = point.iter().enumerate().find(|(_, &v)| v > bound) {
                return Err(invalid(InvalidQueryReason::ValueOutOfRange {
                    attribute,
                    value,
                    bound,
                }));
            }
        }
        Ok(PreparedQuery {
            dataset: name,
            point,
            k,
            protocol,
            distance_bits,
        })
    }

    /// Builds and immediately runs the query.
    ///
    /// # Errors
    /// See [`QueryBuilder::build`] and [`SknnEngine::run`].
    pub fn run<R: RngCore + ?Sized>(self, rng: &mut R) -> Result<QueryOutcome, SknnError> {
        let engine = self.engine;
        let query = self.build()?;
        engine.run(&query, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FederationConfig, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_with_dataset(rng: &mut StdRng) -> SknnEngine {
        let mut engine = SknnEngine::setup(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            rng,
        )
        .unwrap();
        let table = Table::new(vec![vec![1, 1], vec![5, 5], vec![9, 9]]).unwrap();
        engine.register_dataset("d", &table, rng).unwrap();
        engine
    }

    fn reason(err: SknnError) -> InvalidQueryReason {
        match err {
            SknnError::InvalidQuery { reason, .. } => reason,
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn builder_validates_up_front() {
        let mut rng = StdRng::seed_from_u64(551);
        let engine = engine_with_dataset(&mut rng);

        assert!(matches!(
            engine.query("missing").k(1).point(&[1, 1]).build(),
            Err(SknnError::UnknownDataset { name }) if name == "missing"
        ));
        assert_eq!(
            reason(engine.query("d").k(1).build().unwrap_err()),
            InvalidQueryReason::MissingPoint
        );
        assert_eq!(
            reason(engine.query("d").k(0).point(&[1, 1]).build().unwrap_err()),
            InvalidQueryReason::KOutOfRange { k: 0, n: 3 }
        );
        assert_eq!(
            reason(engine.query("d").k(4).point(&[1, 1]).build().unwrap_err()),
            InvalidQueryReason::KOutOfRange { k: 4, n: 3 }
        );
        assert_eq!(
            reason(engine.query("d").k(1).point(&[1]).build().unwrap_err()),
            InvalidQueryReason::WrongArity {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            reason(engine.query("d").k(1).point(&[1, 999]).build().unwrap_err()),
            InvalidQueryReason::ValueOutOfRange {
                attribute: 1,
                value: 999,
                bound: 10
            }
        );

        // The same point passes with the bound check disabled.
        let q = engine
            .query("d")
            .k(1)
            .point(&[1, 999])
            .unchecked_values()
            .build()
            .unwrap();
        assert_eq!(q.point(), &[1, 999]);

        // The l override only exists on the secure protocol; a basic query
        // would silently ignore it, so the builder rejects the combination.
        assert_eq!(
            reason(
                engine
                    .query("d")
                    .k(2)
                    .point(&[4, 4])
                    .protocol(Protocol::Basic)
                    .distance_bits(9)
                    .build()
                    .unwrap_err()
            ),
            InvalidQueryReason::DistanceBitsWithBasicProtocol { l: 9 }
        );

        let q = engine
            .query("d")
            .k(2)
            .point(&[4, 4])
            .protocol(Protocol::Secure)
            .distance_bits(9)
            .build()
            .unwrap();
        assert_eq!(q.dataset(), "d");
        assert_eq!(q.k(), 2);
        assert_eq!(q.protocol(), Protocol::Secure);
        assert_eq!(q.requested_distance_bits(), Some(9));
    }

    #[test]
    fn default_protocol_is_secure() {
        assert_eq!(Protocol::default(), Protocol::Secure);
    }
}
