//! Batch query submission.
//!
//! The paper's evaluation times one query at a time; a deployment serving
//! many users wants to push *batches* through the machinery the earlier
//! PRs built: the pipelined session clients keep every worker's requests
//! in flight, request coalescing merges small concurrent batches into
//! shared round trips, and the offline randomness pools absorb the
//! encryption spikes. [`SknnEngine::run_batch`] schedules **shard-stage
//! tasks**, not whole queries: the outer fan-out runs queries
//! concurrently, and each query's scatter half ([`crate::exec`]) fans its
//! per-shard SSED/candidate stages across the remaining thread budget and
//! onto the shard-pinned C2 sessions. With `b` queries over `S` shards the
//! pool therefore schedules up to `b·S` independent scatter tasks — a
//! batch of one over a sharded dataset saturates the thread pool just
//! like a large batch over an unsharded one.

use super::{PreparedQuery, SknnEngine};
use crate::parallel::{parallel_map, ParallelismConfig};
use crate::profile::QueryProfile;
use crate::seed::{derive_seeds, derived_rng};
use crate::{AccessPatternAudit, SknnError};
use rand::RngCore;
use sknn_protocols::stats::CommSnapshot;

/// The result of one engine query — what [`crate::QueryResult`] is to the
/// legacy `Federation` façade.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The k nearest records, nearest first (ties may appear in either
    /// order for the fully secure protocol).
    pub result: Vec<Vec<u64>>,
    /// Wall-clock time and protocol-operation counters per stage.
    pub profile: QueryProfile,
    /// What the clouds learned while answering this query.
    pub audit: AccessPatternAudit,
    /// Traffic between the clouds during this query. `None` for
    /// [`crate::TransportKind::InProcess`]. The counters are deltas of the
    /// shared session's totals, so when queries of one batch run
    /// concurrently their windows overlap and each outcome may include
    /// traffic issued by the others; [`SknnEngine::comm_stats`] totals stay
    /// exact (the same caveat as [`crate::PoolActivity`]).
    pub comm: Option<CommSnapshot>,
    /// What failure handling this query performed — shard stages re-run or
    /// re-pinned onto surviving sessions, whole-query re-runs, sessions
    /// found dead. Empty ([`crate::RetryReport::is_clean`]) for a fault-free
    /// run, and always empty when [`crate::FederationConfig::retry`] is
    /// [`crate::RetryPolicy::none`].
    pub retries: crate::RetryReport,
}

impl SknnEngine {
    /// Runs a batch of prepared queries, fanned out across the engine's
    /// configured threads over the one shared key-holder session, and
    /// returns one outcome per query, in input order.
    ///
    /// Each query draws its C1-side randomness from a seed derived from
    /// `rng` up front, so the records a batch returns match what the same
    /// queries return one at a time. One caveat: when *distinct* records
    /// tie at the same distance, C2's tie-breaking randomness (a single
    /// per-session stream) is consumed in scheduling order, so which of
    /// the equidistant records wins may differ between a batch and a
    /// sequential run — both answers are correct kNN sets.
    ///
    /// When the batch has fewer queries than configured threads, the
    /// leftover budget (`⌈threads / batch⌉` per query) goes to each
    /// query's own shard-stage fan-out — per-shard scatter tasks first,
    /// then the record-parallel loops within a shard — so a batch of one
    /// performs like [`SknnEngine::run`] and a sharded dataset keeps every
    /// thread busy even at batch size one.
    ///
    /// Per-query failures (e.g. a dataset removed after the query was
    /// built, or a protocol-level transport error) are reported in the
    /// query's own slot without aborting the rest of the batch.
    pub fn run_batch<R: RngCore + ?Sized>(
        &self,
        queries: &[PreparedQuery],
        rng: &mut R,
    ) -> Vec<Result<QueryOutcome, SknnError>> {
        let seeds = derive_seeds(rng, queries.len());
        let threads = self.parallelism().threads;
        // Ceiling, not floor: with e.g. 4 threads and 3 queries a floor
        // would strand a thread while sharded scatter tasks queue behind
        // serial queries. Mild oversubscription is cheap — the shard tasks
        // spend most of their wall time waiting on C2 round trips.
        let inner = ParallelismConfig {
            threads: threads.div_ceil(queries.len().max(1)).max(1),
        };
        parallel_map(threads, queries, |i, query| {
            let mut query_rng = derived_rng(seeds[i]);
            self.run_with_parallelism(query, inner, &mut query_rng)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Protocol;
    use crate::{plain_knn_records, FederationConfig, Table, TransportKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        // Distances from (2, 2): 68, 29, 18, 98, 2 — all distinct, so every
        // result set (and its order) is deterministic for both protocols.
        Table::new(vec![
            vec![10, 0],
            vec![0, 7],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap()
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let mut rng = StdRng::seed_from_u64(561);
        let mut engine = SknnEngine::setup(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                threads: 4,
                transport: TransportKind::Channel,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let t = table();
        engine.register_dataset("d", &t, &mut rng).unwrap();

        let queries: Vec<PreparedQuery> = [
            (1usize, Protocol::Basic),
            (3, Protocol::Basic),
            (2, Protocol::Secure),
        ]
        .iter()
        .map(|&(k, protocol)| {
            engine
                .query("d")
                .k(k)
                .point(&[2, 2])
                .protocol(protocol)
                .build()
                .unwrap()
        })
        .collect();

        let outcomes = engine.run_batch(&queries, &mut rng);
        assert_eq!(outcomes.len(), 3);
        for (query, outcome) in queries.iter().zip(&outcomes) {
            let outcome = outcome.as_ref().expect("batch query succeeds");
            let sequential = engine.run(query, &mut rng).unwrap();
            assert_eq!(outcome.result, sequential.result, "k = {}", query.k());
            assert_eq!(outcome.result, plain_knn_records(&t, &[2, 2], query.k()));
        }
    }

    #[test]
    fn batch_reports_per_query_failures_without_aborting() {
        let mut rng = StdRng::seed_from_u64(562);
        let mut engine = SknnEngine::setup(
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                threads: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        engine.register_dataset("d", &table(), &mut rng).unwrap();
        let good = engine
            .query("d")
            .k(1)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .build()
            .unwrap();
        // A query staled by an update: built while 5 records were live,
        // invalidated by tombstoning down to 4.
        let staled = engine
            .query("d")
            .k(5)
            .point(&[2, 2])
            .protocol(Protocol::Basic)
            .build()
            .unwrap();
        engine.tombstone_record("d", 0).unwrap();

        let outcomes = engine.run_batch(&[good, staled], &mut rng);
        assert_eq!(outcomes[0].as_ref().unwrap().result, vec![vec![1, 1]]);
        assert!(matches!(
            outcomes[1],
            Err(SknnError::InvalidK { k: 5, n: 4 })
        ));
    }
}
