//! The federated-cloud harness: one data owner, one query user, two clouds,
//! wired together for repeated queries over a single outsourced table.
//!
//! This is the high-level entry point used by the examples and by the
//! benchmark harness; applications embedding the library into a real
//! deployment would instead instantiate [`crate::DataOwner`],
//! [`crate::QueryUser`], [`crate::CloudC1`] and a
//! [`sknn_protocols::KeyHolder`] on their respective machines —
//! [`Federation::setup_with_owner`] shows exactly which pieces go where.
//!
//! The C1↔C2 boundary is pluggable ([`TransportKind`]): direct in-process
//! calls, an in-process frame channel with byte-accurate accounting, or a
//! real TCP socket. All remote transports use the pipelined
//! [`SessionKeyHolder`] client, so the record-parallel stages of both
//! protocols keep multiple requests in flight over one connection.

use crate::config::{FederationConfig, PackingKind, SecureQueryParams, TransportKind};
use crate::parallel::ParallelismConfig;
use crate::profile::{PoolActivity, QueryProfile};
use crate::roles::{CloudC1, DataOwner, QueryUser};
use crate::{AccessPatternAudit, SknnError, Table};
use rand::RngCore;
use sknn_paillier::{PoolConfig, PoolStats, PooledEncryptor, PublicKey, RandomnessPool};
use sknn_protocols::stats::CommSnapshot;
use sknn_protocols::transport::{
    serve, CoalesceConfig, SessionKeyHolder, TcpTransport, TransportError,
};
use sknn_protocols::{KeyHolder, LocalKeyHolder, PackedParams};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The result of one query, as seen by Bob plus the measurement artifacts the
/// evaluation harness needs.
#[derive(Debug)]
pub struct QueryResult {
    /// The k nearest records, nearest first (ties may appear in either order
    /// for the fully secure protocol).
    pub records: Vec<Vec<u64>>,
    /// Wall-clock time per protocol stage.
    pub profile: QueryProfile,
    /// What the clouds learned while answering this query.
    pub audit: AccessPatternAudit,
    /// Traffic between the clouds during this query. `None` for
    /// [`TransportKind::InProcess`], which has no wire to account.
    pub comm: Option<CommSnapshot>,
}

/// The deployment's handle on cloud C2.
enum C2Handle {
    /// C2 runs in-process and is called directly.
    Local(Box<LocalKeyHolder>),
    /// C2 runs behind a transport (channel or TCP). Dropping the client
    /// hangs up the connection, which makes the (detached) server thread
    /// exit on its own.
    Session {
        client: Box<SessionKeyHolder>,
        _server: JoinHandle<Result<(), TransportError>>,
    },
}

impl C2Handle {
    fn key_holder(&self) -> &dyn KeyHolder {
        match self {
            C2Handle::Local(holder) => holder.as_ref(),
            C2Handle::Session { client, .. } => client.as_ref(),
        }
    }

    fn comm_snapshot(&self) -> Option<CommSnapshot> {
        match self {
            C2Handle::Local(_) => None,
            C2Handle::Session { client, .. } => Some(client.stats().snapshot()),
        }
    }
}

/// A ready-to-query federated deployment of the two clouds.
pub struct Federation {
    public_key: PublicKey,
    user: QueryUser,
    c1: CloudC1,
    c2: C2Handle,
    distance_bits: usize,
    parallelism: ParallelismConfig,
    /// Offline randomness pools (C1's, C2's), kept for per-query hit/fallback
    /// accounting; empty when pooling is disabled (`pool.capacity == 0`).
    pools: Vec<Arc<RandomnessPool>>,
}

impl Federation {
    /// Outsources `table` under a fresh key pair and stands up both clouds.
    ///
    /// # Errors
    /// Returns an error when the table is malformed, the derived/configured
    /// distance-bit length does not fit the chosen key size, or the
    /// configured transport cannot be established.
    pub fn setup<R: RngCore + ?Sized>(
        table: &Table,
        config: FederationConfig,
        rng: &mut R,
    ) -> Result<Federation, SknnError> {
        let owner = DataOwner::new(config.key_bits, rng);
        Self::setup_with_owner(owner, table, config, rng)
    }

    /// Like [`Federation::setup`] but with a caller-supplied data owner
    /// (i.e. a pre-generated key pair), which benchmark code uses to amortize
    /// key generation across measurements.
    ///
    /// # Errors
    /// See [`Federation::setup`].
    pub fn setup_with_owner<R: RngCore + ?Sized>(
        owner: DataOwner,
        table: &Table,
        config: FederationConfig,
        rng: &mut R,
    ) -> Result<Federation, SknnError> {
        let required = table.required_distance_bits(config.max_query_value);
        let distance_bits = config.distance_bits.unwrap_or(required);
        if distance_bits < required {
            return Err(SknnError::InsufficientDistanceBits {
                l: distance_bits,
                required,
            });
        }
        if distance_bits + 2 >= config.key_bits {
            return Err(SknnError::InsufficientDistanceBits {
                l: distance_bits,
                required: config.key_bits.saturating_sub(2),
            });
        }

        let db = owner.encrypt_table(table, rng)?;
        let user = QueryUser::new(owner.public_key().clone());
        let public_key = owner.public_key().clone();

        // Slot packing: derive the product-safe layout from the key size
        // and the distance domain. The attribute differences SSED blinds
        // satisfy |d| < 2^⌈l/2⌉ because every squared distance fits l bits.
        let packing = match config.packing.requested_slots() {
            None => None,
            Some(requested) => {
                let value_bits = distance_bits.div_ceil(2);
                let derived = PackedParams::derive(
                    config.key_bits,
                    value_bits,
                    config.packing_blind_bits,
                    requested,
                );
                match (config.packing, derived) {
                    (PackingKind::Fixed(_), Ok(p)) if p.slots() < requested => {
                        return Err(SknnError::PackingInfeasible {
                            requested,
                            supported: p.slots(),
                        });
                    }
                    (PackingKind::Fixed(_), Err(_)) => {
                        return Err(SknnError::PackingInfeasible {
                            requested,
                            supported: 0,
                        });
                    }
                    // Auto: clamp to what fits, or fall back to scalar.
                    (_, Ok(p)) => Some(p),
                    (_, Err(_)) => None,
                }
            }
        };

        // Offline/online split: one randomness pool per cloud, pre-warmed so
        // the first query already encrypts with one multiplication per unit.
        // `seed: None` keeps the PoolConfig contract — OS entropy, the right
        // default for anything security-relevant. An explicit seed (for
        // reproducible experiments) is derived per cloud, because two pools
        // replaying the same `r` sequence would produce correlated
        // ciphertexts across the clouds.
        let mut pools = Vec::new();
        let mut pool_for = |salt: u64| -> Arc<RandomnessPool> {
            let pool = RandomnessPool::new(
                public_key.clone(),
                PoolConfig {
                    seed: config.pool.seed.map(|s| s ^ salt),
                    ..config.pool
                },
            );
            pool.prewarm(config.pool_prewarm);
            pools.push(Arc::clone(&pool));
            pool
        };
        let pooling = config.pool.capacity > 0;

        let mut c1 = CloudC1::new(db);
        if pooling {
            c1 = c1.with_encryptor(PooledEncryptor::new(pool_for(0xC1)));
        }
        if let Some(params) = packing {
            c1 = c1.with_packing(params);
        }
        let mut holder = LocalKeyHolder::new(owner.private_key().clone(), config.c2_seed);
        if pooling {
            holder = holder.with_pool(pool_for(0xC2));
        }
        let workers = config.threads.max(1);
        // A serial C1 has nothing to merge with: coalescing would only add
        // the collection-window latency to every round trip.
        let coalesce = if config.coalesce && workers > 1 {
            CoalesceConfig::enabled()
        } else {
            CoalesceConfig::disabled()
        };
        let c2 = match config.transport {
            TransportKind::InProcess => C2Handle::Local(Box::new(holder)),
            TransportKind::Channel => {
                let (client, server) =
                    SessionKeyHolder::spawn_in_process(holder, workers, coalesce);
                C2Handle::Session {
                    client: Box::new(client),
                    _server: server,
                }
            }
            TransportKind::Tcp => {
                let listener = TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| transport_setup_error(&e.to_string()))?;
                let addr = listener
                    .local_addr()
                    .map_err(|e| transport_setup_error(&e.to_string()))?;
                let server = std::thread::Builder::new()
                    .name("sknn-c2-tcp".into())
                    .spawn(move || {
                        let server_end = TcpTransport::accept(&listener)?;
                        serve(&server_end, &holder, workers)
                    })
                    .expect("spawn key-holder server thread");
                let transport = TcpTransport::connect(addr).map_err(|e| {
                    // Unblock the accept() so the server thread (and its
                    // copy of the private key) does not leak: a throwaway
                    // connection that drops immediately reads as a clean
                    // hang-up in serve().
                    let _ = std::net::TcpStream::connect(addr);
                    transport_setup_error(&e.to_string())
                })?;
                let client =
                    SessionKeyHolder::connect(public_key.clone(), Arc::new(transport), coalesce);
                C2Handle::Session {
                    client: Box::new(client),
                    _server: server,
                }
            }
        };

        Ok(Federation {
            public_key,
            user,
            c1,
            c2,
            distance_bits,
            parallelism: ParallelismConfig {
                threads: config.threads.max(1),
            },
            pools,
        })
    }

    /// The public key the deployment operates under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }

    /// The query user (Bob) attached to this deployment.
    pub fn query_user(&self) -> &QueryUser {
        &self.user
    }

    /// Cloud C1 (useful for driving the lower-level API directly).
    pub fn cloud_c1(&self) -> &CloudC1 {
        &self.c1
    }

    /// Cloud C2 as the protocol drivers see it: any [`KeyHolder`].
    pub fn key_holder(&self) -> &dyn KeyHolder {
        self.c2.key_holder()
    }

    /// The distance-domain bit length (`l`) used by secure queries.
    pub fn distance_bits(&self) -> usize {
        self.distance_bits
    }

    /// The slot-packing parameters in effect (`None` when packing is off or
    /// was infeasible under [`crate::PackingKind::Auto`]).
    pub fn packing(&self) -> Option<&PackedParams> {
        self.c1.packing()
    }

    /// Number of records in the outsourced database.
    pub fn num_records(&self) -> usize {
        self.c1.database().num_records()
    }

    /// Number of attributes per record.
    pub fn num_attributes(&self) -> usize {
        self.c1.database().num_attributes()
    }

    /// Cumulative inter-cloud traffic counters (`None` for
    /// [`TransportKind::InProcess`]).
    pub fn comm_stats(&self) -> Option<CommSnapshot> {
        self.c2.comm_snapshot()
    }

    /// Cumulative offline-randomness-pool counters, summed over both clouds'
    /// pools (all zero when pooling is disabled).
    pub fn pool_stats(&self) -> PoolStats {
        self.pools.iter().fold(PoolStats::default(), |acc, pool| {
            let s = pool.stats();
            PoolStats {
                hits: acc.hits + s.hits,
                fallbacks: acc.fallbacks + s.fallbacks,
                precomputed: acc.precomputed + s.precomputed,
            }
        })
    }

    /// Overrides the number of worker threads used by C1's record-parallel
    /// stages of both protocols.
    ///
    /// Note that C2's request-serving worker pool is sized once, at
    /// [`Federation::setup`], from [`FederationConfig::threads`]. To
    /// exercise a parallel C1 against a remote transport, configure
    /// `threads` at setup (the server pool matches it) rather than scaling
    /// up afterwards — otherwise the pipelined requests serialize behind
    /// fewer C2 workers.
    pub fn set_threads(&mut self, threads: usize) {
        self.parallelism = ParallelismConfig {
            threads: threads.max(1),
        };
    }

    /// Answers a query with the basic protocol SkNN_b (Algorithm 5).
    ///
    /// # Errors
    /// Propagates validation errors (dimension mismatch, invalid `k`).
    pub fn query_basic<R: RngCore + ?Sized>(
        &self,
        query: &[u64],
        k: usize,
        rng: &mut R,
    ) -> Result<QueryResult, SknnError> {
        let before = self.comm_stats();
        let pool_before = self.pool_stats();
        let enc_q = self.user.encrypt_query(query, rng)?;
        let (masked, mut profile, audit) =
            self.c1
                .process_basic(self.c2.key_holder(), &enc_q, k, self.parallelism, rng)?;
        profile.record_pool(pool_delta(&pool_before, &self.pool_stats()));
        let records = self.user.recover_records(&masked);
        Ok(QueryResult {
            records,
            profile,
            audit,
            comm: delta(before, self.comm_stats()),
        })
    }

    /// Answers a query with the fully secure protocol SkNN_m (Algorithm 6),
    /// using the deployment's derived distance-bit length.
    ///
    /// # Errors
    /// Propagates validation errors (dimension mismatch, invalid `k`, bad `l`).
    pub fn query_secure<R: RngCore + ?Sized>(
        &self,
        query: &[u64],
        k: usize,
        rng: &mut R,
    ) -> Result<QueryResult, SknnError> {
        self.query_secure_with_bits(query, k, self.distance_bits, rng)
    }

    /// [`Federation::query_secure`] with an explicit distance-bit length,
    /// used by the harness to sweep `l` as in Figures 2(d)–(e).
    ///
    /// # Errors
    /// Propagates validation errors (dimension mismatch, invalid `k`, bad `l`).
    pub fn query_secure_with_bits<R: RngCore + ?Sized>(
        &self,
        query: &[u64],
        k: usize,
        l: usize,
        rng: &mut R,
    ) -> Result<QueryResult, SknnError> {
        let before = self.comm_stats();
        let pool_before = self.pool_stats();
        let enc_q = self.user.encrypt_query(query, rng)?;
        let (masked, mut profile, audit) = self.c1.process_secure(
            self.c2.key_holder(),
            &enc_q,
            SecureQueryParams { k, l },
            self.parallelism,
            rng,
        )?;
        profile.record_pool(pool_delta(&pool_before, &self.pool_stats()));
        let records = self.user.recover_records(&masked);
        Ok(QueryResult {
            records,
            profile,
            audit,
            comm: delta(before, self.comm_stats()),
        })
    }
}

fn pool_delta(before: &PoolStats, after: &PoolStats) -> PoolActivity {
    let d = after.since(before);
    PoolActivity {
        hits: d.hits,
        fallbacks: d.fallbacks,
    }
}

fn transport_setup_error(message: &str) -> SknnError {
    SknnError::Protocol(sknn_protocols::ProtocolError::Transport {
        message: message.to_string(),
    })
}

fn delta(before: Option<CommSnapshot>, after: Option<CommSnapshot>) -> Option<CommSnapshot> {
    match (before, after) {
        (Some(b), Some(a)) => Some(a.since(&b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain_knn_records;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        // Distances from the query (2, 2) are 68, 29, 18, 98, 2 — all distinct,
        // so every k has a unique expected result set.
        Table::new(vec![
            vec![10, 0],
            vec![0, 7],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap()
    }

    #[test]
    fn end_to_end_basic_and_secure_agree_with_plaintext() {
        let mut rng = StdRng::seed_from_u64(401);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let query = [2u64, 2];
        let expected = plain_knn_records(&table, &query, 3);

        let basic = federation.query_basic(&query, 3, &mut rng).unwrap();
        assert_eq!(basic.records, expected);
        assert!(!basic.audit.is_oblivious());
        assert!(basic.comm.is_none());

        let secure = federation.query_secure(&query, 3, &mut rng).unwrap();
        let mut got = secure.records.clone();
        let mut want = expected.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
        assert!(secure.audit.is_oblivious());
    }

    #[test]
    fn channel_transport_reports_traffic() {
        let mut rng = StdRng::seed_from_u64(402);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            transport: TransportKind::Channel,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let result = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        let comm = result.comm.expect("channel transport records traffic");
        assert!(comm.requests > 0);
        assert!(comm.total_bytes() > 0);

        // The secure protocol moves strictly more data between the clouds.
        let secure = federation.query_secure(&[2, 2], 2, &mut rng).unwrap();
        let secure_comm = secure.comm.unwrap();
        assert!(secure_comm.total_bytes() > comm.total_bytes());
    }

    #[test]
    fn tcp_transport_answers_queries_with_traffic() {
        let mut rng = StdRng::seed_from_u64(406);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            transport: TransportKind::Tcp,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let query = [2u64, 2];
        let result = federation.query_basic(&query, 3, &mut rng).unwrap();
        assert_eq!(result.records, plain_knn_records(&table, &query, 3));
        let comm = result.comm.expect("tcp transport records traffic");
        assert!(comm.requests > 0);
        assert!(comm.total_bytes() > 0);
    }

    #[test]
    fn parallel_queries_work_over_remote_transports() {
        // The acceptance bar of the transport refactor: ParallelismConfig
        // with several threads against a *remote* (pipelined) key holder,
        // correct results, non-zero traffic.
        let mut rng = StdRng::seed_from_u64(407);
        let table = table();
        for transport in [TransportKind::Channel, TransportKind::Tcp] {
            let config = FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                transport,
                threads: 6,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, &mut rng).unwrap();
            let query = [2u64, 2];
            let basic = federation.query_basic(&query, 3, &mut rng).unwrap();
            assert_eq!(
                basic.records,
                plain_knn_records(&table, &query, 3),
                "{transport:?}"
            );
            let comm = basic.comm.expect("remote transport records traffic");
            assert!(comm.requests > 0, "{transport:?}");

            let secure = federation.query_secure(&query, 2, &mut rng).unwrap();
            let mut got = secure.records.clone();
            got.sort();
            let mut want = plain_knn_records(&table, &query, 2);
            want.sort();
            assert_eq!(got, want, "{transport:?}");
            assert!(secure.comm.expect("traffic").requests > 0, "{transport:?}");
        }
    }

    #[test]
    fn coalescing_reduces_round_trips() {
        let mut rng = StdRng::seed_from_u64(408);
        let table = table();
        let run = |coalesce: bool, rng: &mut StdRng| {
            let config = FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                transport: TransportKind::Channel,
                threads: 6,
                coalesce,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, rng).unwrap();
            let query = [2u64, 2];
            let result = federation.query_basic(&query, 2, rng).unwrap();
            assert_eq!(result.records, plain_knn_records(&table, &query, 2));
            result.comm.expect("traffic").requests
        };
        // Merging depends on workers overlapping inside the coalescing
        // window, so on a heavily loaded machine a single attempt can
        // legitimately see no overlap; retry a few times before declaring
        // the mechanism broken.
        let without = run(false, &mut rng);
        for attempt in 0.. {
            let with = run(true, &mut rng);
            assert!(
                with <= without,
                "coalescing must never add round trips: {with} vs {without}"
            );
            if with < without {
                break;
            }
            assert!(
                attempt < 5,
                "coalescing never merged a single batch in {attempt} attempts \
                 ({with} vs {without} round trips)"
            );
        }
    }

    #[test]
    fn pooled_randomness_serves_queries_and_is_accounted() {
        let mut rng = StdRng::seed_from_u64(409);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            pool: sknn_paillier::PoolConfig {
                capacity: 64,
                background_refill: false,
                ..Default::default()
            },
            pool_prewarm: 64,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        assert!(
            federation.pool_stats().precomputed >= 128,
            "both pools pre-warmed"
        );

        let query = [2u64, 2];
        let basic = federation.query_basic(&query, 2, &mut rng).unwrap();
        assert_eq!(basic.records, plain_knn_records(&table, &query, 2));
        let activity = basic.profile.pool();
        assert!(
            activity.hits > 0,
            "C2's response encryptions must hit the pool"
        );

        // A secure query drains far more units than the prewarm supplied;
        // with refill off, hits can never exceed what was precomputed, and
        // the overflow must show up as synchronous fallbacks.
        let secure = federation.query_secure(&query, 2, &mut rng).unwrap();
        let activity = secure.profile.pool();
        assert!(activity.hits + activity.fallbacks > 0);
        let totals = federation.pool_stats();
        assert!(totals.hits <= totals.precomputed);
        assert!(
            totals.fallbacks > 0,
            "draining 2×64 prewarmed entries without refill must fall back"
        );
    }

    #[test]
    fn disabled_pool_still_answers_queries() {
        let mut rng = StdRng::seed_from_u64(410);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            pool: sknn_paillier::PoolConfig {
                capacity: 0,
                ..Default::default()
            },
            pool_prewarm: 0,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let result = federation.query_basic(&[2, 2], 3, &mut rng).unwrap();
        assert_eq!(result.records, plain_knn_records(&table, &[2, 2], 3));
        assert_eq!(
            result.profile.pool(),
            crate::profile::PoolActivity::default()
        );
        assert_eq!(federation.pool_stats(), sknn_paillier::PoolStats::default());
    }

    #[test]
    fn packed_queries_match_scalar_results() {
        use crate::config::PackingKind;
        let mut rng = StdRng::seed_from_u64(420);
        let table = table();
        let query = [2u64, 2];
        // Heart-sized small table; key big enough for a few slots at a
        // reduced statistical parameter.
        let run = |packing: PackingKind, rng: &mut StdRng| {
            let config = FederationConfig {
                key_bits: 192,
                max_query_value: 10,
                packing,
                packing_blind_bits: 10,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, rng).unwrap();
            let basic = federation.query_basic(&query, 3, rng).unwrap();
            let mut secure = federation.query_secure(&query, 2, rng).unwrap().records;
            secure.sort();
            (federation, basic, secure)
        };
        let (scalar_fed, scalar_basic, scalar_secure) = run(PackingKind::Off, &mut rng);
        let (packed_fed, packed_basic, packed_secure) = run(PackingKind::Auto(8), &mut rng);
        let sigma = packed_fed.packing().expect("packing derived").slots();
        assert!(sigma >= 2, "192-bit key must fit at least two slots");
        assert!(scalar_fed.packing().is_none());

        // Identical results on both protocols.
        assert_eq!(packed_basic.records, scalar_basic.records);
        assert_eq!(packed_basic.records, plain_knn_records(&table, &query, 3));
        assert_eq!(packed_secure, scalar_secure);

        // The packed SSED stage moves ~σ× fewer ciphertexts and decrypts
        // ~σ× less (square form also halves the scalar path's 2-per-pair
        // decryptions, hence strictly more than σ).
        let scalar_ops = scalar_basic
            .profile
            .ops(crate::profile::Stage::DistanceComputation);
        let packed_ops = packed_basic
            .profile
            .ops(crate::profile::Stage::DistanceComputation);
        assert!(
            packed_ops.ciphertexts_on_wire() * (sigma as u64) <= scalar_ops.ciphertexts_on_wire(),
            "packed SSED wire: {packed_ops:?} vs scalar {scalar_ops:?} at σ = {sigma}"
        );
        assert!(packed_ops.c2_decryptions * 2 * (sigma as u64) <= scalar_ops.c2_decryptions);
    }

    #[test]
    fn fixed_packing_that_does_not_fit_is_rejected() {
        use crate::config::PackingKind;
        let mut rng = StdRng::seed_from_u64(421);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            packing: PackingKind::Fixed(64),
            ..Default::default()
        };
        assert!(matches!(
            Federation::setup(&table, config, &mut rng),
            Err(SknnError::PackingInfeasible { requested: 64, .. })
        ));
        // Auto degrades to scalar instead of failing (the default κ = 40
        // cannot fit a single slot in a 64-bit key).
        let config = FederationConfig {
            key_bits: 64,
            max_query_value: 10,
            packing: PackingKind::Auto(64),
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        assert!(federation.packing().is_none());
        let result = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        assert_eq!(result.records, plain_knn_records(&table, &[2, 2], 2));
    }

    #[test]
    fn packed_queries_work_over_remote_transports() {
        use crate::config::PackingKind;
        let mut rng = StdRng::seed_from_u64(422);
        let table = table();
        let query = [2u64, 2];
        for transport in [TransportKind::Channel, TransportKind::Tcp] {
            let config = FederationConfig {
                key_bits: 192,
                max_query_value: 10,
                transport,
                packing: PackingKind::Fixed(2),
                packing_blind_bits: 10,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, &mut rng).unwrap();
            assert_eq!(federation.packing().unwrap().slots(), 2, "{transport:?}");
            let basic = federation.query_basic(&query, 3, &mut rng).unwrap();
            assert_eq!(
                basic.records,
                plain_knn_records(&table, &query, 3),
                "{transport:?}"
            );
            let mut secure = federation
                .query_secure(&query, 2, &mut rng)
                .unwrap()
                .records;
            secure.sort();
            let mut want = plain_knn_records(&table, &query, 2);
            want.sort();
            assert_eq!(secure, want, "{transport:?}");
        }
    }

    #[test]
    fn distance_bits_are_derived_and_overridable() {
        let mut rng = StdRng::seed_from_u64(403);
        let table = table();
        let auto = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(auto.distance_bits(), table.required_distance_bits(10));
        assert_eq!(auto.num_records(), 5);
        assert_eq!(auto.num_attributes(), 2);

        let custom = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                distance_bits: Some(12),
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(custom.distance_bits(), 12);

        let too_small = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                distance_bits: Some(3),
                ..Default::default()
            },
            &mut rng,
        );
        assert!(matches!(
            too_small,
            Err(SknnError::InsufficientDistanceBits { .. })
        ));
    }

    #[test]
    fn oversized_l_for_key_is_rejected() {
        let mut rng = StdRng::seed_from_u64(404);
        let table = table();
        let result = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 64,
                max_query_value: 10,
                distance_bits: Some(70),
                ..Default::default()
            },
            &mut rng,
        );
        assert!(matches!(
            result,
            Err(SknnError::InsufficientDistanceBits { .. })
        ));
    }

    #[test]
    fn threads_can_be_adjusted() {
        let mut rng = StdRng::seed_from_u64(405);
        let table = table();
        let mut federation = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                threads: 4,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let a = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        federation.set_threads(1);
        let b = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        assert_eq!(a.records, b.records);
    }
}
