//! The legacy single-dataset façade: one data owner, one query user, two
//! clouds, wired together for repeated queries over a single outsourced
//! table.
//!
//! `Federation` predates the multi-dataset [`SknnEngine`] and is kept as a
//! thin shim over a one-dataset engine so existing embedders, examples and
//! benchmarks keep working unchanged. New code should use [`SknnEngine`]
//! directly — it hosts many named datasets behind one deployment, validates
//! queries up front through [`crate::QueryBuilder`], runs batches, and
//! accepts dynamic appends/tombstones. [`Federation::engine`] exposes the
//! underlying engine so a deployment can migrate incrementally.

use crate::config::FederationConfig;
use crate::engine::{DatasetOptions, PreparedQuery, Protocol, QueryOutcome, SknnEngine};
use crate::profile::QueryProfile;
use crate::roles::{CloudC1, DataOwner, QueryUser};
use crate::{AccessPatternAudit, SknnError, Table};
use rand::RngCore;
use sknn_paillier::{PoolStats, PublicKey};
use sknn_protocols::stats::CommSnapshot;
use sknn_protocols::{KeyHolder, PackedParams};

/// The result of one query, as seen by Bob plus the measurement artifacts the
/// evaluation harness needs.
#[derive(Debug)]
pub struct QueryResult {
    /// The k nearest records, nearest first (ties may appear in either order
    /// for the fully secure protocol).
    pub records: Vec<Vec<u64>>,
    /// Wall-clock time per protocol stage.
    pub profile: QueryProfile,
    /// What the clouds learned while answering this query.
    pub audit: AccessPatternAudit,
    /// Traffic between the clouds during this query. `None` for
    /// [`crate::TransportKind::InProcess`], which has no wire to account.
    pub comm: Option<CommSnapshot>,
}

impl From<QueryOutcome> for QueryResult {
    fn from(outcome: QueryOutcome) -> QueryResult {
        QueryResult {
            records: outcome.result,
            profile: outcome.profile,
            audit: outcome.audit,
            comm: outcome.comm,
        }
    }
}

/// A ready-to-query federated deployment of the two clouds over exactly one
/// outsourced table — a shim over a one-dataset [`SknnEngine`] (see the
/// module docs).
pub struct Federation {
    engine: SknnEngine,
}

impl Federation {
    /// The name the shim registers its single dataset under in the wrapped
    /// engine.
    pub const DATASET: &'static str = "default";

    /// Outsources `table` under a fresh key pair and stands up both clouds.
    ///
    /// # Errors
    /// Returns an error when the table is malformed, the derived/configured
    /// distance-bit length does not fit the chosen key size, or the
    /// configured transport cannot be established.
    pub fn setup<R: RngCore + ?Sized>(
        table: &Table,
        config: FederationConfig,
        rng: &mut R,
    ) -> Result<Federation, SknnError> {
        let owner = DataOwner::new(config.key_bits, rng);
        Self::setup_with_owner(owner, table, config, rng)
    }

    /// Like [`Federation::setup`] but with a caller-supplied data owner
    /// (i.e. a pre-generated key pair), which benchmark code uses to amortize
    /// key generation across measurements.
    ///
    /// # Errors
    /// See [`Federation::setup`].
    pub fn setup_with_owner<R: RngCore + ?Sized>(
        owner: DataOwner,
        table: &Table,
        config: FederationConfig,
        rng: &mut R,
    ) -> Result<Federation, SknnError> {
        let opts = DatasetOptions {
            distance_bits: config.distance_bits,
            max_query_value: config.max_query_value,
        };
        let mut engine = SknnEngine::setup_with_owner(owner, config)?;
        engine.register_dataset_with(Self::DATASET, table, opts, rng)?;
        Ok(Federation { engine })
    }

    /// The wrapped multi-dataset engine (the table lives under
    /// [`Federation::DATASET`]) — the migration path off this shim.
    pub fn engine(&self) -> &SknnEngine {
        &self.engine
    }

    /// Mutable access to the wrapped engine, e.g. for dynamic updates or
    /// registering further datasets beside the shim's own.
    ///
    /// Do not remove the [`Federation::DATASET`] dataset through this
    /// handle: the shim's accessors assume it exists and panic once it is
    /// gone. A deployment ready to retire the shim's table should drop the
    /// `Federation` and keep only the engine.
    pub fn engine_mut(&mut self) -> &mut SknnEngine {
        &mut self.engine
    }

    fn dataset(&self) -> &crate::engine::Dataset {
        self.engine
            .dataset(Self::DATASET)
            .expect("the shim's dataset is registered at setup and never removed")
    }

    /// The public key the deployment operates under.
    pub fn public_key(&self) -> &PublicKey {
        self.engine.public_key()
    }

    /// The query user (Bob) attached to this deployment.
    pub fn query_user(&self) -> &QueryUser {
        self.engine.query_user()
    }

    /// Cloud C1 (useful for driving the lower-level API directly).
    pub fn cloud_c1(&self) -> &CloudC1 {
        self.dataset().cloud()
    }

    /// Cloud C2 as the protocol drivers see it: any [`KeyHolder`].
    pub fn key_holder(&self) -> &dyn KeyHolder {
        self.engine.key_holder()
    }

    /// The distance-domain bit length (`l`) used by secure queries.
    pub fn distance_bits(&self) -> usize {
        self.dataset().distance_bits()
    }

    /// The slot-packing parameters in effect (`None` when packing is off or
    /// was infeasible under [`crate::PackingKind::Auto`]).
    pub fn packing(&self) -> Option<&PackedParams> {
        self.dataset().packing()
    }

    /// Number of (live) records in the outsourced database.
    pub fn num_records(&self) -> usize {
        self.dataset().num_records()
    }

    /// Number of attributes per record.
    pub fn num_attributes(&self) -> usize {
        self.dataset().num_attributes()
    }

    /// Cumulative inter-cloud traffic counters (`None` for
    /// [`crate::TransportKind::InProcess`]).
    pub fn comm_stats(&self) -> Option<CommSnapshot> {
        self.engine.comm_stats()
    }

    /// Cumulative offline-randomness-pool counters, summed over both clouds'
    /// pools (all zero when pooling is disabled).
    pub fn pool_stats(&self) -> PoolStats {
        self.engine.pool_stats()
    }

    /// Overrides the number of worker threads used by C1's record-parallel
    /// stages of both protocols.
    ///
    /// Note that C2's request-serving worker pool is sized once, at
    /// [`Federation::setup`], from [`FederationConfig::threads`]. To
    /// exercise a parallel C1 against a remote transport, configure
    /// `threads` at setup (the server pool matches it) rather than scaling
    /// up afterwards — otherwise the pipelined requests serialize behind
    /// fewer C2 workers.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// Runs one query through the shim, preserving the historical contract
    /// that all validation (dimension mismatch, invalid `k`) happens in the
    /// protocol layer with the original error variants.
    fn run(
        &self,
        point: &[u64],
        k: usize,
        protocol: Protocol,
        distance_bits: Option<usize>,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<QueryResult, SknnError> {
        let query = PreparedQuery::unvalidated(
            Self::DATASET.to_string(),
            point.to_vec(),
            k,
            protocol,
            distance_bits,
        );
        self.engine.run(&query, rng).map(QueryResult::from)
    }

    /// Answers a query with the basic protocol SkNN_b (Algorithm 5).
    ///
    /// # Errors
    /// Propagates validation errors (dimension mismatch, invalid `k`).
    pub fn query_basic<R: RngCore + ?Sized>(
        &self,
        query: &[u64],
        k: usize,
        rng: &mut R,
    ) -> Result<QueryResult, SknnError> {
        self.run(query, k, Protocol::Basic, None, rng)
    }

    /// Answers a query with the fully secure protocol SkNN_m (Algorithm 6),
    /// using the deployment's derived distance-bit length.
    ///
    /// # Errors
    /// Propagates validation errors (dimension mismatch, invalid `k`, bad `l`).
    pub fn query_secure<R: RngCore + ?Sized>(
        &self,
        query: &[u64],
        k: usize,
        rng: &mut R,
    ) -> Result<QueryResult, SknnError> {
        self.run(query, k, Protocol::Secure, None, rng)
    }

    /// [`Federation::query_secure`] with an explicit distance-bit length,
    /// used by the harness to sweep `l` as in Figures 2(d)–(e).
    ///
    /// # Errors
    /// Propagates validation errors (dimension mismatch, invalid `k`, bad `l`).
    #[deprecated(
        since = "0.1.0",
        note = "use the engine's QueryBuilder with .distance_bits(l) instead: \
                federation.engine().query(Federation::DATASET).k(k).point(q)\
                .distance_bits(l).run(rng) — see the \"Deprecation registry\" \
                section of the `sknn` facade crate docs"
    )]
    pub fn query_secure_with_bits<R: RngCore + ?Sized>(
        &self,
        query: &[u64],
        k: usize,
        l: usize,
        rng: &mut R,
    ) -> Result<QueryResult, SknnError> {
        self.run(query, k, Protocol::Secure, Some(l), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PackingKind, TransportKind};
    use crate::plain_knn_records;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        // Distances from the query (2, 2) are 68, 29, 18, 98, 2 — all distinct,
        // so every k has a unique expected result set.
        Table::new(vec![
            vec![10, 0],
            vec![0, 7],
            vec![5, 5],
            vec![9, 9],
            vec![1, 1],
        ])
        .unwrap()
    }

    #[test]
    fn end_to_end_basic_and_secure_agree_with_plaintext() {
        let mut rng = StdRng::seed_from_u64(401);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let query = [2u64, 2];
        let expected = plain_knn_records(&table, &query, 3);

        let basic = federation.query_basic(&query, 3, &mut rng).unwrap();
        assert_eq!(basic.records, expected);
        assert!(!basic.audit.is_oblivious());
        assert!(basic.comm.is_none());

        let secure = federation.query_secure(&query, 3, &mut rng).unwrap();
        let mut got = secure.records.clone();
        let mut want = expected.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
        assert!(secure.audit.is_oblivious());
    }

    #[test]
    fn channel_transport_reports_traffic() {
        let mut rng = StdRng::seed_from_u64(402);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            transport: TransportKind::Channel,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let result = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        let comm = result.comm.expect("channel transport records traffic");
        assert!(comm.requests > 0);
        assert!(comm.total_bytes() > 0);

        // The secure protocol moves strictly more data between the clouds.
        let secure = federation.query_secure(&[2, 2], 2, &mut rng).unwrap();
        let secure_comm = secure.comm.unwrap();
        assert!(secure_comm.total_bytes() > comm.total_bytes());
    }

    #[test]
    fn tcp_transport_answers_queries_with_traffic() {
        let mut rng = StdRng::seed_from_u64(406);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            transport: TransportKind::Tcp,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let query = [2u64, 2];
        let result = federation.query_basic(&query, 3, &mut rng).unwrap();
        assert_eq!(result.records, plain_knn_records(&table, &query, 3));
        let comm = result.comm.expect("tcp transport records traffic");
        assert!(comm.requests > 0);
        assert!(comm.total_bytes() > 0);
    }

    #[test]
    fn parallel_queries_work_over_remote_transports() {
        // The acceptance bar of the transport refactor: ParallelismConfig
        // with several threads against a *remote* (pipelined) key holder,
        // correct results, non-zero traffic.
        let mut rng = StdRng::seed_from_u64(407);
        let table = table();
        for transport in [TransportKind::Channel, TransportKind::Tcp] {
            let config = FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                transport,
                threads: 6,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, &mut rng).unwrap();
            let query = [2u64, 2];
            let basic = federation.query_basic(&query, 3, &mut rng).unwrap();
            assert_eq!(
                basic.records,
                plain_knn_records(&table, &query, 3),
                "{transport:?}"
            );
            let comm = basic.comm.expect("remote transport records traffic");
            assert!(comm.requests > 0, "{transport:?}");

            let secure = federation.query_secure(&query, 2, &mut rng).unwrap();
            let mut got = secure.records.clone();
            got.sort();
            let mut want = plain_knn_records(&table, &query, 2);
            want.sort();
            assert_eq!(got, want, "{transport:?}");
            assert!(secure.comm.expect("traffic").requests > 0, "{transport:?}");
        }
    }

    #[test]
    fn coalescing_reduces_round_trips() {
        let mut rng = StdRng::seed_from_u64(408);
        let table = table();
        let run = |coalesce: bool, rng: &mut StdRng| {
            let config = FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                transport: TransportKind::Channel,
                threads: 6,
                coalesce,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, rng).unwrap();
            let query = [2u64, 2];
            let result = federation.query_basic(&query, 2, rng).unwrap();
            assert_eq!(result.records, plain_knn_records(&table, &query, 2));
            result.comm.expect("traffic").requests
        };
        // Merging depends on workers overlapping inside the coalescing
        // window, so on a heavily loaded machine a single attempt can
        // legitimately see no overlap; retry a few times before declaring
        // the mechanism broken.
        let without = run(false, &mut rng);
        for attempt in 0.. {
            let with = run(true, &mut rng);
            assert!(
                with <= without,
                "coalescing must never add round trips: {with} vs {without}"
            );
            if with < without {
                break;
            }
            assert!(
                attempt < 5,
                "coalescing never merged a single batch in {attempt} attempts \
                 ({with} vs {without} round trips)"
            );
        }
    }

    #[test]
    fn pooled_randomness_serves_queries_and_is_accounted() {
        let mut rng = StdRng::seed_from_u64(409);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            pool: sknn_paillier::PoolConfig {
                capacity: 64,
                background_refill: false,
                ..Default::default()
            },
            pool_prewarm: 64,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        assert!(
            federation.pool_stats().precomputed >= 128,
            "both pools pre-warmed"
        );

        let query = [2u64, 2];
        let basic = federation.query_basic(&query, 2, &mut rng).unwrap();
        assert_eq!(basic.records, plain_knn_records(&table, &query, 2));
        let activity = basic.profile.pool();
        assert!(
            activity.hits > 0,
            "C2's response encryptions must hit the pool"
        );

        // A secure query drains far more units than the prewarm supplied;
        // with refill off, hits can never exceed what was precomputed, and
        // the overflow must show up as synchronous fallbacks.
        let secure = federation.query_secure(&query, 2, &mut rng).unwrap();
        let activity = secure.profile.pool();
        assert!(activity.hits + activity.fallbacks > 0);
        let totals = federation.pool_stats();
        assert!(totals.hits <= totals.precomputed);
        assert!(
            totals.fallbacks > 0,
            "draining 2×64 prewarmed entries without refill must fall back"
        );
    }

    #[test]
    fn disabled_pool_still_answers_queries() {
        let mut rng = StdRng::seed_from_u64(410);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            pool: sknn_paillier::PoolConfig {
                capacity: 0,
                ..Default::default()
            },
            pool_prewarm: 0,
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        let result = federation.query_basic(&[2, 2], 3, &mut rng).unwrap();
        assert_eq!(result.records, plain_knn_records(&table, &[2, 2], 3));
        assert_eq!(
            result.profile.pool(),
            crate::profile::PoolActivity::default()
        );
        assert_eq!(federation.pool_stats(), sknn_paillier::PoolStats::default());
    }

    #[test]
    fn packed_queries_match_scalar_results() {
        let mut rng = StdRng::seed_from_u64(420);
        let table = table();
        let query = [2u64, 2];
        // Heart-sized small table; key big enough for a few slots at a
        // reduced statistical parameter.
        let run = |packing: PackingKind, rng: &mut StdRng| {
            let config = FederationConfig {
                key_bits: 192,
                max_query_value: 10,
                packing,
                packing_blind_bits: 10,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, rng).unwrap();
            let basic = federation.query_basic(&query, 3, rng).unwrap();
            let mut secure = federation.query_secure(&query, 2, rng).unwrap().records;
            secure.sort();
            (federation, basic, secure)
        };
        let (scalar_fed, scalar_basic, scalar_secure) = run(PackingKind::Off, &mut rng);
        let (packed_fed, packed_basic, packed_secure) = run(PackingKind::Auto(8), &mut rng);
        let sigma = packed_fed.packing().expect("packing derived").slots();
        assert!(sigma >= 2, "192-bit key must fit at least two slots");
        assert!(scalar_fed.packing().is_none());

        // Identical results on both protocols.
        assert_eq!(packed_basic.records, scalar_basic.records);
        assert_eq!(packed_basic.records, plain_knn_records(&table, &query, 3));
        assert_eq!(packed_secure, scalar_secure);

        // The packed SSED stage moves ~σ× fewer ciphertexts and decrypts
        // ~σ× less (square form also halves the scalar path's 2-per-pair
        // decryptions, hence strictly more than σ).
        let scalar_ops = scalar_basic
            .profile
            .ops(crate::profile::Stage::DistanceComputation);
        let packed_ops = packed_basic
            .profile
            .ops(crate::profile::Stage::DistanceComputation);
        assert!(
            packed_ops.ciphertexts_on_wire() * (sigma as u64) <= scalar_ops.ciphertexts_on_wire(),
            "packed SSED wire: {packed_ops:?} vs scalar {scalar_ops:?} at σ = {sigma}"
        );
        assert!(packed_ops.c2_decryptions * 2 * (sigma as u64) <= scalar_ops.c2_decryptions);
    }

    #[test]
    fn fixed_packing_that_does_not_fit_is_rejected() {
        let mut rng = StdRng::seed_from_u64(421);
        let table = table();
        let config = FederationConfig {
            key_bits: 96,
            max_query_value: 10,
            packing: PackingKind::Fixed(64),
            ..Default::default()
        };
        assert!(matches!(
            Federation::setup(&table, config, &mut rng),
            Err(SknnError::PackingInfeasible { requested: 64, .. })
        ));
        // Auto degrades to scalar instead of failing (the default κ = 40
        // cannot fit a single slot in a 64-bit key).
        let config = FederationConfig {
            key_bits: 64,
            max_query_value: 10,
            packing: PackingKind::Auto(64),
            ..Default::default()
        };
        let federation = Federation::setup(&table, config, &mut rng).unwrap();
        assert!(federation.packing().is_none());
        let result = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        assert_eq!(result.records, plain_knn_records(&table, &[2, 2], 2));
    }

    #[test]
    fn packed_queries_work_over_remote_transports() {
        let mut rng = StdRng::seed_from_u64(422);
        let table = table();
        let query = [2u64, 2];
        for transport in [TransportKind::Channel, TransportKind::Tcp] {
            let config = FederationConfig {
                key_bits: 192,
                max_query_value: 10,
                transport,
                packing: PackingKind::Fixed(2),
                packing_blind_bits: 10,
                ..Default::default()
            };
            let federation = Federation::setup(&table, config, &mut rng).unwrap();
            assert_eq!(federation.packing().unwrap().slots(), 2, "{transport:?}");
            let basic = federation.query_basic(&query, 3, &mut rng).unwrap();
            assert_eq!(
                basic.records,
                plain_knn_records(&table, &query, 3),
                "{transport:?}"
            );
            let mut secure = federation
                .query_secure(&query, 2, &mut rng)
                .unwrap()
                .records;
            secure.sort();
            let mut want = plain_knn_records(&table, &query, 2);
            want.sort();
            assert_eq!(secure, want, "{transport:?}");
        }
    }

    #[test]
    fn distance_bits_are_derived_and_overridable() {
        let mut rng = StdRng::seed_from_u64(403);
        let table = table();
        let auto = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(auto.distance_bits(), table.required_distance_bits(10));
        assert_eq!(auto.num_records(), 5);
        assert_eq!(auto.num_attributes(), 2);

        let custom = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                distance_bits: Some(12),
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(custom.distance_bits(), 12);

        let too_small = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                distance_bits: Some(3),
                ..Default::default()
            },
            &mut rng,
        );
        assert!(matches!(
            too_small,
            Err(SknnError::InsufficientDistanceBits { .. })
        ));
    }

    #[test]
    fn oversized_l_for_key_is_rejected() {
        let mut rng = StdRng::seed_from_u64(404);
        let table = table();
        let result = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 64,
                max_query_value: 10,
                distance_bits: Some(70),
                ..Default::default()
            },
            &mut rng,
        );
        assert!(matches!(
            result,
            Err(SknnError::InsufficientDistanceBits { .. })
        ));
    }

    #[test]
    fn threads_can_be_adjusted() {
        let mut rng = StdRng::seed_from_u64(405);
        let table = table();
        let mut federation = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                threads: 4,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let a = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        federation.set_threads(1);
        let b = federation.query_basic(&[2, 2], 2, &mut rng).unwrap();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn deprecated_distance_bit_override_matches_builder_path() {
        let mut rng = StdRng::seed_from_u64(411);
        let table = table();
        let federation = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let l = federation.distance_bits() + 2;
        #[allow(deprecated)]
        let legacy = federation
            .query_secure_with_bits(&[2, 2], 2, l, &mut rng)
            .unwrap();
        let modern = federation
            .engine()
            .query(Federation::DATASET)
            .k(2)
            .point(&[2, 2])
            .distance_bits(l)
            .run(&mut rng)
            .unwrap();
        let mut a = legacy.records;
        let mut b = modern.result;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn shim_accepts_queries_beyond_the_registered_bound() {
        // Historical contract: Federation never enforced max_query_value on
        // queries; the shim must not start rejecting them.
        let mut rng = StdRng::seed_from_u64(412);
        let table = table();
        let federation = Federation::setup(
            &table,
            FederationConfig {
                key_bits: 96,
                max_query_value: 10,
                distance_bits: Some(16),
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        // 20 > max_query_value = 10, but l = 16 has headroom; the legacy
        // API answers it (the engine's builder would reject it up front).
        let result = federation.query_basic(&[20, 20], 2, &mut rng).unwrap();
        assert_eq!(result.records, plain_knn_records(&table, &[20, 20], 2));
        assert!(matches!(
            federation
                .engine()
                .query(Federation::DATASET)
                .k(2)
                .point(&[20, 20])
                .build(),
            Err(SknnError::InvalidQuery { .. })
        ));
    }
}
