//! Per-stage timing of a query execution.
//!
//! Section 5.2 of the paper reports that SMIN_n accounts for roughly 70–75 %
//! of SkNN_m's cost; this module lets the benchmark harness reproduce that
//! breakdown instead of only end-to-end times.

use std::time::Duration;

/// The stages instrumented during query processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Secure squared-distance computation (SSED over every record).
    DistanceComputation,
    /// Secure bit decomposition of every distance (SkNN_m only).
    BitDecomposition,
    /// The k SMIN_n tournaments (SkNN_m only).
    SecureMinimum,
    /// Locating and extracting the winning record obliviously
    /// (steps 3(b)–3(d) of Algorithm 6), or the top-k index exchange of SkNN_b.
    RecordSelection,
    /// Obliviously saturating the chosen record's distance via SBOR
    /// (step 3(e) of Algorithm 6).
    DistanceFreezing,
    /// Masking, decrypting and handing the k records to Bob.
    Finalization,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 6] = [
        Stage::DistanceComputation,
        Stage::BitDecomposition,
        Stage::SecureMinimum,
        Stage::RecordSelection,
        Stage::DistanceFreezing,
        Stage::Finalization,
    ];

    /// A short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::DistanceComputation => "SSED",
            Stage::BitDecomposition => "SBD",
            Stage::SecureMinimum => "SMIN_n",
            Stage::RecordSelection => "selection",
            Stage::DistanceFreezing => "SBOR freeze",
            Stage::Finalization => "finalize",
        }
    }
}

/// Offline-randomness pool activity during one query: how many encryption
/// units came from the precomputed pools (`hits`) versus how many had to be
/// exponentiated synchronously because a pool was drained or absent
/// (`fallbacks`). Aggregated across both clouds' pools.
///
/// The per-query numbers are deltas of the deployment-wide pool counters,
/// so when several queries run concurrently on one `Federation` their
/// windows overlap and each profile may include draws issued by the others;
/// `Federation::pool_stats` totals stay exact. Use serial queries when a
/// per-query attribution must be precise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolActivity {
    /// Encryption units served from a precomputed pool.
    pub hits: u64,
    /// Encryption units computed synchronously (pool drained or disabled).
    pub fallbacks: u64,
}

impl PoolActivity {
    /// Fraction (0..=1) of units served from the pools; zero when no unit
    /// was drawn at all.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Protocol-operation counters of one stage: how many ciphertexts crossed
/// the C1↔C2 boundary (in either direction) and how many decryptions the
/// key-holding cloud performed on this stage's behalf.
///
/// The counts are derived from the shape of each [`sknn_protocols::KeyHolder`]
/// call — not from a particular transport — so they are identical for
/// in-process, channel and TCP deployments and directly comparable across
/// configurations (scalar vs slot-packed in particular: packing divides
/// `ciphertexts_to_c2`, SSED's `ciphertexts_from_c2`, and `c2_decryptions`
/// by the packing factor σ).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Ciphertexts C1 sent to C2.
    pub ciphertexts_to_c2: u64,
    /// Ciphertexts C2 sent back to C1 (index/plaintext replies count zero).
    pub ciphertexts_from_c2: u64,
    /// Paillier decryptions C2 performed.
    pub c2_decryptions: u64,
}

impl OpCounters {
    /// Ciphertexts on the wire in both directions.
    pub fn ciphertexts_on_wire(&self) -> u64 {
        self.ciphertexts_to_c2 + self.ciphertexts_from_c2
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: OpCounters) {
        self.ciphertexts_to_c2 += other.ciphertexts_to_c2;
        self.ciphertexts_from_c2 += other.ciphertexts_from_c2;
        self.c2_decryptions += other.c2_decryptions;
    }
}

/// Wall-clock timings of one query, broken down by [`Stage`].
#[derive(Clone, Debug, Default)]
pub struct QueryProfile {
    durations: Vec<(Stage, Duration)>,
    total: Duration,
    pool: PoolActivity,
    ops: Vec<(Stage, OpCounters)>,
}

impl QueryProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to the accumulated time of `stage`.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.total += elapsed;
        if let Some(entry) = self.durations.iter_mut().find(|(s, _)| *s == stage) {
            entry.1 += elapsed;
        } else {
            self.durations.push((stage, elapsed));
        }
    }

    /// Runs `f`, recording its wall-clock time under `stage`, and returns its
    /// result.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// Accumulated time of one stage (zero if the stage never ran).
    pub fn stage(&self, stage: Stage) -> Duration {
        self.durations
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Fraction (0..=1) of the total spent in `stage`; zero when nothing was
    /// recorded at all.
    pub fn fraction(&self, stage: Stage) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.stage(stage).as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Stages with non-zero accumulated time, in execution order.
    pub fn stages(&self) -> Vec<(Stage, Duration)> {
        let mut v = self.durations.clone();
        v.sort_by_key(|(s, _)| *s);
        v
    }

    /// Adds offline-pool counters (hits vs synchronous fallbacks) observed
    /// during this query.
    pub fn record_pool(&mut self, activity: PoolActivity) {
        self.pool.hits += activity.hits;
        self.pool.fallbacks += activity.fallbacks;
    }

    /// Offline-pool activity during this query (zero when pooling is
    /// disabled or the deployment does not track it).
    pub fn pool(&self) -> PoolActivity {
        self.pool
    }

    /// Adds protocol-operation counters observed during `stage`.
    pub fn record_ops(&mut self, stage: Stage, counters: OpCounters) {
        if let Some(entry) = self.ops.iter_mut().find(|(s, _)| *s == stage) {
            entry.1.add(counters);
        } else {
            self.ops.push((stage, counters));
        }
    }

    /// Protocol-operation counters of one stage (zero if the stage never
    /// talked to C2).
    pub fn ops(&self, stage: Stage) -> OpCounters {
        self.ops
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// Protocol-operation counters summed across all stages.
    pub fn total_ops(&self) -> OpCounters {
        let mut total = OpCounters::default();
        for (_, c) in &self.ops {
            total.add(*c);
        }
        total
    }

    /// Merges another profile into this one (used by the parallel executor to
    /// fold per-thread measurements together).
    pub fn merge(&mut self, other: &QueryProfile) {
        for (stage, d) in &other.durations {
            self.record(*stage, *d);
        }
        for (stage, c) in &other.ops {
            self.record_ops(*stage, *c);
        }
        self.record_pool(other.pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut p = QueryProfile::new();
        p.record(Stage::DistanceComputation, Duration::from_millis(30));
        p.record(Stage::SecureMinimum, Duration::from_millis(60));
        p.record(Stage::SecureMinimum, Duration::from_millis(10));
        assert_eq!(p.stage(Stage::SecureMinimum), Duration::from_millis(70));
        assert_eq!(p.stage(Stage::Finalization), Duration::ZERO);
        assert_eq!(p.total(), Duration::from_millis(100));
        assert!((p.fraction(Stage::SecureMinimum) - 0.7).abs() < 1e-9);
        assert_eq!(p.stages().len(), 2);
    }

    #[test]
    fn time_closure() {
        let mut p = QueryProfile::new();
        let out = p.time(Stage::Finalization, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(p.stage(Stage::Finalization) >= Duration::from_millis(5));
    }

    #[test]
    fn merge_combines() {
        let mut a = QueryProfile::new();
        a.record(Stage::DistanceComputation, Duration::from_millis(10));
        let mut b = QueryProfile::new();
        b.record(Stage::DistanceComputation, Duration::from_millis(5));
        b.record(Stage::BitDecomposition, Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(
            a.stage(Stage::DistanceComputation),
            Duration::from_millis(15)
        );
        assert_eq!(a.stage(Stage::BitDecomposition), Duration::from_millis(7));
    }

    #[test]
    fn pool_activity_accumulates_and_merges() {
        let mut a = QueryProfile::new();
        assert_eq!(a.pool(), PoolActivity::default());
        assert_eq!(a.pool().hit_rate(), 0.0);
        a.record_pool(PoolActivity {
            hits: 3,
            fallbacks: 1,
        });
        let mut b = QueryProfile::new();
        b.record_pool(PoolActivity {
            hits: 5,
            fallbacks: 1,
        });
        a.merge(&b);
        assert_eq!(
            a.pool(),
            PoolActivity {
                hits: 8,
                fallbacks: 2
            }
        );
        assert!((a.pool().hit_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn op_counters_accumulate_and_merge() {
        let mut a = QueryProfile::new();
        assert_eq!(a.ops(Stage::DistanceComputation), OpCounters::default());
        a.record_ops(
            Stage::DistanceComputation,
            OpCounters {
                ciphertexts_to_c2: 10,
                ciphertexts_from_c2: 5,
                c2_decryptions: 10,
            },
        );
        a.record_ops(
            Stage::DistanceComputation,
            OpCounters {
                ciphertexts_to_c2: 2,
                ciphertexts_from_c2: 1,
                c2_decryptions: 2,
            },
        );
        let mut b = QueryProfile::new();
        b.record_ops(
            Stage::BitDecomposition,
            OpCounters {
                ciphertexts_to_c2: 3,
                ciphertexts_from_c2: 3,
                c2_decryptions: 3,
            },
        );
        a.merge(&b);
        assert_eq!(a.ops(Stage::DistanceComputation).ciphertexts_to_c2, 12);
        assert_eq!(a.ops(Stage::DistanceComputation).ciphertexts_on_wire(), 18);
        assert_eq!(a.ops(Stage::BitDecomposition).c2_decryptions, 3);
        assert_eq!(a.total_ops().ciphertexts_on_wire(), 24);
        assert_eq!(a.total_ops().c2_decryptions, 15);
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(Stage::ALL.len(), 6);
        assert_eq!(Stage::SecureMinimum.label(), "SMIN_n");
        let empty = QueryProfile::new();
        assert_eq!(empty.fraction(Stage::SecureMinimum), 0.0);
    }
}
