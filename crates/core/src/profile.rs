//! Per-stage timing of a query execution.
//!
//! Section 5.2 of the paper reports that SMIN_n accounts for roughly 70–75 %
//! of SkNN_m's cost; this module lets the benchmark harness reproduce that
//! breakdown instead of only end-to-end times.

use std::time::Duration;

/// The stages instrumented during query processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Secure squared-distance computation (SSED over every record).
    DistanceComputation,
    /// Secure bit decomposition of every distance (SkNN_m only).
    BitDecomposition,
    /// The scatter half of a sharded plan: per-shard top-k candidate
    /// selection (SkNN_b's per-shard index exchange, or SkNN_m's per-shard
    /// oblivious extraction rounds). Zero for unsharded queries.
    ShardCandidates,
    /// The k SMIN_n tournaments (SkNN_m only). In a sharded plan this is
    /// the *gather* half: the tournaments run over the k·S surviving
    /// candidates instead of all n records.
    SecureMinimum,
    /// Locating and extracting the winning record obliviously
    /// (steps 3(b)–3(d) of Algorithm 6), or the top-k index exchange of SkNN_b.
    RecordSelection,
    /// Obliviously saturating the chosen record's distance via SBOR
    /// (step 3(e) of Algorithm 6).
    DistanceFreezing,
    /// Masking, decrypting and handing the k records to Bob.
    Finalization,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 7] = [
        Stage::DistanceComputation,
        Stage::BitDecomposition,
        Stage::ShardCandidates,
        Stage::SecureMinimum,
        Stage::RecordSelection,
        Stage::DistanceFreezing,
        Stage::Finalization,
    ];

    /// A short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::DistanceComputation => "SSED",
            Stage::BitDecomposition => "SBD",
            Stage::ShardCandidates => "shard top-k",
            Stage::SecureMinimum => "SMIN_n",
            Stage::RecordSelection => "selection",
            Stage::DistanceFreezing => "SBOR freeze",
            Stage::Finalization => "finalize",
        }
    }
}

/// Offline-randomness pool activity during one query: how many encryption
/// units came from the precomputed pools (`hits`) versus how many had to be
/// exponentiated synchronously because a pool was drained or absent
/// (`fallbacks`). Aggregated across both clouds' pools.
///
/// The per-query numbers are deltas of the deployment-wide pool counters,
/// so when several queries run concurrently on one `Federation` their
/// windows overlap and each profile may include draws issued by the others;
/// `Federation::pool_stats` totals stay exact. Use serial queries when a
/// per-query attribution must be precise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolActivity {
    /// Encryption units served from a precomputed pool.
    pub hits: u64,
    /// Encryption units computed synchronously (pool drained or disabled).
    pub fallbacks: u64,
}

impl PoolActivity {
    /// Fraction (0..=1) of units served from the pools; zero when no unit
    /// was drawn at all.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Protocol-operation counters of one stage: how many ciphertexts crossed
/// the C1↔C2 boundary (in either direction) and how many decryptions the
/// key-holding cloud performed on this stage's behalf.
///
/// The counts are derived from the shape of each [`sknn_protocols::KeyHolder`]
/// call — not from a particular transport — so they are identical for
/// in-process, channel and TCP deployments and directly comparable across
/// configurations (scalar vs slot-packed in particular: packing divides
/// `ciphertexts_to_c2`, SSED's `ciphertexts_from_c2`, and `c2_decryptions`
/// by the packing factor σ).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Ciphertexts C1 sent to C2.
    pub ciphertexts_to_c2: u64,
    /// Ciphertexts C2 sent back to C1 (index/plaintext replies count zero).
    pub ciphertexts_from_c2: u64,
    /// Paillier decryptions C2 performed.
    pub c2_decryptions: u64,
}

impl OpCounters {
    /// Ciphertexts on the wire in both directions.
    pub fn ciphertexts_on_wire(&self) -> u64 {
        self.ciphertexts_to_c2 + self.ciphertexts_from_c2
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: OpCounters) {
        self.ciphertexts_to_c2 += other.ciphertexts_to_c2;
        self.ciphertexts_from_c2 += other.ciphertexts_from_c2;
        self.c2_decryptions += other.c2_decryptions;
    }
}

/// Wall-clock timings of one query, broken down by [`Stage`].
///
/// Stage durations are *summed over every task that ran the stage*: when
/// a sharded plan runs its scatter tasks concurrently (or a parallel
/// stage runs on several threads), a stage's accumulated time can exceed
/// the query's elapsed wall-clock time — the semantics are CPU-time-like,
/// not elapsed-time. For comparisons across shard/thread configurations
/// use the [`OpCounters`], which are scheduling-independent by
/// construction.
#[derive(Clone, Debug, Default)]
pub struct QueryProfile {
    durations: Vec<(Stage, Duration)>,
    total: Duration,
    pool: PoolActivity,
    ops: Vec<(Stage, OpCounters)>,
    /// Per-shard attribution of `ops`, populated by sharded plans.
    shard_ops: Vec<(usize, Stage, OpCounters)>,
}

impl QueryProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to the accumulated time of `stage`.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.total += elapsed;
        if let Some(entry) = self.durations.iter_mut().find(|(s, _)| *s == stage) {
            entry.1 += elapsed;
        } else {
            self.durations.push((stage, elapsed));
        }
    }

    /// Runs `f`, recording its wall-clock time under `stage`, and returns its
    /// result.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// Accumulated time of one stage (zero if the stage never ran).
    pub fn stage(&self, stage: Stage) -> Duration {
        self.durations
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Fraction (0..=1) of the total spent in `stage`; zero when nothing was
    /// recorded at all.
    pub fn fraction(&self, stage: Stage) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.stage(stage).as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Stages with non-zero accumulated time, in execution order.
    pub fn stages(&self) -> Vec<(Stage, Duration)> {
        let mut v = self.durations.clone();
        v.sort_by_key(|(s, _)| *s);
        v
    }

    /// Adds offline-pool counters (hits vs synchronous fallbacks) observed
    /// during this query.
    pub fn record_pool(&mut self, activity: PoolActivity) {
        self.pool.hits += activity.hits;
        self.pool.fallbacks += activity.fallbacks;
    }

    /// Offline-pool activity during this query (zero when pooling is
    /// disabled or the deployment does not track it).
    pub fn pool(&self) -> PoolActivity {
        self.pool
    }

    /// Adds protocol-operation counters observed during `stage`.
    pub fn record_ops(&mut self, stage: Stage, counters: OpCounters) {
        if let Some(entry) = self.ops.iter_mut().find(|(s, _)| *s == stage) {
            entry.1.add(counters);
        } else {
            self.ops.push((stage, counters));
        }
    }

    /// Protocol-operation counters of one stage (zero if the stage never
    /// talked to C2).
    pub fn ops(&self, stage: Stage) -> OpCounters {
        self.ops
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// Adds protocol-operation counters observed during `stage` on behalf
    /// of one shard of a sharded plan. The counters land in the per-shard
    /// table *and* in the regular per-stage totals, so [`QueryProfile::ops`]
    /// stays the single source of truth for a stage's overall volume.
    pub fn record_shard_ops(&mut self, shard: usize, stage: Stage, counters: OpCounters) {
        self.record_ops(stage, counters);
        if let Some(entry) = self
            .shard_ops
            .iter_mut()
            .find(|(s, st, _)| *s == shard && *st == stage)
        {
            entry.2.add(counters);
        } else {
            self.shard_ops.push((shard, stage, counters));
        }
    }

    /// Protocol-operation counters attributed to one shard during `stage`
    /// (zero for unsharded queries, which have no per-shard attribution).
    pub fn shard_stage_ops(&self, shard: usize, stage: Stage) -> OpCounters {
        self.shard_ops
            .iter()
            .find(|(s, st, _)| *s == shard && *st == stage)
            .map(|(_, _, c)| *c)
            .unwrap_or_default()
    }

    /// Protocol-operation counters attributed to one shard, summed across
    /// stages.
    pub fn shard_ops(&self, shard: usize) -> OpCounters {
        let mut total = OpCounters::default();
        for (s, _, c) in &self.shard_ops {
            if *s == shard {
                total.add(*c);
            }
        }
        total
    }

    /// The shard ids that contributed per-shard counters, ascending.
    /// Empty for unsharded queries.
    pub fn shards(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.shard_ops.iter().map(|(s, _, _)| *s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Protocol-operation counters summed across all stages.
    pub fn total_ops(&self) -> OpCounters {
        let mut total = OpCounters::default();
        for (_, c) in &self.ops {
            total.add(*c);
        }
        total
    }

    /// Merges another profile into this one (used by the parallel executor to
    /// fold per-thread and per-shard measurements together). Durations
    /// add, so merging profiles of concurrently executed tasks produces
    /// the CPU-time-like semantics documented on [`QueryProfile`].
    pub fn merge(&mut self, other: &QueryProfile) {
        for (stage, d) in &other.durations {
            self.record(*stage, *d);
        }
        for (stage, c) in &other.ops {
            self.record_ops(*stage, *c);
        }
        // The per-shard table merges directly: `other.ops` above already
        // carries the shard contributions, so routing them through
        // `record_shard_ops` would double-count the stage totals.
        for (shard, stage, c) in &other.shard_ops {
            if let Some(entry) = self
                .shard_ops
                .iter_mut()
                .find(|(s, st, _)| s == shard && st == stage)
            {
                entry.2.add(*c);
            } else {
                self.shard_ops.push((*shard, *stage, *c));
            }
        }
        self.record_pool(other.pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut p = QueryProfile::new();
        p.record(Stage::DistanceComputation, Duration::from_millis(30));
        p.record(Stage::SecureMinimum, Duration::from_millis(60));
        p.record(Stage::SecureMinimum, Duration::from_millis(10));
        assert_eq!(p.stage(Stage::SecureMinimum), Duration::from_millis(70));
        assert_eq!(p.stage(Stage::Finalization), Duration::ZERO);
        assert_eq!(p.total(), Duration::from_millis(100));
        assert!((p.fraction(Stage::SecureMinimum) - 0.7).abs() < 1e-9);
        assert_eq!(p.stages().len(), 2);
    }

    #[test]
    fn time_closure() {
        let mut p = QueryProfile::new();
        let out = p.time(Stage::Finalization, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(p.stage(Stage::Finalization) >= Duration::from_millis(5));
    }

    #[test]
    fn merge_combines() {
        let mut a = QueryProfile::new();
        a.record(Stage::DistanceComputation, Duration::from_millis(10));
        let mut b = QueryProfile::new();
        b.record(Stage::DistanceComputation, Duration::from_millis(5));
        b.record(Stage::BitDecomposition, Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(
            a.stage(Stage::DistanceComputation),
            Duration::from_millis(15)
        );
        assert_eq!(a.stage(Stage::BitDecomposition), Duration::from_millis(7));
    }

    #[test]
    fn pool_activity_accumulates_and_merges() {
        let mut a = QueryProfile::new();
        assert_eq!(a.pool(), PoolActivity::default());
        assert_eq!(a.pool().hit_rate(), 0.0);
        a.record_pool(PoolActivity {
            hits: 3,
            fallbacks: 1,
        });
        let mut b = QueryProfile::new();
        b.record_pool(PoolActivity {
            hits: 5,
            fallbacks: 1,
        });
        a.merge(&b);
        assert_eq!(
            a.pool(),
            PoolActivity {
                hits: 8,
                fallbacks: 2
            }
        );
        assert!((a.pool().hit_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn op_counters_accumulate_and_merge() {
        let mut a = QueryProfile::new();
        assert_eq!(a.ops(Stage::DistanceComputation), OpCounters::default());
        a.record_ops(
            Stage::DistanceComputation,
            OpCounters {
                ciphertexts_to_c2: 10,
                ciphertexts_from_c2: 5,
                c2_decryptions: 10,
            },
        );
        a.record_ops(
            Stage::DistanceComputation,
            OpCounters {
                ciphertexts_to_c2: 2,
                ciphertexts_from_c2: 1,
                c2_decryptions: 2,
            },
        );
        let mut b = QueryProfile::new();
        b.record_ops(
            Stage::BitDecomposition,
            OpCounters {
                ciphertexts_to_c2: 3,
                ciphertexts_from_c2: 3,
                c2_decryptions: 3,
            },
        );
        a.merge(&b);
        assert_eq!(a.ops(Stage::DistanceComputation).ciphertexts_to_c2, 12);
        assert_eq!(a.ops(Stage::DistanceComputation).ciphertexts_on_wire(), 18);
        assert_eq!(a.ops(Stage::BitDecomposition).c2_decryptions, 3);
        assert_eq!(a.total_ops().ciphertexts_on_wire(), 24);
        assert_eq!(a.total_ops().c2_decryptions, 15);
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(Stage::ALL.len(), 7);
        assert_eq!(Stage::SecureMinimum.label(), "SMIN_n");
        assert_eq!(Stage::ShardCandidates.label(), "shard top-k");
        assert!(Stage::ShardCandidates < Stage::SecureMinimum);
        let empty = QueryProfile::new();
        assert_eq!(empty.fraction(Stage::SecureMinimum), 0.0);
    }

    #[test]
    fn shard_ops_attribute_and_feed_stage_totals() {
        let counters = |to: u64| OpCounters {
            ciphertexts_to_c2: to,
            ciphertexts_from_c2: 1,
            c2_decryptions: to,
        };
        let mut p = QueryProfile::new();
        assert!(p.shards().is_empty());
        p.record_shard_ops(0, Stage::ShardCandidates, counters(10));
        p.record_shard_ops(1, Stage::ShardCandidates, counters(20));
        p.record_shard_ops(1, Stage::ShardCandidates, counters(5));
        p.record_shard_ops(1, Stage::DistanceComputation, counters(7));
        assert_eq!(p.shards(), vec![0, 1]);
        assert_eq!(
            p.shard_stage_ops(1, Stage::ShardCandidates)
                .ciphertexts_to_c2,
            25
        );
        assert_eq!(p.shard_ops(1).ciphertexts_to_c2, 32);
        assert_eq!(p.shard_ops(2), OpCounters::default());
        // The stage totals include every shard's contribution exactly once.
        assert_eq!(p.ops(Stage::ShardCandidates).ciphertexts_to_c2, 35);

        // Merging keeps per-shard attribution without double counting.
        let mut merged = QueryProfile::new();
        merged.record_shard_ops(0, Stage::ShardCandidates, counters(1));
        merged.merge(&p);
        assert_eq!(merged.shard_ops(0).ciphertexts_to_c2, 11);
        assert_eq!(merged.ops(Stage::ShardCandidates).ciphertexts_to_c2, 36);
    }
}
