//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the `criterion` 0.5 API this workspace's
//! benchmarks use — [`Criterion::benchmark_group`], group configuration,
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — over a simple wall-clock measurement loop.
//!
//! Statistical machinery (outlier detection, regression analysis, HTML
//! reports) is intentionally absent: each benchmark runs a short warm-up,
//! then samples until the measurement-time budget or the sample count is
//! exhausted, and prints min/mean/max per sample. Passing `--test` (as
//! `cargo test --benches` does) runs every benchmark exactly once.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            test_mode: self.test_mode,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark (an implicit single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("", f);
        group.finish();
    }

    /// Prints the closing summary (no-op in this shim).
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent collecting samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        self.run(&id.to_string(), f);
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Ends the group (no-op beyond dropping it; mirrors criterion's API).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: if self.test_mode {
                BenchBudget::SingleIteration
            } else {
                BenchBudget::Timed {
                    warm_up: self.warm_up_time,
                    measurement: self.measurement_time,
                    samples: self.sample_size,
                }
            },
        };
        f(&mut bencher);
        report(&label, &bencher.samples, self.test_mode);
    }
}

enum BenchBudget {
    /// `--test`: one iteration, correctness only.
    SingleIteration,
    /// Normal run: warm up, then sample within the time budget.
    Timed {
        warm_up: Duration,
        measurement: Duration,
        samples: usize,
    },
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: BenchBudget,
}

impl Bencher {
    /// Measures `f`, storing one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.budget {
            BenchBudget::SingleIteration => {
                let start = Instant::now();
                std::hint::black_box(f());
                self.samples.push(start.elapsed());
            }
            BenchBudget::Timed {
                warm_up,
                measurement,
                samples,
            } => {
                let warm_start = Instant::now();
                while warm_start.elapsed() < warm_up {
                    std::hint::black_box(f());
                }
                let run_start = Instant::now();
                for _ in 0..samples {
                    let start = Instant::now();
                    std::hint::black_box(f());
                    self.samples.push(start.elapsed());
                    if run_start.elapsed() >= measurement {
                        break;
                    }
                }
            }
        }
    }
}

/// The single audited console sink of the bench harness. Keeping every
/// write behind one function makes the shim's output surface reviewable
/// at a glance: only bench labels and timing summaries pass through
/// here, never protocol data.
fn emit(line: std::fmt::Arguments<'_>) {
    // sknn-lint: allow(secret-format, "bench reporter sink: prints timing labels only, never protocol data")
    println!("{line}");
}

fn report(label: &str, samples: &[Duration], test_mode: bool) {
    if samples.is_empty() {
        emit(format_args!(
            "{label:<50} no samples (closure never called iter)"
        ));
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    if test_mode {
        emit(format_args!(
            "{label:<50} ok ({} in test mode)",
            fmt_duration(mean)
        ));
    } else {
        emit(format_args!(
            "{label:<50} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len()
        ));
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for groups where the function is implied).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formatting() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(6).to_string(), "6");
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
    }
}
