//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with `parking_lot`'s non-poisoning API,
//! implemented over `std::sync`. A poisoned std lock is treated as
//! still-usable (the poison is swallowed), matching `parking_lot`'s behavior
//! of not tracking poison at all.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisition methods cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
