//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's wire codec uses: [`BytesMut`] as a
//! growable write buffer with big-endian `put_*` methods, [`Bytes`] as a
//! cheaply sliceable read cursor with big-endian `get_*` methods, and the
//! [`Buf`] / [`BufMut`] traits carrying those methods.
//!
//! `get_*` methods panic when the buffer is exhausted, matching upstream
//! `bytes`; codecs that must reject malformed input check [`Buf::remaining`]
//! first (see `sknn-protocols`' `transport::wire`).

#![forbid(unsafe_code)]

use std::sync::Arc;

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn copy_to_slice(&mut self, dest: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable write buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freezes the buffer into an immutable, sliceable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// An immutable byte buffer with a read cursor; clones share the allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the cursor is exhausted.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(dest.len() <= self.len(), "buffer exhausted");
        dest.copy_from_slice(&self.data[self.start..self.start + dest.len()]);
        self.start += dest.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_slice(b"abc");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 1 + 4 + 8 + 3);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), u64::MAX - 1);
        let tail = bytes.split_to(3);
        assert_eq!(&*tail, b"abc");
        assert!(bytes.is_empty());
    }

    #[test]
    fn split_to_shares_allocation() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*b, &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32();
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(buf.as_ref(), &[0, 0, 0, 1]);
    }
}
