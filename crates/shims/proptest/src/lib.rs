//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of `proptest` 1.x this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies, [`any`], and
//! `prop::collection::vec`.
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! **not shrunk** — the panic message reports the case index and the
//! deterministic per-case seed instead, which is enough to reproduce (case
//! seeds do not depend on how many cases run).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng, StandardSample};

/// Per-run configuration, selected with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error carried out of a failing `prop_assert*` macro.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
    /// `true` when raised by [`prop_assume!`]: the case is skipped, not
    /// counted as a failure.
    pub is_rejection: bool,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic RNG for one test case. Case seeds are independent of the
/// configured case count, so a failure reproduces under any configuration.
pub fn test_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(
        0x00_5EED_2014_u64
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(case),
    )
}

/// A source of random values of a fixed type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each produced value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Whole-domain strategy for primitive types; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform strategy over the entire domain of `T`.
pub fn any<T: StandardSample>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: StandardSample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Produces vectors of values from `element`, sized per `size`
    /// (a fixed `usize`, a `Range<usize>`, or a `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let range = size.into();
        VecStrategy {
            element,
            min: range.min,
            max: range.max,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// An inclusive size bound for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Smallest allowed length.
    pub min: usize,
    /// Largest allowed length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) so the harness can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError {
                message: format!($($fmt)*),
                is_rejection: false,
            });
        }
    };
}

/// Skips the current case when the precondition does not hold, mirroring
/// `proptest::prop_assume!`. Skipped cases are not counted as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError {
                message: format!("precondition not met: {}", stringify!($cond)),
                is_rejection: true,
            });
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn` runs `cases` times with arguments
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut proptest_rng = $crate::test_rng(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    if e.is_rejection {
                        continue;
                    }
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(a in 5u64..10, b in 0i32..=3, _big in 1u128..) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0..=3).contains(&b));
        }

        #[test]
        fn vec_sizes_are_respected(v in prop::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_flat_map((n, items) in (1usize..=4).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u64..100, n))
        })) {
            prop_assert_eq!(items.len(), n);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn map_transforms(sq in (0u64..100).prop_map(|v| v * v)) {
            let root = (sq as f64).sqrt().round() as u64;
            prop_assert_eq!(root * root, sq);
        }
    }

    #[test]
    fn default_config_runs() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn case_seeds_are_stable() {
        use rand::RngCore;
        assert_eq!(crate::test_rng(3).next_u64(), crate::test_rng(3).next_u64());
        assert_ne!(crate::test_rng(3).next_u64(), crate::test_rng(4).next_u64());
    }
}
