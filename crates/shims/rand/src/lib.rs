//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the subset of the `rand` 0.8 API the
//! workspace uses: the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a
//! deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via SplitMix64.
//!
//! It is **not** a cryptographically secure RNG; the workspace uses it for
//! protocol masking randomness in a reproduction/benchmark setting and for
//! deterministic test data. The stream differs from upstream `rand`'s
//! `StdRng` (ChaCha12), which only matters if exact value sequences are
//! asserted — the workspace only relies on determinism, not specific values.

/// The core of a random number generator: raw random words and bytes.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut state);
            for (b, v) in chunk.iter_mut().zip(value.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from ambient entropy (time + a process
    /// counter). Good enough for non-reproducible runs; use
    /// [`SeedableRng::seed_from_u64`] for reproducible ones.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id() as u64;
        Self::seed_from_u64(nanos ^ count.rotate_left(32) ^ pid.rotate_left(17))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly over their whole domain via
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Truncation keeps the low bits, which are uniform.
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling in `[0, width)` for a non-zero `width`, by rejection.
fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    // Largest multiple of `width` that fits in u128, minus one: accepting
    // only draws below it removes the modulo bias.
    let zone = u128::MAX - (u128::MAX - width + 1) % width;
    loop {
        let v = u128::sample(rng);
        if v <= zone {
            return v % width;
        }
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
///
/// Values map order-preservingly into `u128` (signed types are offset by
/// their minimum), so one blanket [`SampleRange`] impl per range shape
/// serves all of them — mirroring upstream `rand`'s single generic impl,
/// which type inference depends on (per-type impls would leave integer
/// literals ambiguous).
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps into the `u128` sampling domain, preserving order.
    fn to_ordered(self) -> u128;
    /// Inverse of [`SampleUniform::to_ordered`]; the value is guaranteed to
    /// round-trip.
    fn from_ordered(v: u128) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_ordered(self) -> u128 {
                self as u128
            }
            #[inline]
            fn from_ordered(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_ordered(self) -> u128 {
                (self as i128).wrapping_sub(<$t>::MIN as i128) as u128
            }
            #[inline]
            fn from_ordered(v: u128) -> Self {
                (v as i128).wrapping_add(<$t>::MIN as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for i128 {
    #[inline]
    fn to_ordered(self) -> u128 {
        (self as u128).wrapping_add(1u128 << 127)
    }
    #[inline]
    fn from_ordered(v: u128) -> Self {
        v.wrapping_sub(1u128 << 127) as i128
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start.to_ordered(), self.end.to_ordered());
        assert!(start < end, "cannot sample empty range");
        T::from_ordered(start + uniform_below_u128(rng, end - start))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start().to_ordered(), self.end().to_ordered());
        assert!(start <= end, "cannot sample empty range");
        let span = end.wrapping_sub(start).wrapping_add(1);
        let offset = if span == 0 {
            // The full u128 domain: every draw is in range.
            u128::sample(rng)
        } else {
            uniform_below_u128(rng, span)
        };
        T::from_ordered(start.wrapping_add(offset))
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value over `T`'s whole domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniformly distributed value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        // 53 random mantissa bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Passes BigCrush-level statistical tests and is `Send + Sync`-free
    /// state of four `u64` words; seeding is via SplitMix64 so every
    /// `u64` seed produces a well-mixed state.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let value = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&value[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_samples_bool_and_ints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "bool should be roughly fair");
        let _: u128 = rng.gen();
        let _: i32 = rng.gen();
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn entropy_seeds_differ() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        // Overwhelmingly likely to differ thanks to the process counter.
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }
}
