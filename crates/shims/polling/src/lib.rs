//! Offline stand-in for the `polling` crate.
//!
//! Provides a [`Poller`] with the subset of the real crate's surface the
//! workspace needs: register file descriptors with a `usize` key and a
//! read/write interest, block in [`Poller::wait`] until readiness, a timer
//! expires, or another thread calls [`Poller::notify`].
//!
//! On Linux this is a thin wrapper over raw `epoll` + `eventfd` syscalls
//! declared via `extern "C"` (std already links libc, so no new dependency
//! is introduced). This crate is the workspace's only `unsafe` surface for
//! readiness polling; everything above it stays `#![forbid(unsafe_code)]`.
//!
//! On non-Linux platforms the fallback [`Poller`] supports only
//! [`Poller::notify`]/[`Poller::wait`] (a condvar park) — enough for
//! in-process transports; registering a descriptor reports
//! [`std::io::ErrorKind::Unsupported`].

#![cfg_attr(not(target_os = "linux"), forbid(unsafe_code))]

/// The file-descriptor type accepted by [`Poller::add`] and friends.
#[cfg(unix)]
pub type Fd = std::os::unix::io::RawFd;
/// The file-descriptor type accepted by [`Poller::add`] and friends.
#[cfg(not(unix))]
pub type Fd = i32;

/// One readiness event: which registration (by key) and which directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the descriptor was registered under.
    pub key: usize,
    /// Readable (or in an error/hang-up state that a read will surface).
    pub readable: bool,
    /// Writable (or in an error/hang-up state that a write will surface).
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    /// Internal key reserved for the eventfd waker; never surfaced.
    const WAKER_KEY: u64 = u64::MAX;

    // x86_64 is the one Linux ABI where epoll_event is packed.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn owned(raw: i32) -> io::Result<OwnedFd> {
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the syscall just returned this descriptor; nothing else
        // owns it yet.
        Ok(unsafe { OwnedFd::from_raw_fd(raw) })
    }

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Readiness poller over `epoll`, with an `eventfd` waker built in.
    pub struct Poller {
        epfd: OwnedFd,
        waker: OwnedFd,
    }

    impl Poller {
        /// Creates the epoll instance and its waker.
        ///
        /// # Errors
        /// The raw OS error when either descriptor cannot be created.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscalls with no pointer arguments.
            let epfd = owned(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let waker = owned(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            let poller = Poller { epfd, waker };
            poller.ctl(EPOLL_CTL_ADD, poller.waker.as_raw_fd(), EPOLLIN, WAKER_KEY)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, key: u64) -> io::Result<()> {
            let mut event = EpollEvent { events, data: key };
            // SAFETY: `event` outlives the call; the epoll fd is owned.
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` under `interest.key` (level-triggered).
        ///
        /// # Errors
        /// The raw OS error (e.g. `EEXIST` for a double registration).
        pub fn add(&self, fd: super::Fd, interest: Event) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                interest_bits(interest),
                interest.key as u64,
            )
        }

        /// Replaces the interest set of an already registered `fd`.
        ///
        /// # Errors
        /// The raw OS error (e.g. `ENOENT` for an unregistered fd).
        pub fn modify(&self, fd: super::Fd, interest: Event) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                interest_bits(interest),
                interest.key as u64,
            )
        }

        /// Removes `fd` from the interest set.
        ///
        /// # Errors
        /// The raw OS error; callers tearing a connection down usually
        /// ignore it (the fd's close removes it anyway).
        pub fn delete(&self, fd: super::Fd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Interrupts a concurrent (or the next) [`Poller::wait`].
        pub fn notify(&self) {
            let one = 1u64.to_ne_bytes();
            // SAFETY: valid buffer; with EFD_NONBLOCK a saturated counter
            // returns EAGAIN, which still leaves the waker readable.
            let _ = unsafe { write(self.waker.as_raw_fd(), one.as_ptr(), one.len()) };
        }

        /// Blocks until readiness, a notify, or `timeout` (`None` = forever);
        /// appends events to `out` (cleared first) and returns the count.
        /// Waker wake-ups produce no event — an empty result after a wait
        /// means "something changed elsewhere; re-check your own state".
        ///
        /// # Errors
        /// The raw OS error from `epoll_wait` (EINTR is retried internally
        /// by returning an empty set).
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            out.clear();
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => {
                    let ms = d.as_millis();
                    // Round sub-millisecond timeouts up so a 500 µs timer
                    // does not busy-spin through epoll_wait(0).
                    let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                    i32::try_from(ms).unwrap_or(i32::MAX)
                }
            };
            // SAFETY: `events` outlives the call and maxevents matches it.
            let n = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for event in &events[..n as usize] {
                let key = event.data;
                if key == WAKER_KEY {
                    let mut buf = [0u8; 8];
                    // SAFETY: valid buffer; drains the eventfd counter.
                    let _ = unsafe { read(self.waker.as_raw_fd(), buf.as_mut_ptr(), buf.len()) };
                    continue;
                }
                let bits = event.events;
                out.push(Event {
                    key: key as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(out.len())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::Event;
    use std::io;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// Wake-only fallback poller: [`Poller::notify`] and [`Poller::wait`]
    /// work (a condvar park), descriptor registration is unsupported.
    pub struct Poller {
        notified: Mutex<bool>,
        cv: Condvar,
    }

    impl Poller {
        /// Creates the fallback poller (infallible; `Result` for parity).
        ///
        /// # Errors
        /// None on this platform.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                notified: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        /// Unsupported on this platform.
        ///
        /// # Errors
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn add(&self, _fd: super::Fd, _interest: Event) -> io::Result<()> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "socket polling requires epoll (Linux)",
            ))
        }

        /// Unsupported on this platform.
        ///
        /// # Errors
        /// Always [`io::ErrorKind::Unsupported`].
        pub fn modify(&self, _fd: super::Fd, _interest: Event) -> io::Result<()> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "socket polling requires epoll (Linux)",
            ))
        }

        /// No-op on this platform.
        ///
        /// # Errors
        /// None on this platform.
        pub fn delete(&self, _fd: super::Fd) -> io::Result<()> {
            Ok(())
        }

        /// Interrupts a concurrent (or the next) [`Poller::wait`].
        pub fn notify(&self) {
            *self.notified.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cv.notify_all();
        }

        /// Parks until a notify or `timeout`; never yields events.
        ///
        /// # Errors
        /// None on this platform.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            out.clear();
            let mut notified = self.notified.lock().unwrap_or_else(|e| e.into_inner());
            if !*notified {
                notified = match timeout {
                    Some(d) => {
                        self.cv
                            .wait_timeout(notified, d)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                    None => self.cv.wait(notified).unwrap_or_else(|e| e.into_inner()),
                };
            }
            *notified = false;
            Ok(0)
        }
    }
}

pub use sys::Poller;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn notify_interrupts_wait_without_an_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn timeout_expires_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn tcp_readability_is_reported_with_the_key() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), Event::readable(7)).unwrap();

        client.write_all(b"hello").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable));

        let mut buf = [0u8; 16];
        let mut server_reader = &server;
        let n = server_reader.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_arms_writability() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), Event::readable(3)).unwrap();
        poller.modify(client.as_raw_fd(), Event::all(3)).unwrap();
        let mut events = Vec::new();
        // An idle connected socket is immediately writable.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.writable));
    }
}
