//! Figure 3 shape check: the record-parallel SkNN_b implementation scales
//! with the number of worker threads, at identical results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sknn_bench::{build_instance, time_basic, InstanceSpec};
use std::hint::black_box;

fn bench_parallel_sknnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/parallel_sknnb");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 60;
    for &threads in &[1usize, 2, 4, 6] {
        let instance = build_instance(InstanceSpec {
            threads,
            ..InstanceSpec::new(n, 6, 10, 128)
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, _| bench.iter(|| black_box(time_basic(&instance, 5))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sknnb);
criterion_main!(benches);
