//! Scalar vs slot-packed SM/SBD at packing factors σ ∈ {1, 4, 8, 16}.
//!
//! The packed paths trade C1-side Horner packing work for σ× fewer C2
//! decryptions and σ× fewer request ciphertexts; this bench shows the
//! end-to-end (single-process) effect of that trade per primitive. The
//! `packing_end_to_end` integration test pins the ciphertext/decryption
//! ratios; this file tracks the wall-clock side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_bench::cached_keypair;
use sknn_bigint::BigUint;
use sknn_paillier::{Ciphertext, PublicKey};
use sknn_protocols::{
    packed_bit_decompose, packed_squared_distances, secure_bit_decompose_batch,
    secure_squared_distance, LocalKeyHolder, PackedParams,
};
use std::hint::black_box;
use std::time::Duration;

const KEY_BITS: usize = 512;
/// 6-bit attribute values and κ = 7 keep the 16-slot layout inside a
/// 512-bit plaintext (stride 30 → 480 bits).
const VALUE_BITS: usize = 6;
const BLIND_BITS: usize = 7;
const SIGMAS: [usize; 4] = [1, 4, 8, 16];

fn setup() -> (PublicKey, LocalKeyHolder, StdRng) {
    let (pk, sk) = cached_keypair(KEY_BITS).split();
    let holder = LocalKeyHolder::new(sk, 41);
    (pk, holder, StdRng::seed_from_u64(42))
}

fn encrypt_vec(pk: &PublicKey, values: &[u64], rng: &mut StdRng) -> Vec<Ciphertext> {
    values.iter().map(|&v| pk.encrypt_u64(v, rng)).collect()
}

/// SSED over 16 records of 6 attributes: one scalar baseline, then the
/// packed path at each σ.
fn bench_ssed_packing(c: &mut Criterion) {
    let (pk, holder, mut rng) = setup();
    let mut group = c.benchmark_group("packing/ssed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    let n = 16usize;
    let m = 6usize;
    let query: Vec<u64> = (0..m as u64).map(|j| (j * 13 + 7) % 63).collect();
    let records: Vec<Vec<u64>> = (0..n as u64)
        .map(|i| (0..m as u64).map(|j| (i * 17 + j * 5) % 63).collect())
        .collect();
    let e_query = encrypt_vec(&pk, &query, &mut rng);
    let e_records: Vec<Vec<Ciphertext>> = records
        .iter()
        .map(|r| encrypt_vec(&pk, r, &mut rng))
        .collect();

    group.bench_function("scalar", |bench| {
        bench.iter(|| {
            for record in &e_records {
                black_box(
                    secure_squared_distance(&pk, &holder, &e_query, record, &mut rng).unwrap(),
                );
            }
        })
    });

    for sigma in SIGMAS {
        let params = PackedParams::derive(KEY_BITS, VALUE_BITS, BLIND_BITS, sigma).unwrap();
        assert_eq!(params.slots(), sigma);
        group.bench_with_input(BenchmarkId::new("packed", sigma), &sigma, |bench, _| {
            bench.iter(|| {
                for chunk in e_records.chunks(sigma) {
                    let refs: Vec<&[Ciphertext]> = chunk.iter().map(|r| r.as_slice()).collect();
                    black_box(
                        packed_squared_distances(
                            &pk, &holder, &e_query, &refs, &params, &mut rng, None,
                        )
                        .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

/// SBD of 16 eight-bit values: scalar batch vs packed state at each σ.
fn bench_sbd_packing(c: &mut Criterion) {
    let (pk, holder, mut rng) = setup();
    let mut group = c.benchmark_group("packing/sbd");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    let n = 16usize;
    let l = 8usize;
    let values: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 256).collect();
    let cts = encrypt_vec(&pk, &values, &mut rng);

    group.bench_function("scalar", |bench| {
        bench.iter(|| {
            black_box(secure_bit_decompose_batch(&pk, &holder, &cts, l, &mut rng).unwrap())
        })
    });

    for sigma in SIGMAS {
        // SBD slots only need l + 2 bits of stride; the product-safe layout
        // derived for SSED gives plenty.
        let params = PackedParams::derive(KEY_BITS, VALUE_BITS, BLIND_BITS, sigma).unwrap();
        assert!(params.supports_bit_length(l));
        let mut packed = Vec::new();
        let mut counts = Vec::new();
        for chunk in values.chunks(sigma) {
            let slots: Vec<BigUint> = chunk.iter().map(|&v| BigUint::from_u64(v)).collect();
            packed.push(pk.encrypt(&params.layout.pack_wide(&slots).unwrap(), &mut rng));
            counts.push(chunk.len());
        }
        group.bench_with_input(BenchmarkId::new("packed", sigma), &sigma, |bench, _| {
            bench.iter(|| {
                black_box(
                    packed_bit_decompose(
                        &pk, &holder, &packed, &counts, l, &params, &mut rng, None,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssed_packing, bench_sbd_packing);
criterion_main!(benches);
