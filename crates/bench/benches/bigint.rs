//! Micro-benchmarks of the big-integer substrate, including the
//! Montgomery-vs-plain exponentiation ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_bigint::{gen_prime_with_bit_exact, random_bits_exact, BigUint, Montgomery};
use std::hint::black_box;

fn bench_mul_div(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("bigint/mul_div");
    for bits in [512usize, 1024, 2048] {
        let a = random_bits_exact(&mut rng, bits);
        let b = random_bits_exact(&mut rng, bits);
        group.bench_with_input(BenchmarkId::new("mul", bits), &bits, |bench, _| {
            bench.iter(|| black_box(a.mul_ref(&b)))
        });
        let product = a.mul_ref(&b);
        group.bench_with_input(BenchmarkId::new("div_rem", bits), &bits, |bench, _| {
            bench.iter(|| black_box(product.div_rem(&b)))
        });
    }
    group.finish();
}

fn bench_modexp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("bigint/modexp");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for bits in [512usize, 1024] {
        let mut modulus = random_bits_exact(&mut rng, bits);
        modulus.set_bit(0, true); // odd
        let base = random_bits_exact(&mut rng, bits - 1);
        let exponent = random_bits_exact(&mut rng, bits - 1);
        group.bench_with_input(BenchmarkId::new("montgomery", bits), &bits, |bench, _| {
            bench.iter(|| black_box(base.mod_pow(&exponent, &modulus)))
        });
        // Ablation: plain square-and-multiply with division-based reduction.
        group.bench_with_input(BenchmarkId::new("basic", bits), &bits, |bench, _| {
            bench.iter(|| black_box(base.mod_pow_basic(&exponent, &modulus)))
        });
        let ctx = Montgomery::new(modulus.clone());
        group.bench_with_input(
            BenchmarkId::new("montgomery_reused_ctx", bits),
            &bits,
            |bench, _| bench.iter(|| black_box(ctx.pow(&base, &exponent))),
        );
    }
    group.finish();
}

fn bench_modinv_and_primes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("bigint/number_theory");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let modulus = gen_prime_with_bit_exact(&mut rng, 256, 16);
    let value = random_bits_exact(&mut rng, 255);
    group.bench_function("mod_inverse_256", |bench| {
        bench.iter(|| black_box(value.mod_inverse(&modulus)))
    });
    group.bench_function("gen_prime_128", |bench| {
        let mut rng = StdRng::seed_from_u64(4);
        bench.iter(|| black_box(gen_prime_with_bit_exact(&mut rng, 128, 8)))
    });
    group.bench_function("gcd_512", |bench| {
        let a = random_bits_exact(&mut rng, 512);
        let b = random_bits_exact(&mut rng, 512);
        bench.iter(|| black_box(a.gcd(&b)))
    });
    let _ = BigUint::zero();
    group.finish();
}

criterion_group!(
    benches,
    bench_mul_div,
    bench_modexp,
    bench_modinv_and_primes
);
criterion_main!(benches);
