//! Benchmarks of the six secure sub-protocols (Section 3 of the paper):
//! SM, SSED, SBD, SMIN, SMIN_n and SBOR, plus the batched-vs-individual SM
//! ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_bench::cached_keypair;
use sknn_paillier::{Ciphertext, PublicKey};
use sknn_protocols::{
    secure_bit_decompose, secure_bit_or, secure_min, secure_min_n, secure_multiply,
    secure_multiply_batch, secure_squared_distance, LocalKeyHolder,
};
use std::hint::black_box;

const KEY_BITS: usize = 256;

fn setup() -> (PublicKey, LocalKeyHolder, StdRng) {
    let (pk, sk) = cached_keypair(KEY_BITS).split();
    let holder = LocalKeyHolder::new(sk, 21);
    (pk, holder, StdRng::seed_from_u64(22))
}

fn encrypt_bits(pk: &PublicKey, value: u64, l: usize, rng: &mut StdRng) -> Vec<Ciphertext> {
    (0..l)
        .rev()
        .map(|i| pk.encrypt_u64((value >> i) & 1, rng))
        .collect()
}

fn bench_sm_and_sbor(c: &mut Criterion) {
    let (pk, holder, mut rng) = setup();
    let mut group = c.benchmark_group("primitives/sm_sbor");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let a = pk.encrypt_u64(59, &mut rng);
    let b = pk.encrypt_u64(58, &mut rng);
    group.bench_function("sm_single", |bench| {
        bench.iter(|| black_box(secure_multiply(&pk, &holder, &a, &b, &mut rng)))
    });
    for batch in [8usize, 32] {
        let pairs: Vec<_> = (0..batch).map(|_| (a.clone(), b.clone())).collect();
        group.bench_with_input(BenchmarkId::new("sm_batched", batch), &batch, |bench, _| {
            bench.iter(|| black_box(secure_multiply_batch(&pk, &holder, &pairs, &mut rng)))
        });
    }
    let bit0 = pk.encrypt_u64(0, &mut rng);
    let bit1 = pk.encrypt_u64(1, &mut rng);
    group.bench_function("sbor", |bench| {
        bench.iter(|| black_box(secure_bit_or(&pk, &holder, &bit0, &bit1, &mut rng)))
    });
    group.finish();
}

fn bench_ssed(c: &mut Criterion) {
    let (pk, holder, mut rng) = setup();
    let mut group = c.benchmark_group("primitives/ssed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for m in [6usize, 12, 18] {
        let x: Vec<_> = (0..m as u64)
            .map(|v| pk.encrypt_u64(v * 3, &mut rng))
            .collect();
        let y: Vec<_> = (0..m as u64)
            .map(|v| pk.encrypt_u64(v + 7, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("m", m), &m, |bench, _| {
            bench.iter(|| {
                black_box(secure_squared_distance(&pk, &holder, &x, &y, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_sbd(c: &mut Criterion) {
    let (pk, holder, mut rng) = setup();
    let mut group = c.benchmark_group("primitives/sbd");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for l in [6usize, 12] {
        let z = pk.encrypt_u64(41 % (1 << l), &mut rng);
        group.bench_with_input(BenchmarkId::new("l", l), &l, |bench, _| {
            bench.iter(|| black_box(secure_bit_decompose(&pk, &holder, &z, l, &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_smin(c: &mut Criterion) {
    let (pk, holder, mut rng) = setup();
    let mut group = c.benchmark_group("primitives/smin");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for l in [6usize, 12] {
        let u = encrypt_bits(&pk, 23 % (1 << l), l, &mut rng);
        let v = encrypt_bits(&pk, 19 % (1 << l), l, &mut rng);
        group.bench_with_input(BenchmarkId::new("smin_l", l), &l, |bench, _| {
            bench.iter(|| black_box(secure_min(&pk, &holder, &u, &v, &mut rng).unwrap()))
        });
    }
    for n in [4usize, 8] {
        let l = 6;
        let values: Vec<_> = (0..n as u64)
            .map(|i| encrypt_bits(&pk, (i * 11 + 3) % 64, l, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("smin_n", n), &n, |bench, _| {
            bench.iter(|| black_box(secure_min_n(&pk, &holder, &values, &mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sm_and_sbor,
    bench_ssed,
    bench_sbd,
    bench_smin
);
criterion_main!(benches);
