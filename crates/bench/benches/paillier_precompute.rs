//! Offline/online precomputation ablation: cold (direct) Paillier encryption
//! pays the full `r^N mod N²` exponentiation per call, warm-pool encryption
//! pays one modular multiplication. The `offline/` entries price the work
//! that moved off the query path (per-entry precompute cost).
//!
//! The acceptance bar — warm online encryption ≥ 3× faster than cold on the
//! same key — is asserted by `crates/paillier/tests/pool.rs`; this benchmark
//! reports the actual ratio at realistic key sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_bench::cached_keypair;
use sknn_bigint::BigUint;
use sknn_paillier::{PoolConfig, PooledEncryptor, RandomnessPool};
use std::hint::black_box;

/// A warm encryptor whose pool is large enough that measured draws never
/// fall back to the synchronous path (background refill stays on, topping
/// the pool up between samples).
fn warm_encryptor(key_bits: usize, capacity: usize) -> PooledEncryptor {
    let (pk, _) = cached_keypair(key_bits).split();
    let pool = RandomnessPool::new(
        pk,
        PoolConfig {
            capacity,
            refill_batch: 64,
            background_refill: true,
            seed: Some(0xBE7C),
        },
    );
    pool.prewarm(capacity);
    PooledEncryptor::new(pool)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_precompute");
    group.sample_size(30);
    for key_bits in [256usize, 512] {
        let (pk, _) = cached_keypair(key_bits).split();
        let mut rng = StdRng::seed_from_u64(0xC01D);
        let m = BigUint::from_u64(123_456_789);
        let ct = pk.encrypt(&m, &mut rng);

        group.bench_with_input(
            BenchmarkId::new("cold_encrypt", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(pk.encrypt(&m, &mut rng))),
        );
        group.bench_with_input(
            BenchmarkId::new("cold_rerandomize", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(pk.rerandomize(&ct, &mut rng))),
        );

        let enc = warm_encryptor(key_bits, 4096);
        group.bench_with_input(
            BenchmarkId::new("warm_encrypt", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(enc.encrypt(&m).expect("m < N"))),
        );
        group.bench_with_input(
            BenchmarkId::new("warm_encrypt_zero", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(enc.encrypt_zero())),
        );
        group.bench_with_input(
            BenchmarkId::new("warm_rerandomize", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(enc.rerandomize(&ct))),
        );

        let stats = enc.pool().stats();
        println!(
            "paillier_precompute/pool_stats/{key_bits}          hits: {}, fallbacks: {} \
             (fallbacks > 0 means the refill thread fell behind on this machine)",
            stats.hits, stats.fallbacks
        );
    }
    group.finish();
}

fn bench_offline_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_precompute/offline");
    group.sample_size(20);
    for key_bits in [256usize, 512] {
        let (pk, _) = cached_keypair(key_bits).split();
        // Per-entry offline cost: what each pool entry costs to precompute
        // (sample + one exponentiation under the reused Montgomery context).
        let pool = RandomnessPool::new(
            pk,
            PoolConfig {
                capacity: 1,
                background_refill: false,
                seed: Some(0x0FF1),
                ..Default::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("precompute_entry", key_bits),
            &key_bits,
            |b, _| {
                b.iter(|| {
                    black_box(pool.prewarm(1));
                    black_box(pool.draw());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_offline_cost);
criterion_main!(benches);
