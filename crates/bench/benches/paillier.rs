//! Micro-benchmarks of the Paillier layer, including the CRT-vs-direct
//! decryption ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_bench::cached_keypair;
use sknn_bigint::BigUint;
use std::hint::black_box;

fn bench_encrypt_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier/encrypt_decrypt");
    group.sample_size(20);
    for key_bits in [256usize, 512] {
        let (pk, sk) = cached_keypair(key_bits).split();
        let mut rng = StdRng::seed_from_u64(11);
        let m = BigUint::from_u64(123_456_789);
        group.bench_with_input(BenchmarkId::new("encrypt", key_bits), &key_bits, |b, _| {
            b.iter(|| black_box(pk.encrypt(&m, &mut rng)))
        });
        let c1 = pk.encrypt(&m, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("decrypt_crt", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(sk.decrypt(&c1))),
        );
        group.bench_with_input(
            BenchmarkId::new("decrypt_direct", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(sk.decrypt_direct(&c1))),
        );
    }
    group.finish();
}

fn bench_homomorphic_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier/homomorphic");
    let (pk, _sk) = cached_keypair(512).split();
    let mut rng = StdRng::seed_from_u64(12);
    let a = pk.encrypt_u64(1234, &mut rng);
    let b = pk.encrypt_u64(5678, &mut rng);
    group.bench_function("add", |bench| bench.iter(|| black_box(pk.add(&a, &b))));
    group.bench_function("mul_plain_small", |bench| {
        bench.iter(|| black_box(pk.mul_plain_u64(&a, 42)))
    });
    group.bench_function("negate_full_exponent", |bench| {
        bench.iter(|| black_box(pk.negate(&a)))
    });
    group.bench_function("rerandomize", |bench| {
        bench.iter(|| black_box(pk.rerandomize(&a, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_encrypt_decrypt, bench_homomorphic_ops);
criterion_main!(benches);
