//! Figure 2(c) shape check: SkNN_b time is essentially independent of `k`
//! because its cost is dominated by the SSED pass over all records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sknn_bench::{build_instance, time_basic, InstanceSpec};
use std::hint::black_box;

fn bench_sknnb_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2c/sknnb_vs_k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let instance = build_instance(InstanceSpec::new(30, 6, 10, 128));
    for &k in &[1usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| black_box(time_basic(&instance, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sknnb_vs_k);
criterion_main!(benches);
