//! Transport comparison: serial vs parallel SkNN_b over the in-process,
//! channel, and TCP transports, with round-trip accounting.
//!
//! Two claims are exercised:
//!
//! 1. With the pipelined session client, the record-parallel SkNN_b run
//!    (6 threads, as in the paper's Figure 3) speeds up over *remote*
//!    transports too, not only against the in-process key holder.
//! 2. Request coalescing cuts the number of C1↔C2 round trips — the
//!    dominant communication cost — at identical results; the round-trip
//!    counts per query are printed next to the timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sknn_bench::{build_instance, time_basic, Instance, InstanceSpec};
use sknn_core::TransportKind;
use std::hint::black_box;

const RECORDS: usize = 40;
const ATTRIBUTES: usize = 6;
const DISTANCE_BITS: usize = 10;
const KEY_BITS: usize = 128;
const K: usize = 5;

fn spec(transport: TransportKind, threads: usize, coalesce: bool) -> InstanceSpec {
    InstanceSpec {
        threads,
        transport,
        coalesce,
        ..InstanceSpec::new(RECORDS, ATTRIBUTES, DISTANCE_BITS, KEY_BITS)
    }
}

/// One measured query's round trips and bytes, from the federation's
/// cumulative counters.
fn query_comm(instance: &Instance) -> Option<(u64, u64)> {
    let before = instance.federation.comm_stats()?;
    let _ = time_basic(instance, K);
    let after = instance.federation.comm_stats()?;
    let delta = after.since(&before);
    Some((delta.requests, delta.total_bytes()))
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport/sknnb");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, transport) in [
        ("local", TransportKind::InProcess),
        ("channel", TransportKind::Channel),
        ("tcp", TransportKind::Tcp),
    ] {
        for threads in [1usize, 6] {
            let instance = build_instance(spec(transport, threads, true));
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |bench, _| {
                bench.iter(|| black_box(time_basic(&instance, K)))
            });
            if let Some((round_trips, bytes)) = query_comm(&instance) {
                println!(
                    "    {label}/{threads}: {round_trips} round trips, {bytes} bytes per query"
                );
            }
        }
    }
    group.finish();
}

fn bench_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport/coalescing");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let mut round_trips = Vec::new();
    for (label, coalesce) in [("off", false), ("on", true)] {
        let instance = build_instance(spec(TransportKind::Channel, 6, coalesce));
        group.bench_with_input(BenchmarkId::from_parameter(label), &coalesce, |bench, _| {
            bench.iter(|| black_box(time_basic(&instance, K)))
        });
        if let Some((trips, bytes)) = query_comm(&instance) {
            println!("    coalescing {label}: {trips} round trips, {bytes} bytes per query");
            round_trips.push(trips);
        }
    }
    if let [off, on] = round_trips[..] {
        println!(
            "    coalescing saves {} of {} round trips per query",
            off.saturating_sub(on),
            off
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transports, bench_coalescing);
criterion_main!(benches);
