//! Figure 2(d)/(e) shape check: SkNN_m time grows roughly linearly with `k`
//! (one SMIN_n tournament plus one freeze pass per returned neighbor) and
//! with the distance-domain bit length `l`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sknn_bench::{build_instance, time_secure, InstanceSpec};
use std::hint::black_box;

fn bench_sknnm_vs_k_and_l(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2d/sknnm_vs_k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &l in &[6usize, 12] {
        let instance = build_instance(InstanceSpec::new(10, 6, l, 128));
        for &k in &[1usize, 2, 4] {
            group.bench_with_input(BenchmarkId::new(format!("l{l}"), k), &k, |bench, _| {
                bench.iter(|| black_box(time_secure(&instance, k, l)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sknnm_vs_k_and_l);
criterion_main!(benches);
