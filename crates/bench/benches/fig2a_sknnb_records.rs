//! Figure 2(a)/(b) shape check: SkNN_b time grows linearly with the number of
//! records `n` and with the number of attributes `m`, and is dominated by
//! SSED. Run at Criterion scale (small n, 128-bit key); the full sweep lives
//! in the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sknn_bench::{build_instance, time_basic, InstanceSpec};
use std::hint::black_box;

fn bench_sknnb_vs_records(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a/sknnb_vs_n");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &m in &[6usize, 12] {
        for &n in &[10usize, 20, 40] {
            let instance = build_instance(InstanceSpec::new(n, m, 10, 128));
            group.bench_with_input(BenchmarkId::new(format!("m{m}"), n), &n, |bench, _| {
                bench.iter(|| black_box(time_basic(&instance, 5.min(n))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sknnb_vs_records);
criterion_main!(benches);
