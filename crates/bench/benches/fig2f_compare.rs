//! Figure 2(f) shape check: for the same query, the fully secure SkNN_m costs
//! one to two orders of magnitude more than SkNN_b, and the gap widens with k
//! while SkNN_b stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sknn_bench::{build_instance, time_basic, time_secure, InstanceSpec};
use std::hint::black_box;

fn bench_protocol_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2f/basic_vs_secure");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let l = 6;
    let instance = build_instance(InstanceSpec::new(10, 6, l, 128));
    for &k in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("basic", k), &k, |bench, _| {
            bench.iter(|| black_box(time_basic(&instance, k)))
        });
        group.bench_with_input(BenchmarkId::new("secure", k), &k, |bench, _| {
            bench.iter(|| black_box(time_secure(&instance, k, l)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_comparison);
criterion_main!(benches);
