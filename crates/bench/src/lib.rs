//! Shared harness code for the Criterion benchmarks and the `experiments`
//! binary that regenerates the figures of the paper's evaluation (Section 5).
//!
//! The paper's absolute numbers come from a C + GMP implementation running for
//! minutes to hours per data point; reproducing the *shape* of every figure
//! does not require that scale, so the harness supports three presets
//! ([`Scale`]): `smoke` for CI, `paper-shape` (default) for down-scaled sweeps
//! that preserve every reported trend, and `paper` for the exact parameters of
//! the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_core::{DataOwner, Federation, FederationConfig, Keypair, TransportKind};
use sknn_data::{uniform_query, SyntheticDataset};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Experiment scale preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity runs (used by `cargo bench` and CI).
    Smoke,
    /// Down-scaled sweeps that preserve the paper's trends (default).
    PaperShape,
    /// The exact parameters of the paper (hours of compute).
    Paper,
}

impl Scale {
    /// Parses `smoke` / `paper-shape` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "paper-shape" | "papershape" | "shape" => Some(Scale::PaperShape),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Record-count sweep for the SkNN_b figures (2(a), 2(b), 3).
    pub fn record_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![20, 40],
            Scale::PaperShape => vec![100, 200, 300, 400, 500],
            Scale::Paper => vec![2000, 4000, 6000, 8000, 10000],
        }
    }

    /// Attribute-count sweep for Figures 2(a)–(b).
    pub fn attribute_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![6],
            _ => vec![6, 12, 18],
        }
    }

    /// Neighbor-count sweep for Figures 2(c)–(f).
    pub fn k_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![1, 2],
            _ => vec![5, 10, 15, 20, 25],
        }
    }

    /// Key sizes standing in for the paper's (512, 1024) pair.
    pub fn key_sizes(&self) -> (usize, usize) {
        match self {
            Scale::Smoke => (128, 256),
            Scale::PaperShape => (256, 512),
            Scale::Paper => (512, 1024),
        }
    }

    /// Number of records used in the k-sweeps of SkNN_b (Figure 2(c)).
    pub fn basic_k_sweep_records(&self) -> usize {
        match self {
            Scale::Smoke => 30,
            Scale::PaperShape => 200,
            Scale::Paper => 2000,
        }
    }

    /// Number of records used in the SkNN_m figures (2(d)–(f)).
    pub fn secure_records(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::PaperShape => 50,
            Scale::Paper => 2000,
        }
    }

    /// Distance-domain sweep for Figures 2(d)–(e).
    pub fn distance_bit_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![6],
            _ => vec![6, 12],
        }
    }
}

/// One prepared benchmark instance: an outsourced synthetic dataset and a
/// query drawn from the same domain.
pub struct Instance {
    /// The ready-to-query federation (clouds already hold the data/keys).
    pub federation: Federation,
    /// The plaintext query used against it.
    pub query: Vec<u64>,
    /// The number of records outsourced.
    pub records: usize,
    /// The number of attributes per record.
    pub attributes: usize,
    /// The distance-domain bit length used for secure queries.
    pub distance_bits: usize,
    /// The Paillier key size in bits.
    pub key_bits: usize,
}

/// Parameters describing an instance to prepare.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InstanceSpec {
    /// Number of records (`n`).
    pub records: usize,
    /// Number of attributes (`m`).
    pub attributes: usize,
    /// Distance-domain bits (`l`).
    pub distance_bits: usize,
    /// Paillier key size (`K`).
    pub key_bits: usize,
    /// Worker threads for the record-parallel stages.
    pub threads: usize,
    /// Transport between the clouds.
    pub transport: TransportKind,
    /// Whether the remote transports coalesce concurrent small batches.
    pub coalesce: bool,
}

impl InstanceSpec {
    /// A serial, in-process instance spec.
    pub fn new(records: usize, attributes: usize, distance_bits: usize, key_bits: usize) -> Self {
        InstanceSpec {
            records,
            attributes,
            distance_bits,
            key_bits,
            threads: 1,
            transport: TransportKind::InProcess,
            coalesce: true,
        }
    }
}

/// Deterministic seed used everywhere so experiment output is reproducible.
pub const HARNESS_SEED: u64 = 0x5EED_2014;

fn keypair_cache() -> &'static Mutex<HashMap<usize, Keypair>> {
    static CACHE: std::sync::OnceLock<Mutex<HashMap<usize, Keypair>>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns a cached key pair of the requested size (key generation is
/// expensive and irrelevant to the query-time figures being reproduced).
pub fn cached_keypair(key_bits: usize) -> Keypair {
    let mut cache = keypair_cache().lock().expect("keypair cache poisoned");
    cache
        .entry(key_bits)
        .or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ key_bits as u64);
            Keypair::generate(key_bits, &mut rng)
        })
        .clone()
}

/// Builds a ready-to-query instance for the given spec.
pub fn build_instance(spec: InstanceSpec) -> Instance {
    let mut rng = StdRng::seed_from_u64(
        HARNESS_SEED
            .wrapping_mul(31)
            .wrapping_add(spec.records as u64)
            .wrapping_add((spec.attributes as u64) << 20)
            .wrapping_add((spec.distance_bits as u64) << 40),
    );
    let dataset =
        SyntheticDataset::uniform(spec.records, spec.attributes, spec.distance_bits, &mut rng);
    let query = uniform_query(spec.attributes, dataset.max_value, &mut rng);
    let owner = DataOwner::from_keypair(cached_keypair(spec.key_bits));
    let federation = Federation::setup_with_owner(
        owner,
        &dataset.table,
        FederationConfig {
            key_bits: spec.key_bits,
            distance_bits: Some(spec.distance_bits),
            max_query_value: dataset.max_value,
            threads: spec.threads,
            transport: spec.transport,
            coalesce: spec.coalesce,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("benchmark instance setup");
    Instance {
        federation,
        query,
        records: spec.records,
        attributes: spec.attributes,
        distance_bits: spec.distance_bits,
        key_bits: spec.key_bits,
    }
}

/// Runs one SkNN_b query on the instance, returning the full result (the
/// profile carries per-stage wall time and ciphertext/decryption counts).
pub fn run_basic(instance: &Instance, k: usize) -> (Duration, sknn_core::QueryResult) {
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0xB);
    let start = Instant::now();
    let result = instance
        .federation
        .query_basic(&instance.query, k, &mut rng)
        .expect("basic query");
    (start.elapsed(), result)
}

/// Runs one SkNN_m query on the instance with an explicit `l` (the
/// engine builder's `distance_bits` knob, sweeping `l` as in Figures
/// 2(d)–(e)).
pub fn run_secure(instance: &Instance, k: usize, l: usize) -> (Duration, sknn_core::QueryResult) {
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0x5);
    let start = Instant::now();
    let result = instance
        .federation
        .engine()
        .query(Federation::DATASET)
        .k(k)
        .point(&instance.query)
        .protocol(sknn_core::Protocol::Secure)
        .distance_bits(l)
        .run(&mut rng)
        .map(sknn_core::QueryResult::from)
        .expect("secure query");
    (start.elapsed(), result)
}

/// Times one SkNN_b query on the instance.
pub fn time_basic(instance: &Instance, k: usize) -> Duration {
    run_basic(instance, k).0
}

/// Times one SkNN_m query on the instance with an explicit `l`.
pub fn time_secure(instance: &Instance, k: usize, l: usize) -> Duration {
    run_secure(instance, k, l).0
}

/// Formats a duration as fractional seconds for the experiment tables.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

pub mod report {
    //! Machine-readable experiment output (`BENCH_results.json`).
    //!
    //! The experiments binary has always printed human-readable tables;
    //! this module additionally collects every measured point — per-stage
    //! wall time, ciphertexts on the wire, and C2 decryption counts — into
    //! a JSON document, so the perf trajectory can be tracked across PRs
    //! by diffing/plotting a single artifact. The writer is hand-rolled
    //! (the build environment has no serde); the format is flat and
    //! stable: one `entries` array of `{experiment, params, total_s,
    //! stages[]}` objects.

    use sknn_core::{QueryResult, Stage};
    use std::io::Write;
    use std::time::Duration;

    /// One measured stage of one experiment point.
    #[derive(Clone, Debug)]
    pub struct StageRow {
        /// Stage label (`SSED`, `SBD`, …).
        pub stage: &'static str,
        /// Wall-clock seconds spent in the stage.
        pub seconds: f64,
        /// Ciphertexts C1 sent to C2 during the stage.
        pub ciphertexts_to_c2: u64,
        /// Ciphertexts C2 sent back during the stage.
        pub ciphertexts_from_c2: u64,
        /// Paillier decryptions C2 performed during the stage.
        pub c2_decryptions: u64,
    }

    /// Per-shard attribution of one stage's operation counters (populated
    /// by sharded scatter–gather plans; empty otherwise).
    #[derive(Clone, Debug)]
    pub struct ShardStageRow {
        /// Shard id.
        pub shard: usize,
        /// Stage label (`SSED`, `shard top-k`, …).
        pub stage: &'static str,
        /// Ciphertexts C1 sent to C2 on this shard's behalf.
        pub ciphertexts_to_c2: u64,
        /// Ciphertexts C2 sent back on this shard's behalf.
        pub ciphertexts_from_c2: u64,
        /// Paillier decryptions C2 performed on this shard's behalf.
        pub c2_decryptions: u64,
    }

    /// One measured point: an experiment name, its parameters, the total
    /// wall time, and the per-stage breakdown (empty for duration-only
    /// measurements like Bob's encryption cost).
    #[derive(Clone, Debug)]
    pub struct Entry {
        /// Which experiment produced the point (`fig2a`, `breakdown`, …).
        pub experiment: String,
        /// `(name, value)` parameter pairs (`n`, `m`, `k`, `K`, …).
        pub params: Vec<(String, String)>,
        /// End-to-end wall time in seconds.
        pub total_seconds: f64,
        /// Per-stage breakdown, in execution order.
        pub stages: Vec<StageRow>,
        /// Per-shard stage attribution (sharded plans only).
        pub shard_stages: Vec<ShardStageRow>,
    }

    /// Collects experiment points and serializes them to JSON.
    #[derive(Clone, Debug, Default)]
    pub struct BenchReport {
        /// The scale preset the run used.
        pub scale: String,
        entries: Vec<Entry>,
    }

    impl BenchReport {
        /// Creates an empty report for one harness run.
        pub fn new(scale: impl Into<String>) -> BenchReport {
            BenchReport {
                scale: scale.into(),
                entries: Vec::new(),
            }
        }

        /// Number of collected points.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// Whether no point has been collected yet.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Records a full query result: total time plus the per-stage wall
        /// time / ciphertext / decryption breakdown from its profile.
        pub fn push_query(
            &mut self,
            experiment: &str,
            params: &[(&str, String)],
            elapsed: Duration,
            result: &QueryResult,
        ) {
            let stages = Stage::ALL
                .iter()
                .filter(|s| {
                    result.profile.stage(**s) > Duration::ZERO
                        || result.profile.ops(**s).ciphertexts_on_wire() > 0
                })
                .map(|s| {
                    let ops = result.profile.ops(*s);
                    StageRow {
                        stage: s.label(),
                        seconds: result.profile.stage(*s).as_secs_f64(),
                        ciphertexts_to_c2: ops.ciphertexts_to_c2,
                        ciphertexts_from_c2: ops.ciphertexts_from_c2,
                        c2_decryptions: ops.c2_decryptions,
                    }
                })
                .collect();
            let shard_stages = result
                .profile
                .shards()
                .into_iter()
                .flat_map(|shard| {
                    Stage::ALL
                        .iter()
                        .map(move |s| (shard, *s, result.profile.shard_stage_ops(shard, *s)))
                })
                .filter(|(_, _, ops)| ops.ciphertexts_on_wire() > 0 || ops.c2_decryptions > 0)
                .map(|(shard, s, ops)| ShardStageRow {
                    shard,
                    stage: s.label(),
                    ciphertexts_to_c2: ops.ciphertexts_to_c2,
                    ciphertexts_from_c2: ops.ciphertexts_from_c2,
                    c2_decryptions: ops.c2_decryptions,
                })
                .collect();
            self.entries.push(Entry {
                experiment: experiment.to_string(),
                params: params
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                total_seconds: elapsed.as_secs_f64(),
                stages,
                shard_stages,
            });
        }

        /// Records a duration-only point (no query profile available).
        pub fn push_duration(
            &mut self,
            experiment: &str,
            params: &[(&str, String)],
            elapsed: Duration,
        ) {
            self.entries.push(Entry {
                experiment: experiment.to_string(),
                params: params
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                total_seconds: elapsed.as_secs_f64(),
                stages: Vec::new(),
                shard_stages: Vec::new(),
            });
        }

        /// Serializes the report as a JSON document.
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\n");
            out.push_str("  \"generator\": \"sknn-bench experiments\",\n");
            out.push_str(&format!("  \"scale\": {},\n", json_string(&self.scale)));
            out.push_str("  \"entries\": [\n");
            for (i, e) in self.entries.iter().enumerate() {
                out.push_str("    {");
                out.push_str(&format!("\"experiment\": {}, ", json_string(&e.experiment)));
                out.push_str("\"params\": {");
                for (j, (k, v)) in e.params.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
                }
                out.push_str("}, ");
                out.push_str(&format!("\"total_s\": {:.6}, ", e.total_seconds));
                out.push_str("\"stages\": [");
                for (j, s) in e.stages.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"stage\": {}, \"seconds\": {:.6}, \"ciphertexts_to_c2\": {}, \
                         \"ciphertexts_from_c2\": {}, \"c2_decryptions\": {}}}",
                        json_string(s.stage),
                        s.seconds,
                        s.ciphertexts_to_c2,
                        s.ciphertexts_from_c2,
                        s.c2_decryptions
                    ));
                }
                out.push(']');
                if !e.shard_stages.is_empty() {
                    out.push_str(", \"shard_stages\": [");
                    for (j, s) in e.shard_stages.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!(
                            "{{\"shard\": {}, \"stage\": {}, \"ciphertexts_to_c2\": {}, \
                             \"ciphertexts_from_c2\": {}, \"c2_decryptions\": {}}}",
                            s.shard,
                            json_string(s.stage),
                            s.ciphertexts_to_c2,
                            s.ciphertexts_from_c2,
                            s.c2_decryptions
                        ));
                    }
                    out.push(']');
                }
                out.push('}');
                out.push_str(if i + 1 < self.entries.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ]\n}\n");
            out
        }

        /// Writes the JSON document to `path`.
        ///
        /// # Errors
        /// Propagates filesystem errors.
        pub fn write(&self, path: &str) -> std::io::Result<()> {
            let mut file = std::fs::File::create(path)?;
            file.write_all(self.to_json().as_bytes())
        }
    }

    /// Minimal JSON string escaping (quotes, backslashes, control chars) —
    /// sufficient for the identifiers and numbers this report contains.
    fn json_string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn report_serializes_and_escapes() {
            let mut report = BenchReport::new("smoke");
            assert!(report.is_empty());
            report.push_duration(
                "bob-cost",
                &[("K", "256".to_string()), ("note", "a\"b".to_string())],
                Duration::from_millis(1500),
            );
            assert_eq!(report.len(), 1);
            let json = report.to_json();
            assert!(json.contains("\"scale\": \"smoke\""));
            assert!(json.contains("\"experiment\": \"bob-cost\""));
            assert!(json.contains("\"total_s\": 1.500000"));
            assert!(json.contains("a\\\"b"));
            assert!(json.contains("\"stages\": []"));
        }

        #[test]
        fn query_entries_carry_stage_counters() {
            let spec = crate::InstanceSpec::new(8, 2, 8, 128);
            let instance = crate::build_instance(spec);
            let (elapsed, result) = crate::run_basic(&instance, 2);
            let mut report = BenchReport::new("smoke");
            report.push_query("fig2a", &[("n", "8".into())], elapsed, &result);
            let json = report.to_json();
            assert!(json.contains("\"stage\": \"SSED\""));
            assert!(json.contains("\"c2_decryptions\""));
            // SSED of 8 records × 2 attributes: 32 decryptions scalar.
            assert!(json.contains("\"c2_decryptions\": 32"));
            // An unsharded query has no per-shard attribution to report.
            assert!(!json.contains("shard_stages"));
        }

        #[test]
        fn sharded_query_entries_carry_per_shard_counters() {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            use sknn_core::{
                DataOwner, FederationConfig, Protocol, QueryResult, ShardingConfig, SknnEngine,
                Table,
            };

            let mut rng = StdRng::seed_from_u64(42);
            let owner = DataOwner::from_keypair(crate::cached_keypair(128));
            let mut engine = SknnEngine::setup_with_owner(
                owner,
                FederationConfig {
                    key_bits: 128,
                    max_query_value: 9,
                    sharding: ShardingConfig {
                        shards: 2,
                        sessions: 1,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            let table = Table::new(vec![vec![1, 1], vec![5, 5], vec![9, 9], vec![2, 3]]).unwrap();
            engine.register_dataset("d", &table, &mut rng).unwrap();
            let outcome = engine
                .query("d")
                .k(1)
                .point(&[2, 2])
                .protocol(Protocol::Basic)
                .run(&mut rng)
                .unwrap();
            let mut report = BenchReport::new("smoke");
            report.push_query(
                "shard-scaling",
                &[("shards", "2".into())],
                Duration::from_millis(1),
                &QueryResult::from(outcome),
            );
            let json = report.to_json();
            assert!(json.contains("\"shard_stages\": ["));
            assert!(json.contains("\"shard\": 0"));
            assert!(json.contains("\"shard\": 1"));
            assert!(json.contains("\"stage\": \"shard top-k\""));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("paper-shape"), Some(Scale::PaperShape));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn sweeps_grow_with_scale() {
        assert!(Scale::Smoke.record_sweep().len() <= Scale::Paper.record_sweep().len());
        assert_eq!(Scale::Paper.record_sweep().last(), Some(&10000));
        assert_eq!(Scale::Paper.key_sizes(), (512, 1024));
        assert_eq!(Scale::PaperShape.k_sweep(), vec![5, 10, 15, 20, 25]);
    }

    #[test]
    fn instances_are_buildable_and_queryable_at_smoke_scale() {
        let spec = InstanceSpec::new(12, 3, 8, 128);
        let instance = build_instance(spec);
        assert_eq!(instance.records, 12);
        let basic = time_basic(&instance, 2);
        let secure = time_secure(&instance, 2, 8);
        assert!(basic > Duration::ZERO);
        assert!(
            secure > basic,
            "the secure protocol costs more than the basic one"
        );
    }

    #[test]
    fn cached_keypairs_are_reused() {
        let a = cached_keypair(128);
        let b = cached_keypair(128);
        assert_eq!(a.public_key(), b.public_key());
    }
}
