//! Shared harness code for the Criterion benchmarks and the `experiments`
//! binary that regenerates the figures of the paper's evaluation (Section 5).
//!
//! The paper's absolute numbers come from a C + GMP implementation running for
//! minutes to hours per data point; reproducing the *shape* of every figure
//! does not require that scale, so the harness supports three presets
//! ([`Scale`]): `smoke` for CI, `paper-shape` (default) for down-scaled sweeps
//! that preserve every reported trend, and `paper` for the exact parameters of
//! the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_core::{DataOwner, Federation, FederationConfig, Keypair, TransportKind};
use sknn_data::{uniform_query, SyntheticDataset};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Experiment scale preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity runs (used by `cargo bench` and CI).
    Smoke,
    /// Down-scaled sweeps that preserve the paper's trends (default).
    PaperShape,
    /// The exact parameters of the paper (hours of compute).
    Paper,
}

impl Scale {
    /// Parses `smoke` / `paper-shape` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "paper-shape" | "papershape" | "shape" => Some(Scale::PaperShape),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Record-count sweep for the SkNN_b figures (2(a), 2(b), 3).
    pub fn record_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![20, 40],
            Scale::PaperShape => vec![100, 200, 300, 400, 500],
            Scale::Paper => vec![2000, 4000, 6000, 8000, 10000],
        }
    }

    /// Attribute-count sweep for Figures 2(a)–(b).
    pub fn attribute_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![6],
            _ => vec![6, 12, 18],
        }
    }

    /// Neighbor-count sweep for Figures 2(c)–(f).
    pub fn k_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![1, 2],
            _ => vec![5, 10, 15, 20, 25],
        }
    }

    /// Key sizes standing in for the paper's (512, 1024) pair.
    pub fn key_sizes(&self) -> (usize, usize) {
        match self {
            Scale::Smoke => (128, 256),
            Scale::PaperShape => (256, 512),
            Scale::Paper => (512, 1024),
        }
    }

    /// Number of records used in the k-sweeps of SkNN_b (Figure 2(c)).
    pub fn basic_k_sweep_records(&self) -> usize {
        match self {
            Scale::Smoke => 30,
            Scale::PaperShape => 200,
            Scale::Paper => 2000,
        }
    }

    /// Number of records used in the SkNN_m figures (2(d)–(f)).
    pub fn secure_records(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::PaperShape => 50,
            Scale::Paper => 2000,
        }
    }

    /// Distance-domain sweep for Figures 2(d)–(e).
    pub fn distance_bit_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![6],
            _ => vec![6, 12],
        }
    }
}

/// One prepared benchmark instance: an outsourced synthetic dataset and a
/// query drawn from the same domain.
pub struct Instance {
    /// The ready-to-query federation (clouds already hold the data/keys).
    pub federation: Federation,
    /// The plaintext query used against it.
    pub query: Vec<u64>,
    /// The number of records outsourced.
    pub records: usize,
    /// The number of attributes per record.
    pub attributes: usize,
    /// The distance-domain bit length used for secure queries.
    pub distance_bits: usize,
    /// The Paillier key size in bits.
    pub key_bits: usize,
}

/// Parameters describing an instance to prepare.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InstanceSpec {
    /// Number of records (`n`).
    pub records: usize,
    /// Number of attributes (`m`).
    pub attributes: usize,
    /// Distance-domain bits (`l`).
    pub distance_bits: usize,
    /// Paillier key size (`K`).
    pub key_bits: usize,
    /// Worker threads for the record-parallel stages.
    pub threads: usize,
    /// Transport between the clouds.
    pub transport: TransportKind,
    /// Whether the remote transports coalesce concurrent small batches.
    pub coalesce: bool,
}

impl InstanceSpec {
    /// A serial, in-process instance spec.
    pub fn new(records: usize, attributes: usize, distance_bits: usize, key_bits: usize) -> Self {
        InstanceSpec {
            records,
            attributes,
            distance_bits,
            key_bits,
            threads: 1,
            transport: TransportKind::InProcess,
            coalesce: true,
        }
    }
}

/// Deterministic seed used everywhere so experiment output is reproducible.
pub const HARNESS_SEED: u64 = 0x5EED_2014;

fn keypair_cache() -> &'static Mutex<HashMap<usize, Keypair>> {
    static CACHE: std::sync::OnceLock<Mutex<HashMap<usize, Keypair>>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns a cached key pair of the requested size (key generation is
/// expensive and irrelevant to the query-time figures being reproduced).
pub fn cached_keypair(key_bits: usize) -> Keypair {
    let mut cache = keypair_cache().lock().expect("keypair cache poisoned");
    cache
        .entry(key_bits)
        .or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ key_bits as u64);
            Keypair::generate(key_bits, &mut rng)
        })
        .clone()
}

/// Builds a ready-to-query instance for the given spec.
pub fn build_instance(spec: InstanceSpec) -> Instance {
    let mut rng = StdRng::seed_from_u64(
        HARNESS_SEED
            .wrapping_mul(31)
            .wrapping_add(spec.records as u64)
            .wrapping_add((spec.attributes as u64) << 20)
            .wrapping_add((spec.distance_bits as u64) << 40),
    );
    let dataset =
        SyntheticDataset::uniform(spec.records, spec.attributes, spec.distance_bits, &mut rng);
    let query = uniform_query(spec.attributes, dataset.max_value, &mut rng);
    let owner = DataOwner::from_keypair(cached_keypair(spec.key_bits));
    let federation = Federation::setup_with_owner(
        owner,
        &dataset.table,
        FederationConfig {
            key_bits: spec.key_bits,
            distance_bits: Some(spec.distance_bits),
            max_query_value: dataset.max_value,
            threads: spec.threads,
            transport: spec.transport,
            coalesce: spec.coalesce,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("benchmark instance setup");
    Instance {
        federation,
        query,
        records: spec.records,
        attributes: spec.attributes,
        distance_bits: spec.distance_bits,
        key_bits: spec.key_bits,
    }
}

/// Times one SkNN_b query on the instance.
pub fn time_basic(instance: &Instance, k: usize) -> Duration {
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0xB);
    let start = Instant::now();
    instance
        .federation
        .query_basic(&instance.query, k, &mut rng)
        .expect("basic query");
    start.elapsed()
}

/// Times one SkNN_m query on the instance with an explicit `l`.
pub fn time_secure(instance: &Instance, k: usize, l: usize) -> Duration {
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0x5);
    let start = Instant::now();
    instance
        .federation
        .query_secure_with_bits(&instance.query, k, l, &mut rng)
        .expect("secure query");
    start.elapsed()
}

/// Formats a duration as fractional seconds for the experiment tables.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("paper-shape"), Some(Scale::PaperShape));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn sweeps_grow_with_scale() {
        assert!(Scale::Smoke.record_sweep().len() <= Scale::Paper.record_sweep().len());
        assert_eq!(Scale::Paper.record_sweep().last(), Some(&10000));
        assert_eq!(Scale::Paper.key_sizes(), (512, 1024));
        assert_eq!(Scale::PaperShape.k_sweep(), vec![5, 10, 15, 20, 25]);
    }

    #[test]
    fn instances_are_buildable_and_queryable_at_smoke_scale() {
        let spec = InstanceSpec::new(12, 3, 8, 128);
        let instance = build_instance(spec);
        assert_eq!(instance.records, 12);
        let basic = time_basic(&instance, 2);
        let secure = time_secure(&instance, 2, 8);
        assert!(basic > Duration::ZERO);
        assert!(
            secure > basic,
            "the secure protocol costs more than the basic one"
        );
    }

    #[test]
    fn cached_keypairs_are_reused() {
        let a = cached_keypair(128);
        let b = cached_keypair(128);
        assert_eq!(a.public_key(), b.public_key());
    }
}
