//! Regenerates every figure of the paper's evaluation (Section 5).
//!
//! ```text
//! cargo run --release -p sknn-bench --bin experiments -- <experiment> [--scale smoke|paper-shape|paper] [--json PATH]
//!
//! experiments:
//!   fig2a      SkNN_b time vs n for m ∈ {6,12,18}        (k = 5, small key)
//!   fig2b      SkNN_b time vs n for m ∈ {6,12,18}        (k = 5, large key)
//!   fig2c      SkNN_b time vs k for both key sizes        (m = 6)
//!   fig2d      SkNN_m time vs k for l ∈ {6,12}            (small key)
//!   fig2e      SkNN_m time vs k for l ∈ {6,12}            (large key)
//!   fig2f      SkNN_b vs SkNN_m time vs k                 (l = 6, small key)
//!   fig3       serial vs parallel SkNN_b time vs n        (k = 5, small key)
//!   breakdown  SMIN_n share of SkNN_m cost vs k           (Section 5.2 claim)
//!   bob-cost   Bob's query-encryption cost vs key size    (Section 5.2 claim)
//!   keysize    SkNN_b cost ratio when the key size doubles (Section 5.1 claim)
//!   batch      SkNN_b queries/sec through SknnEngine::run_batch at batch
//!              sizes 1 / 4 / 16 / 64, in-process vs the reactor-
//!              multiplexed AsyncTcp wire                  (beyond the paper)
//!   inflight-scaling
//!              SkNN_b queries/sec and thread counts over AsyncTcp at
//!              1 / 16 / 64 / 256 concurrent queries — one epoll thread
//!              demuxes every session                      (beyond the paper)
//!   shard-scaling
//!              SkNN_b queries/sec and per-stage/per-shard ciphertext
//!              counts over the sharded data plane, at shards ∈ {1,2,4}
//!              × sessions ∈ {1,2}                         (beyond the paper)
//!   chaos-smoke
//!              retry / reconnect / failover counters from deterministic
//!              faulty runs through FaultInjectTransport   (beyond the paper)
//!   store-io   durable shard store throughput: persist / append+flush /
//!              reload / compact records-per-second and log bytes
//!              through the engine lifecycle                (beyond the paper)
//!   all        every experiment above, in order
//! ```
//!
//! Output is a whitespace-aligned table per experiment (one row per plotted
//! point), matching the series of the corresponding figure. In addition,
//! every measured point — per-stage wall time, ciphertexts on the wire, C2
//! decryption counts — is collected into a machine-readable JSON document
//! (default `BENCH_results.json`, override with `--json PATH`), so the perf
//! trajectory can be tracked across PRs. The `--scale` presets are described
//! in `sknn-bench`'s crate documentation and in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sknn_bench::report::BenchReport;
use sknn_bench::{
    build_instance, cached_keypair, run_basic, run_secure, secs, InstanceSpec, Scale, HARNESS_SEED,
};
use sknn_core::{QueryUser, Stage};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut scale = Scale::PaperShape;
    let mut json_path = String::from("BENCH_results.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().map(String::as_str).unwrap_or("");
                scale = Scale::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (expected smoke | paper-shape | paper)");
                    std::process::exit(2);
                });
            }
            "--json" => {
                json_path = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("see the module documentation at the top of experiments.rs");
                return;
            }
            name => experiment = name.to_string(),
        }
    }

    println!("# sknn experiment harness — scale: {scale:?}");
    println!("# (times in seconds; series match the figures of Elmehdwi et al., ICDE 2014)\n");

    let mut report = BenchReport::new(format!("{scale:?}"));
    match experiment.as_str() {
        "fig2a" => fig2ab(scale, false, &mut report),
        "fig2b" => fig2ab(scale, true, &mut report),
        "fig2c" => fig2c(scale, &mut report),
        "fig2d" => fig2de(scale, false, &mut report),
        "fig2e" => fig2de(scale, true, &mut report),
        "fig2f" => fig2f(scale, &mut report),
        "fig3" => fig3(scale, &mut report),
        "breakdown" => breakdown(scale, &mut report),
        "bob-cost" => bob_cost(scale, &mut report),
        "keysize" => keysize(scale, &mut report),
        "batch" => batch_throughput(scale, &mut report),
        "inflight-scaling" => inflight_scaling(scale, &mut report),
        "shard-scaling" => shard_scaling(scale, &mut report),
        "chaos-smoke" => chaos_smoke(scale, &mut report),
        "store-io" => store_io(scale, &mut report),
        "all" => {
            fig2ab(scale, false, &mut report);
            fig2ab(scale, true, &mut report);
            fig2c(scale, &mut report);
            fig2de(scale, false, &mut report);
            fig2de(scale, true, &mut report);
            fig2f(scale, &mut report);
            fig3(scale, &mut report);
            breakdown(scale, &mut report);
            bob_cost(scale, &mut report);
            keysize(scale, &mut report);
            batch_throughput(scale, &mut report);
            inflight_scaling(scale, &mut report);
            shard_scaling(scale, &mut report);
            chaos_smoke(scale, &mut report);
            store_io(scale, &mut report);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }

    match report.write(&json_path) {
        Ok(()) => println!("# wrote {} entries to {json_path}", report.len()),
        Err(e) => eprintln!("# failed to write {json_path}: {e}"),
    }
}

/// Standard parameter set recorded with every query entry.
fn params(n: usize, m: usize, k: usize, l: usize, key_bits: usize) -> Vec<(&'static str, String)> {
    vec![
        ("n", n.to_string()),
        ("m", m.to_string()),
        ("k", k.to_string()),
        ("l", l.to_string()),
        ("K", key_bits.to_string()),
    ]
}

/// Figures 2(a) and 2(b): SkNN_b time vs number of records, one series per m.
fn fig2ab(scale: Scale, large_key: bool, report: &mut BenchReport) {
    let (small, large) = scale.key_sizes();
    let key_bits = if large_key { large } else { small };
    let fig = if large_key { "2(b)" } else { "2(a)" };
    let name = if large_key { "fig2b" } else { "fig2a" };
    let k = 5.min(scale.record_sweep()[0]);
    println!("## Figure {fig}: SkNN_b, k = {k}, K = {key_bits} bits");
    println!("{:>8} {:>6} {:>12}", "n", "m", "time_s");
    for &m in &scale.attribute_sweep() {
        for &n in &scale.record_sweep() {
            let instance = build_instance(InstanceSpec::new(n, m, 12, key_bits));
            let (elapsed, result) = run_basic(&instance, k);
            report.push_query(name, &params(n, m, k, 12, key_bits), elapsed, &result);
            println!("{n:>8} {m:>6} {:>12}", secs(elapsed));
        }
    }
    println!();
}

/// Figure 2(c): SkNN_b time vs k, one series per key size.
fn fig2c(scale: Scale, report: &mut BenchReport) {
    let (small, large) = scale.key_sizes();
    let n = scale.basic_k_sweep_records();
    println!("## Figure 2(c): SkNN_b, m = 6, n = {n}");
    println!("{:>8} {:>6} {:>12}", "k", "K", "time_s");
    for &key_bits in &[small, large] {
        let instance = build_instance(InstanceSpec::new(n, 6, 12, key_bits));
        for &k in &scale.k_sweep() {
            let k = k.min(n);
            let (elapsed, result) = run_basic(&instance, k);
            report.push_query("fig2c", &params(n, 6, k, 12, key_bits), elapsed, &result);
            println!("{k:>8} {key_bits:>6} {:>12}", secs(elapsed));
        }
    }
    println!();
}

/// Figures 2(d) and 2(e): SkNN_m time vs k, one series per l.
fn fig2de(scale: Scale, large_key: bool, report: &mut BenchReport) {
    let (small, large) = scale.key_sizes();
    let key_bits = if large_key { large } else { small };
    let fig = if large_key { "2(e)" } else { "2(d)" };
    let name = if large_key { "fig2e" } else { "fig2d" };
    let n = scale.secure_records();
    println!("## Figure {fig}: SkNN_m, m = 6, n = {n}, K = {key_bits} bits");
    println!("{:>8} {:>6} {:>12}", "k", "l", "time_s");
    for &l in &scale.distance_bit_sweep() {
        let instance = build_instance(InstanceSpec::new(n, 6, l, key_bits));
        for &k in &scale.k_sweep() {
            let k = k.min(n);
            let (elapsed, result) = run_secure(&instance, k, l);
            report.push_query(name, &params(n, 6, k, l, key_bits), elapsed, &result);
            println!("{k:>8} {l:>6} {:>12}", secs(elapsed));
        }
    }
    println!();
}

/// Figure 2(f): SkNN_b vs SkNN_m time vs k.
fn fig2f(scale: Scale, report: &mut BenchReport) {
    let (small, _) = scale.key_sizes();
    let n = scale.secure_records();
    let l = scale.distance_bit_sweep()[0];
    println!("## Figure 2(f): SkNN_b vs SkNN_m, m = 6, n = {n}, l = {l}, K = {small} bits");
    println!("{:>8} {:>12} {:>12}", "k", "basic_s", "secure_s");
    let instance = build_instance(InstanceSpec::new(n, 6, l, small));
    for &k in &scale.k_sweep() {
        let k = k.min(n);
        let (basic, basic_result) = run_basic(&instance, k);
        let (secure, secure_result) = run_secure(&instance, k, l);
        report.push_query(
            "fig2f-basic",
            &params(n, 6, k, l, small),
            basic,
            &basic_result,
        );
        report.push_query(
            "fig2f-secure",
            &params(n, 6, k, l, small),
            secure,
            &secure_result,
        );
        println!("{k:>8} {:>12} {:>12}", secs(basic), secs(secure));
    }
    println!();
}

/// Figure 3: serial vs parallel SkNN_b time vs n.
fn fig3(scale: Scale, report: &mut BenchReport) {
    let (small, _) = scale.key_sizes();
    let k = 5.min(scale.record_sweep()[0]);
    let threads = 6;
    println!("## Figure 3: SkNN_b serial vs parallel ({threads} threads), m = 6, k = {k}, K = {small} bits");
    println!(
        "{:>8} {:>12} {:>12} {:>9}",
        "n", "serial_s", "parallel_s", "speedup"
    );
    for &n in &scale.record_sweep() {
        let serial = build_instance(InstanceSpec::new(n, 6, 12, small));
        let (serial_time, serial_result) = run_basic(&serial, k);
        let parallel = build_instance(InstanceSpec {
            threads,
            ..InstanceSpec::new(n, 6, 12, small)
        });
        let (parallel_time, parallel_result) = run_basic(&parallel, k);
        let mut serial_params = params(n, 6, k, 12, small);
        serial_params.push(("threads", "1".to_string()));
        report.push_query("fig3", &serial_params, serial_time, &serial_result);
        let mut parallel_params = params(n, 6, k, 12, small);
        parallel_params.push(("threads", threads.to_string()));
        report.push_query("fig3", &parallel_params, parallel_time, &parallel_result);
        println!(
            "{n:>8} {:>12} {:>12} {:>8.2}x",
            secs(serial_time),
            secs(parallel_time),
            serial_time.as_secs_f64() / parallel_time.as_secs_f64()
        );
    }
    println!();
}

/// Section 5.2: the share of SkNN_m's cost spent inside SMIN_n grows from
/// ≈70% to ≈75% as k grows from 5 to 25.
fn breakdown(scale: Scale, report: &mut BenchReport) {
    let (small, _) = scale.key_sizes();
    let n = scale.secure_records();
    let l = scale.distance_bit_sweep()[0];
    println!(
        "## Cost breakdown of SkNN_m (Section 5.2), m = 6, n = {n}, l = {l}, K = {small} bits"
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "k", "total_s", "smin_n_%", "ssed_%", "sbd_%", "other_%"
    );
    let ks = scale.k_sweep();
    let endpoints = [
        *ks.first().expect("non-empty sweep"),
        *ks.last().expect("non-empty sweep"),
    ];
    for &k in &endpoints {
        let k = k.min(n);
        let instance = build_instance(InstanceSpec::new(n, 6, l, small));
        let (elapsed, result) = run_secure(&instance, k, l);
        report.push_query("breakdown", &params(n, 6, k, l, small), elapsed, &result);
        let p = &result.profile;
        let smin = p.fraction(Stage::SecureMinimum) * 100.0;
        let ssed = p.fraction(Stage::DistanceComputation) * 100.0;
        let sbd = p.fraction(Stage::BitDecomposition) * 100.0;
        let other = 100.0 - smin - ssed - sbd;
        println!(
            "{k:>8} {:>12} {smin:>9.1}% {ssed:>9.1}% {sbd:>9.1}% {other:>9.1}%",
            secs(p.total())
        );
    }
    println!();
}

/// Section 5.2: Bob's only cost is encrypting his query (≈4 ms at K = 512,
/// ≈17 ms at K = 1024 for m = 6 in the paper).
fn bob_cost(scale: Scale, report: &mut BenchReport) {
    let (small, large) = scale.key_sizes();
    let m = 6;
    println!("## Bob's query-encryption cost (Section 5.2), m = {m}");
    println!("{:>8} {:>14}", "K", "encrypt_ms");
    for &key_bits in &[small, large] {
        let keypair = cached_keypair(key_bits);
        let user = QueryUser::new(keypair.public_key().clone());
        let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0xB0B);
        let query: Vec<u64> = (0..m as u64).map(|i| 37 * i + 5).collect();
        // Average over several encryptions for a stable number.
        let reps = 10;
        let start = Instant::now();
        for _ in 0..reps {
            // A failed encryption would make the timing figure meaningless;
            // fail loudly rather than timing 10 instant error returns.
            user.encrypt_query(&query, &mut rng)
                .expect("query values fit the key's message space");
        }
        let per_query = start.elapsed() / reps;
        report.push_duration(
            "bob-cost",
            &[("m", m.to_string()), ("K", key_bits.to_string())],
            per_query,
        );
        println!("{key_bits:>8} {:>14.2}", per_query.as_secs_f64() * 1000.0);
    }
    println!();
}

/// Beyond the paper: aggregate throughput of `SknnEngine::run_batch` —
/// whole SkNN_b queries fanned out across worker threads, reported as
/// queries/sec per batch size. Two series: the in-process baseline and
/// the reactor-multiplexed `AsyncTcp` wire (real sockets, one epoll
/// thread demuxing every session).
fn batch_throughput(scale: Scale, report: &mut BenchReport) {
    use sknn_core::{
        DataOwner, DatasetOptions, FederationConfig, Protocol, ShardingConfig, SknnEngine,
        TransportKind,
    };
    use sknn_data::{uniform_query, SyntheticDataset};

    let (small, _) = scale.key_sizes();
    let n = scale.basic_k_sweep_records();
    let k = 5.min(n);
    println!(
        "## Batch throughput: SkNN_b via SknnEngine::run_batch, n = {n}, m = 6, k = {k}, \
         K = {small} bits"
    );
    println!(
        "{:>12} {:>8} {:>8} {:>12} {:>12}",
        "transport", "threads", "batch", "time_s", "queries/s"
    );

    for transport in [TransportKind::InProcess, TransportKind::AsyncTcp] {
        let mut series: Vec<(usize, f64)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0xBA7C);
        let dataset = SyntheticDataset::uniform(n, 6, 12, &mut rng);
        let owner = DataOwner::from_keypair(cached_keypair(small));
        let batches: &[usize] = &[1usize, 4, 16, 64];
        // Threads scale with the largest batch so the outer query fan-out —
        // not the thread budget — is what the sweep varies; the async wire
        // gets enough sessions for the scatter traffic to genuinely overlap.
        let threads = 8;
        let mut engine = SknnEngine::setup_with_owner(
            owner,
            FederationConfig {
                key_bits: small,
                threads,
                transport,
                sharding: if transport.is_async() {
                    ShardingConfig {
                        shards: 4,
                        sessions: 4,
                    }
                } else {
                    ShardingConfig::monolithic()
                },
                ..Default::default()
            },
        )
        .expect("engine setup");
        engine
            .register_dataset_with(
                "batch",
                &dataset.table,
                DatasetOptions {
                    distance_bits: Some(12),
                    max_query_value: dataset.max_value,
                },
                &mut rng,
            )
            .expect("register dataset");

        // Every batch size processes the SAME total query workload, chunked
        // differently: batch 1 issues 64 one-query run_batch calls, batch 64
        // issues a single 64-query call. Equal ~seconds-long measurement
        // windows make the points comparable; a lone 30 ms batch-1 window
        // would put scheduler jitter on the same order as the signal.
        let total = *batches.last().expect("non-empty batch sweep");
        let queries: Vec<_> = (0..total)
            .map(|_| {
                let q = uniform_query(6, dataset.max_value, &mut rng);
                engine
                    .query("batch")
                    .k(k)
                    .point(&q)
                    .protocol(Protocol::Basic)
                    .build()
                    .expect("validated query")
            })
            .collect();
        for &batch in batches {
            let reps = 3;
            let mut runs: Vec<(std::time::Duration, f64)> = Vec::with_capacity(reps);
            for _ in 0..reps {
                // Every configuration starts from the same warm-pool state:
                // without this, batch 1 ran against freshly prewarmed pools
                // while batch 16 inherited whatever the previous
                // configuration drained, making the queries/sec numbers
                // incomparable.
                engine.prewarm_pools(FederationConfig::default().pool_prewarm);
                let start = Instant::now();
                for chunk in queries.chunks(batch) {
                    let outcomes = engine.run_batch(chunk, &mut rng);
                    assert!(
                        outcomes.iter().all(Result::is_ok),
                        "every batch query succeeds"
                    );
                }
                let elapsed = start.elapsed();
                runs.push((elapsed, total as f64 / elapsed.as_secs_f64()));
            }
            runs.sort_by(|a, b| a.1.total_cmp(&b.1));
            let (elapsed, qps) = runs[runs.len() / 2];
            report.push_duration(
                "batch-throughput",
                &[
                    ("n", n.to_string()),
                    ("m", "6".to_string()),
                    ("k", k.to_string()),
                    ("K", small.to_string()),
                    ("transport", format!("{transport:?}")),
                    ("threads", threads.to_string()),
                    ("batch", batch.to_string()),
                    ("queries_per_sec", format!("{qps:.3}")),
                ],
                elapsed,
            );
            println!(
                "{:>12} {threads:>8} {batch:>8} {:>12} {qps:>12.3}",
                format!("{transport:?}"),
                secs(elapsed)
            );
            series.push((batch, qps));
        }
        if transport.is_async() {
            // The acceptance contract for the reactor: batching must buy
            // throughput. A batch of one cannot overlap round trips, so the
            // saturated throughput (anywhere later in the sweep) exceeding
            // the batch-1 point demonstrates the pipeline is real.
            let single = series.first().map(|&(_, q)| q).unwrap_or(0.0);
            let saturated = series
                .iter()
                .skip(1)
                .map(|&(_, q)| q)
                .fold(0.0f64, f64::max);
            assert!(
                saturated > single,
                "AsyncTcp throughput must rise with batch: batch-1 {single:.3} q/s, \
                 best batched {saturated:.3} q/s"
            );
        }
    }
    println!();
}

/// Counts live threads whose name matches `name` exactly (via
/// `/proc/self/task/*/comm`); `None` matches every thread.
fn named_threads(name: Option<&str>) -> usize {
    let Ok(dir) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    dir.filter(|entry| {
        let Ok(entry) = entry else { return false };
        match name {
            None => true,
            Some(name) => std::fs::read_to_string(entry.path().join("comm"))
                .map(|comm| comm.trim() == name)
                .unwrap_or(false),
        }
    })
    .count()
}

/// Beyond the paper: in-flight scaling of the async reactor transport.
/// `c` concurrent SkNN_b queries are pushed through one `AsyncTcp` engine
/// (4 shards × 4 sessions, one epoll thread demuxing all of them) at
/// c ∈ {1, 16, 64, 256}; reported are queries/sec, the peak process
/// thread count while the batch is in flight, and the reactor thread
/// count (always 1 — the demux cost that used to be one thread per
/// session is O(1) in both sessions and load).
fn inflight_scaling(scale: Scale, report: &mut BenchReport) {
    use sknn_core::{
        DataOwner, DatasetOptions, FederationConfig, Protocol, ShardingConfig, SknnEngine,
        TransportKind,
    };
    use sknn_data::{uniform_query, SyntheticDataset};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (small, _) = scale.key_sizes();
    let n = scale.basic_k_sweep_records();
    let k = 5.min(n);
    println!(
        "## In-flight scaling: SkNN_b over AsyncTcp, n = {n}, m = 6, k = {k}, K = {small} bits, \
         4 shards x 4 sessions, threads = concurrency"
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>16}",
        "concurrency", "time_s", "queries/s", "peak_threads", "reactor_threads"
    );

    for &concurrency in &[1usize, 16, 64, 256] {
        let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0x1F11);
        let dataset = SyntheticDataset::uniform(n, 6, 12, &mut rng);
        let owner = DataOwner::from_keypair(cached_keypair(small));
        let mut engine = SknnEngine::setup_with_owner(
            owner,
            FederationConfig {
                key_bits: small,
                threads: concurrency,
                transport: TransportKind::AsyncTcp,
                sharding: ShardingConfig {
                    shards: 4,
                    sessions: 4,
                },
                ..Default::default()
            },
        )
        .expect("engine setup");
        engine
            .register_dataset_with(
                "inflight",
                &dataset.table,
                DatasetOptions {
                    distance_bits: Some(12),
                    max_query_value: dataset.max_value,
                },
                &mut rng,
            )
            .expect("register dataset");
        let queries: Vec<_> = (0..concurrency)
            .map(|_| {
                let q = uniform_query(6, dataset.max_value, &mut rng);
                engine
                    .query("inflight")
                    .k(k)
                    .point(&q)
                    .protocol(Protocol::Basic)
                    .build()
                    .expect("validated query")
            })
            .collect();
        engine.prewarm_pools(FederationConfig::default().pool_prewarm);

        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut peak_threads = 0usize;
                let mut peak_reactors = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    peak_threads = peak_threads.max(named_threads(None));
                    peak_reactors = peak_reactors.max(named_threads(Some("sknn-reactor")));
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                (peak_threads, peak_reactors)
            })
        };
        let start = Instant::now();
        let outcomes = engine.run_batch(&queries, &mut rng);
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        let (peak_threads, sampled_reactors) = sampler.join().expect("sampler");
        // The batch may finish before the sampler's first tick at
        // concurrency 1; the engine is still alive here, so the reactor
        // thread is countable directly.
        let reactor_threads = named_threads(Some("sknn-reactor")).max(sampled_reactors);
        assert!(
            outcomes.iter().all(Result::is_ok),
            "every in-flight query succeeds"
        );
        assert_eq!(reactor_threads, 1, "one reactor thread regardless of load");
        let qps = concurrency as f64 / elapsed.as_secs_f64();
        report.push_duration(
            "inflight-scaling",
            &[
                ("n", n.to_string()),
                ("m", "6".to_string()),
                ("k", k.to_string()),
                ("K", small.to_string()),
                ("transport", "AsyncTcp".to_string()),
                ("concurrency", concurrency.to_string()),
                ("queries_per_sec", format!("{qps:.3}")),
                ("peak_threads", peak_threads.to_string()),
                ("reactor_threads", reactor_threads.to_string()),
            ],
            elapsed,
        );
        println!(
            "{concurrency:>12} {:>12} {qps:>12.3} {peak_threads:>14} {reactor_threads:>16}",
            secs(elapsed)
        );
    }
    println!();
}

/// Beyond the paper: the sharded data plane. SkNN_b batch throughput and
/// per-stage/per-shard ciphertext counts at shards ∈ {1, 2, 4} ×
/// sessions ∈ {1, 2}, over the Channel transport so multiple sessions are
/// real independent wires with traffic accounting.
fn shard_scaling(scale: Scale, report: &mut BenchReport) {
    use sknn_core::{
        DataOwner, DatasetOptions, FederationConfig, Protocol, QueryResult, ShardingConfig,
        SknnEngine, TransportKind,
    };
    use sknn_data::{uniform_query, SyntheticDataset};

    let (small, _) = scale.key_sizes();
    let n = scale.basic_k_sweep_records();
    let k = 5.min(n);
    let threads = 4;
    let batch = match scale {
        Scale::Smoke => 4,
        _ => 16,
    };
    println!(
        "## Shard scaling: SkNN_b over the sharded data plane, n = {n}, m = 6, k = {k}, \
         K = {small} bits, {threads} threads, batch = {batch}, Channel transport"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "shards", "sessions", "time_s", "queries/s"
    );

    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0x5A4D);
    let dataset = SyntheticDataset::uniform(n, 6, 12, &mut rng);
    let prewarm = FederationConfig::default().pool_prewarm;

    for &shards in &[1usize, 2, 4] {
        for &sessions in &[1usize, 2] {
            let owner = DataOwner::from_keypair(cached_keypair(small));
            let mut engine = SknnEngine::setup_with_owner(
                owner,
                FederationConfig {
                    key_bits: small,
                    threads,
                    transport: TransportKind::Channel,
                    sharding: ShardingConfig { shards, sessions },
                    ..Default::default()
                },
            )
            .expect("engine setup");
            engine
                .register_dataset_with(
                    "shard",
                    &dataset.table,
                    DatasetOptions {
                        distance_bits: Some(12),
                        max_query_value: dataset.max_value,
                    },
                    &mut rng,
                )
                .expect("register dataset");

            let config_params = |extra: &[(&'static str, String)]| {
                let mut p = vec![
                    ("n", n.to_string()),
                    ("m", "6".to_string()),
                    ("k", k.to_string()),
                    ("K", small.to_string()),
                    ("threads", threads.to_string()),
                    ("shards", shards.to_string()),
                    ("sessions", sessions.to_string()),
                ];
                p.extend(extra.iter().cloned());
                p
            };

            // One profiled query: per-stage wall time plus the per-stage
            // and per-shard ciphertext counters (scatter vs gather volume).
            engine.prewarm_pools(prewarm);
            let q = uniform_query(6, dataset.max_value, &mut rng);
            let prepared = engine
                .query("shard")
                .k(k)
                .point(&q)
                .protocol(Protocol::Basic)
                .build()
                .expect("validated query");
            let start = Instant::now();
            let outcome = engine.run(&prepared, &mut rng).expect("profiled query");
            let profile_elapsed = start.elapsed();
            report.push_query(
                "shard-scaling-profile",
                &config_params(&[]),
                profile_elapsed,
                &QueryResult::from(outcome),
            );

            // Batch throughput over the shard-stage scheduler, from the
            // same warm-pool state in every configuration.
            let queries: Vec<_> = (0..batch)
                .map(|_| {
                    let q = uniform_query(6, dataset.max_value, &mut rng);
                    engine
                        .query("shard")
                        .k(k)
                        .point(&q)
                        .protocol(Protocol::Basic)
                        .build()
                        .expect("validated query")
                })
                .collect();
            engine.prewarm_pools(prewarm);
            let start = Instant::now();
            let outcomes = engine.run_batch(&queries, &mut rng);
            let elapsed = start.elapsed();
            assert!(
                outcomes.iter().all(Result::is_ok),
                "every shard-scaling query succeeds"
            );
            let qps = batch as f64 / elapsed.as_secs_f64();
            report.push_duration(
                "shard-scaling",
                &config_params(&[
                    ("batch", batch.to_string()),
                    ("queries_per_sec", format!("{qps:.3}")),
                ]),
                elapsed,
            );
            println!(
                "{shards:>8} {sessions:>10} {:>12} {qps:>12.3}",
                secs(elapsed)
            );
        }
    }
    println!();
}

/// Section 5.1: doubling the key size multiplies SkNN_b's cost by ≈7.
fn keysize(scale: Scale, report: &mut BenchReport) {
    let (small, large) = scale.key_sizes();
    let n = scale.basic_k_sweep_records();
    let k = 5.min(n);
    println!("## Key-size scaling of SkNN_b (Section 5.1), n = {n}, m = 6, k = {k}");
    println!("{:>8} {:>12}", "K", "time_s");
    let small_instance = build_instance(InstanceSpec::new(n, 6, 12, small));
    let (small_time, small_result) = run_basic(&small_instance, k);
    report.push_query(
        "keysize",
        &params(n, 6, k, 12, small),
        small_time,
        &small_result,
    );
    println!("{small:>8} {:>12}", secs(small_time));
    let large_instance = build_instance(InstanceSpec::new(n, 6, 12, large));
    let (large_time, large_result) = run_basic(&large_instance, k);
    report.push_query(
        "keysize",
        &params(n, 6, k, 12, large),
        large_time,
        &large_result,
    );
    println!("{large:>8} {:>12}", secs(large_time));
    println!(
        "# ratio when K doubles: {:.2}x (paper reports ≈7x)",
        large_time.as_secs_f64() / small_time.as_secs_f64()
    );
    println!();
}

/// Beyond the paper: the fault-tolerance layer under deterministic faults.
/// Two smoke-scale scenarios through `FaultInjectTransport`: a corrupted
/// frame absorbed by retry-in-place, and a severed session whose shards
/// fail over to the survivor mid-batch. Every point records the pool's
/// resilience counters (retries / reconnects / failovers) alongside wall
/// time, so the recovery cost is tracked across PRs like any other curve.
fn chaos_smoke(scale: Scale, report: &mut BenchReport) {
    use sknn_core::{
        DataOwner, FederationConfig, LocalKeyHolder, PoolConfig, Protocol, RetryPolicy,
        ShardingConfig, SknnEngine, TransportKind,
    };
    use sknn_data::{uniform_query, SyntheticDataset};
    use sknn_protocols::transport::{
        channel_pair, serve, CoalesceConfig, FaultInjectTransport, FaultPlan, SessionKeyHolder,
        SessionPool, Transport,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let (small, _) = scale.key_sizes();
    let n = 8;
    let k = 2;
    let retry = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(2),
        deadline: Some(Duration::from_millis(500)),
    };
    println!(
        "## Chaos smoke: resilience counters under injected faults, n = {n}, m = 6, k = {k}, \
         K = {small} bits, Channel transport"
    );
    println!(
        "{:>16} {:>12} {:>9} {:>12} {:>10}",
        "scenario", "time_s", "retries", "reconnects", "failovers"
    );

    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0xC4A0);
    let dataset = SyntheticDataset::uniform(n, 6, 12, &mut rng);
    let owner = DataOwner::from_keypair(cached_keypair(small));

    // Stands up an engine whose session `i` runs over a fault-injecting
    // wire when `plans[i]` is set; `plans.len()` sessions in total.
    let build = |plans: &[Option<FaultPlan>], shards: usize, rng: &mut StdRng| -> SknnEngine {
        let mut clients = Vec::new();
        let mut servers = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            let holder = LocalKeyHolder::new(owner.private_key().clone(), 0xC2_0000 + i as u64);
            let (client_end, server_end) = channel_pair();
            servers.push(
                std::thread::Builder::new()
                    .name(format!("chaos-smoke-c2-{i}"))
                    .spawn(move || serve(&server_end, &holder, 2))
                    .expect("spawn chaos server"),
            );
            let raw: Arc<dyn Transport> = Arc::new(client_end);
            let transport: Arc<dyn Transport> = match plan {
                Some(p) => Arc::new(FaultInjectTransport::new(raw, *p)),
                None => raw,
            };
            clients.push(SessionKeyHolder::connect(
                owner.public_key().clone(),
                transport,
                CoalesceConfig::disabled(),
            ));
        }
        let pool = SessionPool::from_parts(clients, servers).expect("assemble pool");
        let config = FederationConfig {
            key_bits: small,
            max_query_value: dataset.max_value,
            transport: TransportKind::Channel,
            threads: 2,
            sharding: ShardingConfig {
                shards,
                sessions: plans.len(),
            },
            pool: PoolConfig {
                capacity: 0,
                ..Default::default()
            },
            pool_prewarm: 0,
            retry,
            ..Default::default()
        };
        let mut engine = SknnEngine::setup_with_sessions(owner.clone(), config, pool)
            .expect("chaos engine setup");
        engine
            .register_dataset("chaos", &dataset.table, rng)
            .expect("register dataset");
        engine
    };

    // Scenario 1: one session, one corrupted frame mid-query — the typed
    // remote error is retried in place and the query completes.
    // Scenario 2: two sessions, session 1 severed mid-batch — its shards
    // re-pin onto the survivor and every query in the batch completes.
    let scenarios: [(&str, Vec<Option<FaultPlan>>, usize, usize); 2] = [
        ("corrupt-retry", vec![Some(FaultPlan::corrupt_at(3))], 1, 1),
        (
            "sever-failover",
            vec![None, Some(FaultPlan::sever_at(2))],
            4,
            3,
        ),
    ];
    for (name, plans, shards, batch) in scenarios {
        let engine = build(&plans, shards, &mut rng);
        let queries: Vec<_> = (0..batch)
            .map(|_| {
                let q = uniform_query(6, dataset.max_value, &mut rng);
                engine
                    .query("chaos")
                    .k(k)
                    .point(&q)
                    .protocol(Protocol::Basic)
                    .build()
                    .expect("validated query")
            })
            .collect();
        let start = Instant::now();
        let outcomes = engine.run_batch(&queries, &mut rng);
        let elapsed = start.elapsed();
        let mut shard_failovers = 0usize;
        let mut shard_retries = 0usize;
        for outcome in &outcomes {
            let outcome = outcome.as_ref().expect("every chaos-smoke query recovers");
            shard_failovers += outcome.retries.failed_over_shards().len();
            shard_retries += outcome.retries.shard_retries.len();
        }
        let comm = engine
            .comm_stats()
            .expect("channel transport keeps traffic accounting");
        report.push_duration(
            "chaos-smoke",
            &[
                ("scenario", name.to_string()),
                ("n", n.to_string()),
                ("k", k.to_string()),
                ("K", small.to_string()),
                ("sessions", plans.len().to_string()),
                ("shards", shards.to_string()),
                ("batch", batch.to_string()),
                ("retries", comm.retries.to_string()),
                ("reconnects", comm.reconnects.to_string()),
                ("failovers", comm.failovers.to_string()),
                ("shard_retries", shard_retries.to_string()),
                ("shard_failovers", shard_failovers.to_string()),
            ],
            elapsed,
        );
        println!(
            "{name:>16} {:>12} {:>9} {:>12} {:>10}",
            secs(elapsed),
            comm.retries,
            comm.reconnects,
            comm.failovers
        );
    }
    println!();
}

/// Beyond the paper: throughput of the durable shard store
/// (`crates/store`) through the engine lifecycle — persist (encrypt +
/// write-ahead registration), append+flush batches, crash-safe reload
/// via `open_dir`, and compaction after tombstoning half the records.
/// Encryption cost is kept out of the append/flush and reload phases
/// (records are encrypted before the timer starts; reload parses logs
/// without any Paillier work), so those rows track disk-format cost,
/// not crypto.
fn store_io(scale: Scale, report: &mut BenchReport) {
    use sknn_core::{DataOwner, FederationConfig, ShardingConfig, SknnEngine, TransportKind};
    use sknn_data::{uniform_query, SyntheticDataset};

    let (small, _) = scale.key_sizes();
    let (n, batches, batch) = match scale {
        Scale::Smoke => (48usize, 4usize, 8usize),
        Scale::PaperShape => (400, 8, 16),
        Scale::Paper => (4000, 16, 64),
    };
    let m = 6;
    let shards = 4;
    let root = std::env::temp_dir().join(format!("sknn-store-io-{}", std::process::id()));
    if root.exists() {
        let _ = std::fs::remove_dir_all(&root);
    }
    let log_bytes = |root: &std::path::Path| -> u64 {
        std::fs::read_dir(root.join("store-io"))
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok().and_then(|e| e.metadata().ok()))
                    .map(|meta| meta.len())
                    .sum()
            })
            .unwrap_or(0)
    };

    println!(
        "## Store I/O: durable shard store throughput, n = {n}, m = {m}, shards = {shards}, \
         K = {small} bits, append batches = {batches} × {batch}"
    );
    println!(
        "{:>14} {:>12} {:>9} {:>12} {:>12}",
        "phase", "time_s", "records", "records/s", "log_bytes"
    );

    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0x570);
    let dataset = SyntheticDataset::uniform(n, m, 12, &mut rng);
    let owner = DataOwner::from_keypair(cached_keypair(small));
    let config = FederationConfig {
        key_bits: small,
        max_query_value: dataset.max_value,
        transport: TransportKind::InProcess,
        sharding: ShardingConfig {
            shards,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut row = |phase: &str, elapsed: std::time::Duration, records: usize, bytes: u64| {
        let rate = records as f64 / elapsed.as_secs_f64().max(1e-9);
        report.push_duration(
            "store-io",
            &[
                ("phase", phase.to_string()),
                ("n", n.to_string()),
                ("m", m.to_string()),
                ("K", small.to_string()),
                ("shards", shards.to_string()),
                ("records", records.to_string()),
                ("records_per_s", format!("{rate:.1}")),
                ("log_bytes", bytes.to_string()),
            ],
            elapsed,
        );
        println!(
            "{phase:>14} {:>12} {records:>9} {rate:>12.1} {bytes:>12}",
            secs(elapsed)
        );
    };

    // Persist: encrypt the table and write it ahead to the shard logs.
    let mut engine =
        SknnEngine::open_dir(owner.clone(), config.clone(), &root).expect("open store root");
    let start = Instant::now();
    engine
        .register_dataset_persistent("store-io", &dataset.table, &mut rng)
        .expect("persistent registration");
    row("persist", start.elapsed(), n, log_bytes(&root));

    // Append + flush: records are pre-encrypted so the timer sees only
    // the write-ahead path (encode, append, fsync per touched shard).
    let appended = batches * batch;
    let pre_encrypted: Vec<Vec<_>> = (0..batches)
        .map(|_| {
            (0..batch)
                .map(|_| {
                    let record = uniform_query(m, dataset.max_value, &mut rng);
                    engine
                        .owner()
                        .encrypt_record(&record, &mut rng)
                        .expect("encrypt record")
                })
                .collect()
        })
        .collect();
    let start = Instant::now();
    for records in pre_encrypted {
        engine
            .append_records("store-io", records)
            .expect("durable append");
        engine.flush().expect("flush");
    }
    row("append-flush", start.elapsed(), appended, log_bytes(&root));

    // Reload: drop the engine and recover the dataset from disk alone.
    drop(engine);
    let total = n + appended;
    let start = Instant::now();
    let mut engine =
        SknnEngine::open_dir(owner.clone(), config.clone(), &root).expect("reload store root");
    let elapsed = start.elapsed();
    assert!(
        engine
            .recovery_report("store-io")
            .expect("recovery report")
            .is_clean(),
        "a flushed store must reload clean"
    );
    row("reload", elapsed, total, log_bytes(&root));

    // Compact: tombstone every other record, then reclaim the bytes.
    for index in (0..total).step_by(2) {
        engine
            .tombstone_record("store-io", index)
            .expect("tombstone");
    }
    let start = Instant::now();
    let compaction = engine.compact_dataset("store-io").expect("compact");
    row(
        "compact",
        start.elapsed(),
        compaction.reclaimed_records as usize,
        log_bytes(&root),
    );

    // Reload the compacted generation: parse cost scales with live data.
    drop(engine);
    let start = Instant::now();
    let engine = SknnEngine::open_dir(owner, config, &root).expect("reload compacted");
    let elapsed = start.elapsed();
    let live = engine
        .dataset("store-io")
        .expect("dataset")
        .num_physical_records();
    row("reload-compact", elapsed, live, log_bytes(&root));
    drop(engine);
    let _ = std::fs::remove_dir_all(&root);
    println!();
}
