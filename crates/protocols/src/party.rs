//! The key-holding party (P2 / cloud C2).
//!
//! The [`KeyHolder`] trait is the complete interface P1 (cloud C1) has to the
//! party holding the Paillier secret key. Each method corresponds to exactly
//! one message exchange in the paper's algorithms — nothing beyond those
//! messages is observable by C2, which is what the semi-honest security
//! argument of Section 4.3 relies on.

use crate::error::ProtocolError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sknn_bigint::{BigUint, Montgomery};
use sknn_paillier::{Ciphertext, PrivateKey, PublicKey, RandomnessPool, SlotLayout};
use std::sync::Arc;

/// The response to one SMIN evaluation round (Algorithm 3, step 2).
#[derive(Clone, Debug)]
pub struct SminRoundResponse {
    /// `M′_i = Γ′_i^α` — the (still permuted) randomized bit differences,
    /// exponentiated by the comparison outcome.
    pub m_prime: Vec<Ciphertext>,
    /// `E(α)` — the encrypted, functionality-oblivious comparison outcome.
    pub alpha: Ciphertext,
}

/// The operations cloud C2 (holder of the Paillier secret key) performs on
/// behalf of cloud C1.
///
/// All methods take `&self` so a single key holder can serve concurrent
/// protocol executions (the parallel SkNN variants of Figure 3 rely on this);
/// implementations use interior mutability for their randomness.
pub trait KeyHolder: Send + Sync {
    /// The public key both clouds operate under.
    fn public_key(&self) -> &PublicKey;

    /// SM, step 2 (Algorithm 1): for each pair `(a′, b′)` of masked
    /// ciphertexts, decrypt both, multiply the plaintexts modulo `N` and
    /// return a fresh encryption of the product.
    fn sm_mask_multiply_batch(&self, pairs: &[(Ciphertext, Ciphertext)]) -> Vec<Ciphertext>;

    /// SBD's Encrypted-LSB oracle: for each masked ciphertext `E(z + r)`,
    /// decrypt and return a fresh encryption of the least-significant bit of
    /// the plaintext.
    fn lsb_of_masked_batch(&self, masked: &[Ciphertext]) -> Vec<Ciphertext>;

    /// SMIN, step 2 (Algorithm 3): decrypt the permuted `L′` vector, decide
    /// `α` (1 if any entry decrypts to exactly 1), exponentiate the permuted
    /// `Γ′` vector by `α` and return it together with `E(α)`.
    ///
    /// # Errors
    /// Returns [`ProtocolError::DimensionMismatch`] when the two permuted
    /// vectors disagree in length — they are produced together in step 1, so
    /// a mismatch means corrupted input, not a recoverable condition.
    fn smin_round(
        &self,
        gamma_permuted: &[Ciphertext],
        l_permuted: &[Ciphertext],
    ) -> Result<SminRoundResponse, ProtocolError>;

    /// SkNN_m, step 3(c) (Algorithm 6): decrypt the permuted, randomized
    /// distance differences `β` and return the indicator vector `U` with
    /// `U_i = E(1)` for exactly one position where the plaintext is zero
    /// (chosen uniformly when several are zero) and `E(0)` elsewhere.
    ///
    /// # Errors
    /// Returns [`ProtocolError::MinSelectionFailed`] when *no* entry
    /// decrypts to zero. The protocol guarantees at least one zero (the
    /// global minimum always matches itself), so this signals corrupted
    /// input or a protocol-logic bug — returning an all-zero indicator
    /// instead would silently extract a zero record and violate the
    /// protocol invariant.
    fn min_selection(&self, beta: &[Ciphertext]) -> Result<Vec<Ciphertext>, ProtocolError>;

    /// SkNN_b, step 3 (Algorithm 5): decrypt every distance and return the
    /// indices of the `k` smallest (ties broken by index). This deliberately
    /// leaks the distances and the access pattern — that is the documented
    /// weakness of the basic protocol.
    fn top_k_indices(&self, distances: &[Ciphertext], k: usize) -> Vec<usize>;

    /// Final step of both protocols (steps 5 of Algorithm 5): decrypt the
    /// masked result attributes `γ` so they can be forwarded to Bob. The
    /// plaintexts are uniformly random values masked by C1, so nothing about
    /// the real records is revealed to the key holder.
    fn decrypt_masked_batch(&self, masked: &[Ciphertext]) -> Vec<BigUint>;

    /// Single-pair convenience wrapper over [`KeyHolder::sm_mask_multiply_batch`].
    ///
    /// # Errors
    /// [`ProtocolError::Invariant`] when the batch implementation violates
    /// its one-result-per-pair contract.
    fn sm_mask_multiply(
        &self,
        a_masked: &Ciphertext,
        b_masked: &Ciphertext,
    ) -> Result<Ciphertext, ProtocolError> {
        self.sm_mask_multiply_batch(std::slice::from_ref(&(a_masked.clone(), b_masked.clone())))
            .pop()
            .ok_or_else(|| ProtocolError::Invariant {
                message: "sm_mask_multiply_batch returned nothing for a batch of one".to_string(),
            })
    }

    /// Single-item convenience wrapper over [`KeyHolder::lsb_of_masked_batch`].
    ///
    /// # Errors
    /// [`ProtocolError::Invariant`] when the batch implementation violates
    /// its one-result-per-input contract.
    fn lsb_of_masked(&self, masked: &Ciphertext) -> Result<Ciphertext, ProtocolError> {
        self.lsb_of_masked_batch(std::slice::from_ref(masked))
            .pop()
            .ok_or_else(|| ProtocolError::Invariant {
                message: "lsb_of_masked_batch returned nothing for a batch of one".to_string(),
            })
    }

    // ── Slot-packed fast paths ──────────────────────────────────────────
    //
    // The packed methods carry σ values per ciphertext (see
    // `sknn_paillier::packing`), cutting C2's decryption count and the
    // C1↔C2 ciphertext volume by the packing factor. They have scalar
    // semantics — the decrypted results are bit-identical to the unpacked
    // methods above — and default to `PackingUnsupported` so existing
    // `KeyHolder` implementations (and pre-packing peers behind a
    // transport) keep working: callers probe `supports_packing` and fall
    // back to the scalar paths.

    /// Whether this key holder serves the packed methods below. Transports
    /// report the *negotiated* capability of the remote peer.
    fn supports_packing(&self) -> bool {
        false
    }

    /// Packed SM, square form (the SSED pattern where both operands of each
    /// product are equal): each input ciphertext packs blinded operands
    /// `xᵢ < 2^slot_bits`; C2 decrypts it once, squares every slot in
    /// plaintext, and returns one fresh ciphertext packing the `xᵢ²`.
    ///
    /// # Errors
    /// [`ProtocolError::PackingUnsupported`] without a packed
    /// implementation; [`ProtocolError::Packing`] when a decrypted value
    /// violates the layout.
    fn sm_packed_square_batch(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        let _ = (layout, packed);
        Err(ProtocolError::PackingUnsupported)
    }

    /// Packed SM, general form: for each pair of packed-operand ciphertexts
    /// C2 returns one fresh ciphertext packing the slot-wise products
    /// `aᵢ·bᵢ`.
    ///
    /// # Errors
    /// See [`KeyHolder::sm_packed_square_batch`].
    fn sm_packed_multiply_batch(
        &self,
        layout: &SlotLayout,
        pairs: &[(Ciphertext, Ciphertext)],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        let _ = (layout, pairs);
        Err(ProtocolError::PackingUnsupported)
    }

    /// Packed SBD round oracle: each input ciphertext packs masked values
    /// `yᵢ = xᵢ + rᵢ` (slot-aligned, no inter-slot carries);
    /// `slot_counts[g]` says how many slots of input `g` are in use. C2
    /// decrypts each input once and returns a fresh encryption of the
    /// least-significant bit of **every used slot**, flattened in slot
    /// order (the per-bit ciphertexts are what SMIN consumes downstream,
    /// which is why the response side stays scalar — see `DESIGN.md`).
    ///
    /// # Errors
    /// See [`KeyHolder::sm_packed_square_batch`].
    fn lsb_packed_batch(
        &self,
        layout: &SlotLayout,
        masked: &[Ciphertext],
        slot_counts: &[usize],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        let _ = (layout, masked, slot_counts);
        Err(ProtocolError::PackingUnsupported)
    }

    /// Packed SkNN_b top-k: the `count` encrypted distances arrive packed σ
    /// per ciphertext; C2 decrypts ⌈count/σ⌉ ciphertexts instead of
    /// `count`, unpacks, and returns the indices of the `k` smallest (ties
    /// by index) — the same deliberate distance leak as
    /// [`KeyHolder::top_k_indices`], at a fraction of the traffic.
    ///
    /// # Errors
    /// See [`KeyHolder::sm_packed_square_batch`].
    fn top_k_indices_packed(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
        count: usize,
        k: usize,
    ) -> Result<Vec<usize>, ProtocolError> {
        let _ = (layout, packed, count, k);
        Err(ProtocolError::PackingUnsupported)
    }
}

/// An in-process key holder: executes C2's side of every protocol directly.
///
/// This is the implementation used when both "clouds" run in the same process
/// (the configuration the paper's own single-machine evaluation corresponds
/// to). The [`crate::transport::SessionKeyHolder`] client and
/// [`crate::transport::serve`] loop put the same logic behind a pluggable
/// frame transport with traffic accounting.
pub struct LocalKeyHolder {
    sk: PrivateKey,
    pk: PublicKey,
    rng: Mutex<StdRng>,
    /// Reusable Montgomery context for `N²`, so unpooled fresh encryptions
    /// skip the per-exponentiation setup.
    mont_n2: Montgomery,
    /// Precomputed `r^N mod N²` units for the fresh encryptions in every
    /// response; `None` pays the exponentiation inline on each reply.
    pool: Option<Arc<RandomnessPool>>,
}

impl LocalKeyHolder {
    /// Creates a key holder from the secret key, seeding its internal
    /// randomness from `seed` (deterministic for reproducible experiments).
    pub fn new(sk: PrivateKey, seed: u64) -> Self {
        let pk = sk.public_key().clone();
        let mont_n2 = Montgomery::new(pk.n_squared().clone());
        LocalKeyHolder {
            sk,
            pk,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            mont_n2,
            pool: None,
        }
    }

    /// Creates a key holder seeded from the operating-system entropy source.
    pub fn from_entropy(sk: PrivateKey) -> Self {
        let pk = sk.public_key().clone();
        let mont_n2 = Montgomery::new(pk.n_squared().clone());
        LocalKeyHolder {
            sk,
            pk,
            rng: Mutex::new(StdRng::from_entropy()),
            mont_n2,
            pool: None,
        }
    }

    /// Attaches an offline randomness pool: every fresh encryption in this
    /// key holder's responses (SM products, LSB replies, `E(α)`, indicator
    /// vectors) consumes one precomputed `r^N mod N²` unit instead of paying
    /// the exponentiation online.
    ///
    /// # Errors
    /// [`ProtocolError::Invariant`] when the pool was built for a different
    /// Paillier key — a deployment wiring error. The key holder is left
    /// without a pool (correct, just slower), so callers may also treat the
    /// error as a degraded-mode warning.
    pub fn attach_pool(&mut self, pool: Arc<RandomnessPool>) -> Result<(), ProtocolError> {
        if pool.public_key().n() != self.pk.n() {
            return Err(ProtocolError::Invariant {
                message: "randomness pool belongs to a different Paillier key".to_string(),
            });
        }
        self.pool = Some(pool);
        Ok(())
    }

    /// Builder-style [`LocalKeyHolder::attach_pool`].
    ///
    /// # Errors
    /// See [`LocalKeyHolder::attach_pool`].
    pub fn with_pool(mut self, pool: Arc<RandomnessPool>) -> Result<Self, ProtocolError> {
        self.attach_pool(pool)?;
        Ok(self)
    }

    /// The attached randomness pool, if any.
    pub fn pool(&self) -> Option<&Arc<RandomnessPool>> {
        self.pool.as_ref()
    }

    /// Decrypts a ciphertext — **test and audit helper only**. Real
    /// deployments never expose raw decryption of protocol intermediates;
    /// the method exists so tests and the leakage auditor can check
    /// plaintext-level invariants.
    pub fn debug_decrypt(&self, c: &Ciphertext) -> BigUint {
        self.sk.decrypt(c)
    }

    /// [`LocalKeyHolder::debug_decrypt`] narrowed to `u64`.
    ///
    /// # Errors
    /// [`ProtocolError::Invariant`] when the plaintext exceeds `u64` — for
    /// a test helper that usually means the ciphertext was not the small
    /// protocol value the caller believed it to be.
    pub fn debug_decrypt_u64(&self, c: &Ciphertext) -> Result<u64, ProtocolError> {
        self.sk
            .decrypt(c)
            .to_u64()
            .ok_or_else(|| ProtocolError::Invariant {
                message: "decrypted plaintext does not fit in u64".to_string(),
            })
    }

    /// Access to the private key for composition into higher-level roles
    /// (the `sknn-core` crate's cloud C2 wrapper re-uses it for the final
    /// result decryption step).
    pub fn private_key(&self) -> &PrivateKey {
        &self.sk
    }

    /// Produces `count` fresh encryption units (`r^N mod N²`). With a pool
    /// attached this is one queue lock (precomputed entries, synchronous
    /// fallback only when drained); without one, randomness is drawn under a
    /// short lock and the exponentiations run outside it, so concurrent
    /// protocol executions are never serialized behind the expensive work.
    fn fresh_units(&self, count: usize) -> Vec<BigUint> {
        if let Some(pool) = &self.pool {
            return pool
                .draw_batch(count)
                .into_iter()
                .map(|entry| entry.unit)
                .collect();
        }
        let randomness: Vec<BigUint> = {
            let mut rng = self.rng.lock();
            (0..count)
                .map(|_| self.pk.sample_randomness(&mut *rng))
                .collect()
        };
        randomness
            .into_iter()
            .map(|r| self.mont_n2.pow(&r, self.pk.n()))
            .collect()
    }

    /// Fresh encryption of a value this key holder itself computed (a
    /// decryption result or a protocol bit, hence always `< N` — the
    /// reduction below is a no-op on every real input and exists so this
    /// path cannot unwind mid-protocol).
    fn encrypt_own(&self, m: &BigUint, unit: &BigUint) -> Ciphertext {
        let reduced = m.rem_ref(self.pk.n());
        if let Ok(ct) = self.pk.encrypt_with_unit(&reduced, unit) {
            return ct;
        }
        // Unreachable (`reduced < N` by construction); degrade to a full
        // online encryption rather than panic.
        let mut rng = self.rng.lock();
        self.pk.encrypt(&reduced, &mut *rng)
    }
}

impl KeyHolder for LocalKeyHolder {
    fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    fn sm_mask_multiply_batch(&self, pairs: &[(Ciphertext, Ciphertext)]) -> Vec<Ciphertext> {
        // Draw all encryption units up front (one queue lock with a pool, a
        // short rng lock without) so concurrent protocol executions (the
        // record-parallel stages of Figure 3) are not serialized behind the
        // expensive decrypt/encrypt work.
        let units = self.fresh_units(pairs.len());
        pairs
            .iter()
            .zip(units)
            .map(|((a, b), unit)| {
                let ha = self.sk.decrypt(a);
                let hb = self.sk.decrypt(b);
                let h = ha.mod_mul(&hb, self.pk.n());
                self.encrypt_own(&h, &unit)
            })
            .collect()
    }

    fn lsb_of_masked_batch(&self, masked: &[Ciphertext]) -> Vec<Ciphertext> {
        let units = self.fresh_units(masked.len());
        masked
            .iter()
            .zip(units)
            .map(|(y, unit)| {
                let plain = self.sk.decrypt(y);
                let bit = if plain.is_odd() {
                    BigUint::one()
                } else {
                    BigUint::zero()
                };
                self.encrypt_own(&bit, &unit)
            })
            .collect()
    }

    fn smin_round(
        &self,
        gamma_permuted: &[Ciphertext],
        l_permuted: &[Ciphertext],
    ) -> Result<SminRoundResponse, ProtocolError> {
        if gamma_permuted.len() != l_permuted.len() {
            return Err(ProtocolError::DimensionMismatch {
                left: gamma_permuted.len(),
                right: l_permuted.len(),
            });
        }
        let one = BigUint::one();
        // α = 1 iff some decrypted L′ entry equals exactly 1.
        let alpha_is_one = l_permuted.iter().any(|c| self.sk.decrypt(c) == one);
        let alpha_plain = if alpha_is_one {
            BigUint::one()
        } else {
            BigUint::zero()
        };

        let m_prime = gamma_permuted
            .iter()
            .map(|g| {
                if alpha_is_one {
                    g.clone()
                } else {
                    // Γ′^0 = a trivial encryption of zero.
                    self.pk.mul_plain(g, &BigUint::zero())
                }
            })
            .collect();

        let unit = self
            .fresh_units(1)
            .pop()
            .ok_or_else(|| ProtocolError::Invariant {
                message: "one encryption unit requested, none produced".to_string(),
            })?;
        Ok(SminRoundResponse {
            m_prime,
            alpha: self.encrypt_own(&alpha_plain, &unit),
        })
    }

    fn min_selection(&self, beta: &[Ciphertext]) -> Result<Vec<Ciphertext>, ProtocolError> {
        let zero_positions: Vec<usize> = beta
            .iter()
            .enumerate()
            .filter(|(_, c)| self.sk.decrypt(c).is_zero())
            .map(|(i, _)| i)
            .collect();
        // The protocol guarantees at least one zero (the global minimum always
        // matches itself). No zero means the input is corrupt; an all-zero
        // indicator would silently extract a garbage record downstream.
        if zero_positions.is_empty() {
            return Err(ProtocolError::MinSelectionFailed {
                candidates: beta.len(),
            });
        }
        // If several records tie, pick one uniformly.
        let chosen = {
            let mut rng = self.rng.lock();
            zero_positions[rng.gen_range(0..zero_positions.len())]
        };
        let units = self.fresh_units(beta.len());
        Ok(units
            .iter()
            .enumerate()
            .map(|(i, unit)| {
                let bit = if i == chosen {
                    BigUint::one()
                } else {
                    BigUint::zero()
                };
                self.encrypt_own(&bit, unit)
            })
            .collect())
    }

    fn top_k_indices(&self, distances: &[Ciphertext], k: usize) -> Vec<usize> {
        let mut decrypted: Vec<(BigUint, usize)> = distances
            .iter()
            .enumerate()
            .map(|(i, c)| (self.sk.decrypt(c), i))
            .collect();
        decrypted.sort();
        decrypted.into_iter().take(k).map(|(_, i)| i).collect()
    }

    fn decrypt_masked_batch(&self, masked: &[Ciphertext]) -> Vec<BigUint> {
        masked.iter().map(|c| self.sk.decrypt(c)).collect()
    }

    fn supports_packing(&self) -> bool {
        true
    }

    fn sm_packed_square_batch(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        layout
            .require_fits_pk(&self.pk)
            .map_err(ProtocolError::from)?;
        let units = self.fresh_units(packed.len());
        packed
            .iter()
            .zip(units)
            .map(|(ct, unit)| {
                let slots = layout.unpack(&self.sk.decrypt(ct), layout.slots_per_ct)?;
                // Slot-wise squares; `pack_wide` re-checks the carry-freedom
                // bound, so an operand wider than the layout promised
                // surfaces as a typed error rather than corrupting a
                // neighbouring slot.
                let squares: Vec<BigUint> = slots.iter().map(|x| x.mul_ref(x)).collect();
                let repacked = layout.pack_wide(&squares)?;
                Ok(self.encrypt_own(&repacked, &unit))
            })
            .collect()
    }

    fn sm_packed_multiply_batch(
        &self,
        layout: &SlotLayout,
        pairs: &[(Ciphertext, Ciphertext)],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        layout
            .require_fits_pk(&self.pk)
            .map_err(ProtocolError::from)?;
        let units = self.fresh_units(pairs.len());
        pairs
            .iter()
            .zip(units)
            .map(|((a, b), unit)| {
                let xs = layout.unpack(&self.sk.decrypt(a), layout.slots_per_ct)?;
                let ys = layout.unpack(&self.sk.decrypt(b), layout.slots_per_ct)?;
                let products: Vec<BigUint> =
                    xs.iter().zip(&ys).map(|(x, y)| x.mul_ref(y)).collect();
                let repacked = layout.pack_wide(&products)?;
                Ok(self.encrypt_own(&repacked, &unit))
            })
            .collect()
    }

    fn lsb_packed_batch(
        &self,
        layout: &SlotLayout,
        masked: &[Ciphertext],
        slot_counts: &[usize],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        layout
            .require_fits_pk(&self.pk)
            .map_err(ProtocolError::from)?;
        if masked.len() != slot_counts.len() {
            return Err(ProtocolError::DimensionMismatch {
                left: masked.len(),
                right: slot_counts.len(),
            });
        }
        let total: usize = slot_counts.iter().sum();
        let units = self.fresh_units(total);
        let mut out = Vec::with_capacity(total);
        let mut unit_iter = units.into_iter();
        for (ct, &count) in masked.iter().zip(slot_counts) {
            let slots = layout.unpack(&self.sk.decrypt(ct), layout.slots_per_ct)?;
            if count > slots.len() {
                return Err(ProtocolError::Packing(
                    sknn_paillier::PackingError::TooManyValues {
                        given: count,
                        slots: slots.len(),
                    },
                ));
            }
            for y in slots.iter().take(count) {
                let bit = if y.is_odd() {
                    BigUint::one()
                } else {
                    BigUint::zero()
                };
                let unit = unit_iter.next().ok_or_else(|| ProtocolError::Invariant {
                    message: "encryption units exhausted before the used slots".to_string(),
                })?;
                out.push(self.encrypt_own(&bit, &unit));
            }
        }
        Ok(out)
    }

    fn top_k_indices_packed(
        &self,
        layout: &SlotLayout,
        packed: &[Ciphertext],
        count: usize,
        k: usize,
    ) -> Result<Vec<usize>, ProtocolError> {
        layout
            .require_fits_pk(&self.pk)
            .map_err(ProtocolError::from)?;
        if count > packed.len() * layout.slots_per_ct {
            return Err(ProtocolError::Packing(
                sknn_paillier::PackingError::TooManyValues {
                    given: count,
                    slots: packed.len() * layout.slots_per_ct,
                },
            ));
        }
        let mut decrypted: Vec<(BigUint, usize)> = Vec::with_capacity(count);
        for (g, ct) in packed.iter().enumerate() {
            let slots = layout.unpack(&self.sk.decrypt(ct), layout.slots_per_ct)?;
            for (s, value) in slots.into_iter().enumerate() {
                let index = g * layout.slots_per_ct + s;
                if index < count {
                    decrypted.push((value, index));
                }
            }
        }
        decrypted.sort();
        Ok(decrypted.into_iter().take(k).map(|(_, i)| i).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sknn_paillier::Keypair;

    fn setup() -> (PublicKey, LocalKeyHolder, StdRng) {
        let mut rng = StdRng::seed_from_u64(61);
        let (pk, sk) = Keypair::generate(128, &mut rng).split();
        (pk, LocalKeyHolder::new(sk, 62), rng)
    }

    #[test]
    fn sm_mask_multiply_multiplies_plaintexts() {
        let (pk, holder, mut rng) = setup();
        let a = pk.encrypt_u64(60, &mut rng); // a + ra from Example 2
        let b = pk.encrypt_u64(61, &mut rng); // b + rb from Example 2
        let h = holder.sm_mask_multiply(&a, &b).unwrap();
        assert_eq!(holder.debug_decrypt_u64(&h).unwrap(), 3660);
    }

    #[test]
    fn lsb_oracle() {
        let (pk, holder, mut rng) = setup();
        let evens = pk.encrypt_u64(44, &mut rng);
        let odds = pk.encrypt_u64(45, &mut rng);
        let bits = holder.lsb_of_masked_batch(&[evens, odds]);
        assert_eq!(holder.debug_decrypt_u64(&bits[0]).unwrap(), 0);
        assert_eq!(holder.debug_decrypt_u64(&bits[1]).unwrap(), 1);
    }

    #[test]
    fn smin_round_detects_a_one() {
        let (pk, holder, mut rng) = setup();
        let gamma: Vec<_> = (0..4).map(|v| pk.encrypt_u64(v + 10, &mut rng)).collect();
        // L decrypts to random-looking values with a single 1 present.
        let l_with_one = vec![
            pk.encrypt_u64(923, &mut rng),
            pk.encrypt_u64(1, &mut rng),
            pk.encrypt_u64(77, &mut rng),
            pk.encrypt_u64(0, &mut rng),
        ];
        let resp = holder.smin_round(&gamma, &l_with_one).unwrap();
        assert_eq!(holder.debug_decrypt_u64(&resp.alpha).unwrap(), 1);
        // M′ = Γ′^1 keeps the plaintexts.
        assert_eq!(holder.debug_decrypt_u64(&resp.m_prime[2]).unwrap(), 12);

        let l_without_one = vec![
            pk.encrypt_u64(923, &mut rng),
            pk.encrypt_u64(5, &mut rng),
            pk.encrypt_u64(77, &mut rng),
            pk.encrypt_u64(0, &mut rng),
        ];
        let resp = holder.smin_round(&gamma, &l_without_one).unwrap();
        assert_eq!(holder.debug_decrypt_u64(&resp.alpha).unwrap(), 0);
        // M′ = Γ′^0 wipes the plaintexts to zero.
        assert!(resp
            .m_prime
            .iter()
            .all(|c| holder.debug_decrypt(c).is_zero()));
    }

    #[test]
    fn min_selection_marks_exactly_one_zero() {
        let (pk, holder, mut rng) = setup();
        let beta = vec![
            pk.encrypt_u64(17, &mut rng),
            pk.encrypt_u64(0, &mut rng),
            pk.encrypt_u64(23, &mut rng),
            pk.encrypt_u64(0, &mut rng),
        ];
        let u = holder.min_selection(&beta).expect("a zero is present");
        let plain: Vec<u64> = u
            .iter()
            .map(|c| holder.debug_decrypt_u64(c).unwrap())
            .collect();
        assert_eq!(plain.iter().sum::<u64>(), 1);
        let marked = plain.iter().position(|&b| b == 1).unwrap();
        assert!(
            marked == 1 || marked == 3,
            "must mark one of the zero positions"
        );
    }

    #[test]
    fn min_selection_without_a_zero_is_a_typed_error() {
        let (pk, holder, mut rng) = setup();
        let beta: Vec<_> = [17u64, 3, 23]
            .iter()
            .map(|&v| pk.encrypt_u64(v, &mut rng))
            .collect();
        assert_eq!(
            holder.min_selection(&beta),
            Err(ProtocolError::MinSelectionFailed { candidates: 3 })
        );
        // The degenerate empty input is also an error, not an empty vector.
        assert_eq!(
            holder.min_selection(&[]),
            Err(ProtocolError::MinSelectionFailed { candidates: 0 })
        );
    }

    #[test]
    fn top_k_orders_by_distance() {
        let (pk, holder, mut rng) = setup();
        let dists: Vec<_> = [50u64, 10, 40, 10, 30]
            .iter()
            .map(|&d| pk.encrypt_u64(d, &mut rng))
            .collect();
        assert_eq!(holder.top_k_indices(&dists, 3), vec![1, 3, 4]);
        assert_eq!(holder.top_k_indices(&dists, 1), vec![1]);
    }

    #[test]
    fn pooled_key_holder_matches_direct_semantics() {
        use sknn_paillier::{PoolConfig, RandomnessPool};
        let mut rng = StdRng::seed_from_u64(63);
        let (pk, sk) = Keypair::generate(128, &mut rng).split();
        let pool = RandomnessPool::new(
            pk.clone(),
            PoolConfig {
                capacity: 32,
                background_refill: false,
                seed: Some(64),
                ..Default::default()
            },
        );
        pool.prewarm(32);
        let holder = LocalKeyHolder::new(sk, 65)
            .with_pool(Arc::clone(&pool))
            .unwrap();
        assert!(holder.pool().is_some());

        // A pool for the wrong key is a typed error, not a panic.
        let (_other_pk, other_sk) = Keypair::generate(128, &mut rng).split();
        let mut mismatched = LocalKeyHolder::new(other_sk, 67);
        assert!(mismatched.attach_pool(Arc::clone(&pool)).is_err());
        assert!(mismatched.pool().is_none());

        // SM products, LSB replies and min-selection all come back with the
        // same plaintext semantics as the unpooled path.
        let a = pk.encrypt_u64(60, &mut rng);
        let b = pk.encrypt_u64(61, &mut rng);
        assert_eq!(
            holder
                .debug_decrypt_u64(&holder.sm_mask_multiply(&a, &b).unwrap())
                .unwrap(),
            3660
        );
        let odd = pk.encrypt_u64(45, &mut rng);
        assert_eq!(
            holder
                .debug_decrypt_u64(&holder.lsb_of_masked(&odd).unwrap())
                .unwrap(),
            1
        );
        let beta = vec![pk.encrypt_u64(5, &mut rng), pk.encrypt_u64(0, &mut rng)];
        let u = holder.min_selection(&beta).unwrap();
        assert_eq!(holder.debug_decrypt_u64(&u[0]).unwrap(), 0);
        assert_eq!(holder.debug_decrypt_u64(&u[1]).unwrap(), 1);

        let stats = pool.stats();
        assert!(stats.hits >= 4, "responses must consume pool entries");
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn decrypt_masked_batch_roundtrip() {
        let (pk, holder, mut rng) = setup();
        let masked: Vec<_> = [5u64, 7, 11]
            .iter()
            .map(|&v| pk.encrypt_u64(v, &mut rng))
            .collect();
        let plain = holder.decrypt_masked_batch(&masked);
        assert_eq!(
            plain,
            vec![
                BigUint::from_u64(5),
                BigUint::from_u64(7),
                BigUint::from_u64(11)
            ]
        );
    }
}
