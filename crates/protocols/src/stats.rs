//! Communication statistics for the channel transport.
//!
//! The paper's evaluation is computation-bound (both clouds ran on one
//! machine), but the protocols' practicality also hinges on how many
//! round trips and how many ciphertext bytes flow between C1 and C2.
//! [`CommStats`] counts both directions; the experiment harness reports them
//! alongside the timing figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe counters for traffic between the two clouds.
#[derive(Debug, Default)]
pub struct CommStats {
    requests: AtomicU64,
    request_bytes: AtomicU64,
    responses: AtomicU64,
    response_bytes: AtomicU64,
}

impl CommStats {
    /// Creates a zeroed, shareable statistics object.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one C1→C2 request of `bytes` serialized bytes.
    pub fn record_request(&self, bytes: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.request_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one C2→C1 response of `bytes` serialized bytes.
    pub fn record_response(&self, bytes: usize) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        self.response_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of C1→C2 messages so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total serialized C1→C2 bytes so far.
    pub fn request_bytes(&self) -> u64 {
        self.request_bytes.load(Ordering::Relaxed)
    }

    /// Number of C2→C1 messages so far.
    pub fn responses(&self) -> u64 {
        self.responses.load(Ordering::Relaxed)
    }

    /// Total serialized C2→C1 bytes so far.
    pub fn response_bytes(&self) -> u64 {
        self.response_bytes.load(Ordering::Relaxed)
    }

    /// Number of complete request/response round trips.
    pub fn round_trips(&self) -> u64 {
        self.requests().min(self.responses())
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes() + self.response_bytes()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.request_bytes.store(0, Ordering::Relaxed);
        self.responses.store(0, Ordering::Relaxed);
        self.response_bytes.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. The resilience counters are
    /// zero here — a single transport does not retry; those fields are
    /// filled in by pool-level aggregation.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            requests: self.requests(),
            request_bytes: self.request_bytes(),
            responses: self.responses(),
            response_bytes: self.response_bytes(),
            ..CommSnapshot::default()
        }
    }
}

/// An immutable copy of [`CommStats`] counters, plus the resilience
/// counters a session pool layers on top (zero for a bare transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommSnapshot {
    /// Number of C1→C2 messages.
    pub requests: u64,
    /// Serialized C1→C2 bytes.
    pub request_bytes: u64,
    /// Number of C2→C1 messages.
    pub responses: u64,
    /// Serialized C2→C1 bytes.
    pub response_bytes: u64,
    /// Requests re-issued after a transport failure (same session).
    pub retries: u64,
    /// Sessions re-dialed and re-negotiated after dying.
    pub reconnects: u64,
    /// Shard stages re-pinned from a dead session onto a survivor.
    pub failovers: u64,
}

impl CommSnapshot {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            requests: self.requests - earlier.requests,
            request_bytes: self.request_bytes - earlier.request_bytes,
            responses: self.responses - earlier.responses,
            response_bytes: self.response_bytes - earlier.response_bytes,
            retries: self.retries - earlier.retries,
            reconnects: self.reconnects - earlier.reconnects,
            failovers: self.failovers - earlier.failovers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = CommStats::new_shared();
        stats.record_request(100);
        stats.record_request(50);
        stats.record_response(200);
        assert_eq!(stats.requests(), 2);
        assert_eq!(stats.request_bytes(), 150);
        assert_eq!(stats.responses(), 1);
        assert_eq!(stats.response_bytes(), 200);
        assert_eq!(stats.round_trips(), 1);
        assert_eq!(stats.total_bytes(), 350);
        stats.reset();
        assert_eq!(stats.total_bytes(), 0);
    }

    #[test]
    fn snapshots_subtract() {
        let stats = CommStats::new_shared();
        stats.record_request(10);
        stats.record_response(20);
        let first = stats.snapshot();
        stats.record_request(30);
        stats.record_response(40);
        let second = stats.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.requests, 1);
        assert_eq!(delta.request_bytes, 30);
        assert_eq!(delta.responses, 1);
        assert_eq!(delta.response_bytes, 40);
        assert_eq!(delta.total_bytes(), 70);
    }

    #[test]
    fn concurrent_updates() {
        let stats = CommStats::new_shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..1000 {
                        st.record_request(1);
                        st.record_response(2);
                    }
                });
            }
        });
        assert_eq!(stats.requests(), 4000);
        assert_eq!(stats.response_bytes(), 8000);
    }
}
